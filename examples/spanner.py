#!/usr/bin/env python
"""Graph spanners from one decomposition (application of Cohen [12]).

Keeps each piece's BFS tree plus one representative edge per adjacent piece
pair — a (4r+1)-spanner.  Shows the size/stretch trade-off as β varies on a
hypercube (dense enough that sparsification is visible), with the
decompositions routed through the pipeline layer: swap the
``EngineProvider`` for a ``PoolProvider`` (shared-memory workers) or a
``ServeProvider`` (remote server) and the spanners are bit-identical.

Run:  python examples/spanner.py
"""

from repro.graphs import hypercube
from repro.pipeline import EngineProvider
from repro.spanners import ldd_spanner, measure_spanner_stretch


def main() -> None:
    graph = hypercube(9)
    print(
        f"hypercube d=9: n={graph.num_vertices}, m={graph.num_edges} "
        f"(diameter 9)\n"
    )
    print(
        f"{'beta':>6} {'edges':>7} {'ratio':>7} {'bound':>6} "
        f"{'meas_max':>9} {'meas_mean':>10}"
    )
    # One provider for the sweep: every decomposition lands in its memo,
    # so re-running a configuration is a cache hit, not a recomputation.
    with EngineProvider() as provider:
        for beta in (0.05, 0.1, 0.2, 0.4):
            res = ldd_spanner(graph, beta, seed=0, provider=provider)
            rep = measure_spanner_stretch(
                graph, res.spanner, max_sources=64, seed=1
            )
            print(
                f"{beta:>6.2f} {res.num_edges:>7d} {res.size_ratio():>7.3f} "
                f"{res.stretch_bound:>6d} {rep.max:>9.0f} {rep.mean:>10.2f}"
            )
        # Rebuilding the last spanner reuses the memoized decomposition.
        ldd_spanner(graph, 0.4, seed=0, provider=provider)
        stats = provider.stats()
        print(
            f"\nprovider: {stats['requests']} decomposition request(s), "
            f"{stats['memo_hits']} memo hit(s)"
        )
    print(
        "smaller beta -> bigger pieces -> sparser spanner but larger "
        "stretch bound\n(4*max_radius + 1); measured stretch sits well "
        "below the bound."
    )


if __name__ == "__main__":
    main()
