#!/usr/bin/env python
"""SDD/Laplacian solving — the paper's headline application ([9, 11]).

Pipeline: shifted decompositions → AKPW low-stretch tree → ultrasparsifier
preconditioner → PCG.  Compares iteration counts across preconditioners on
a 2D grid Poisson problem.

Run:  python examples/sdd_solver.py
"""

import numpy as np

from repro.graphs import grid_2d
from repro.solvers import (
    LaplacianSolver,
    PRECONDITIONERS,
    random_zero_sum_rhs,
    residual_norm,
)


def main() -> None:
    graph = grid_2d(40, 40)
    b = random_zero_sum_rhs(graph, seed=1)
    print(
        f"solving L x = b on a 40x40 grid "
        f"(n={graph.num_vertices}, m={graph.num_edges}), rtol=1e-8\n"
    )
    print(f"{'preconditioner':>14} {'iterations':>11} {'residual':>10} "
          f"{'tree_stretch':>13}")
    for pc in PRECONDITIONERS:
        solver = LaplacianSolver(graph, preconditioner=pc, seed=2)
        res = solver.solve(b, rtol=1e-8, max_iterations=4000)
        resid = residual_norm(solver.laplacian, res.x, b)
        stretch = solver.stats.tree_total_stretch
        stretch_str = f"{stretch:.0f}" if np.isfinite(stretch) else "-"
        print(
            f"{pc:>14} {res.num_iterations:>11d} {resid:>10.2e} "
            f"{stretch_str:>13}"
        )

    print(
        "\nThe 'ultrasparse' row is the paper-lineage pipeline: the "
        "low-stretch tree\nplus stretch-sampled off-tree edges, solved "
        "directly as a preconditioner.\nIts advantage over 'none'/'jacobi' "
        "grows with problem size\n(see benchmarks/bench_solver.py)."
    )


if __name__ == "__main__":
    main()
