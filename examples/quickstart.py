#!/usr/bin/env python
"""Quickstart: decompose a graph, inspect the result, verify the guarantees.

``decompose()`` is the unified entry point — it picks the right algorithm
for the graph type, accepts any registered ``method`` plus validated
per-method options, and always returns a ``PartitionResult``.
``decompose_many()`` fans a configuration out over seeds and aggregates.

Run:  python examples/quickstart.py
"""

from repro.core import decompose, decompose_many, verify_decomposition
from repro.core.theory import (
    cut_probability_bound,
    expected_delta_max,
    whp_radius_bound,
)
from repro.graphs import grid_2d, uniform_weights


def main() -> None:
    # A 100x100 grid — the small version of the paper's Figure 1 workload.
    graph = grid_2d(100, 100)
    beta = 0.05
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}, beta={beta}")

    # One call runs Algorithm 1 (exponentially shifted BFS); method="auto"
    # resolves to "bfs" for unweighted graphs.  Per-method options are
    # validated keywords, e.g. decompose(..., method="bfs",
    # tie_break="permutation") for the Section 5 variant.
    result = decompose(graph, beta, seed=0)
    d = result.decomposition

    print(f"\npieces:        {d.num_pieces}")
    print(f"max radius:    {d.max_radius()}")
    print(f"cut edges:     {d.num_cut_edges()} / {graph.num_edges}")
    print(f"cut fraction:  {d.cut_fraction():.4f}  (target beta = {beta})")

    # The trace carries the Theorem 1.2 quantities.
    t = result.trace
    print(f"\nBFS rounds:    {t.rounds}")
    print(f"work (arcs):   {t.extra['bfs_work']}  (2m = {graph.num_arcs})")
    print(f"delta_max:     {t.delta_max:.2f}"
          f"  (E = H_n/beta = {expected_delta_max(graph.num_vertices, beta):.2f})")

    # Theory vs this run.
    n = graph.num_vertices
    print(f"\nw.h.p. radius bound (d=1):  {whp_radius_bound(n, beta):.1f}")
    print(f"cut probability bound:      {cut_probability_bound(beta):.4f}")

    # Deterministic invariants: partition / connectivity / Lemma 4.1 hops.
    report = verify_decomposition(d, beta=beta, delta_max=t.delta_max)
    print(f"\ninvariants hold:            {report.all_invariants_hold()}")
    print(f"radius within certificate:  {report.radius_within_certificate}")

    # Theorem 1.2 holds with constant probability per run, so real studies
    # repeat over seeds — decompose_many batches that (optionally on a
    # process pool) and aggregates mean/std statistics.
    batch = decompose_many(graph, beta, seeds=8)
    agg = batch.aggregate()
    print(f"\nover {int(agg['num_runs'])} seeds: "
          f"cut fraction {agg['cut_fraction_mean']:.4f}"
          f" +- {agg['cut_fraction_std']:.4f},"
          f" max radius {agg['max_radius_mean']:.1f}"
          f" +- {agg['max_radius_std']:.1f}")

    # Weighted graphs go through the same entry point: a WeightedCSRGraph
    # dispatches to the Section 6 shifted-Dijkstra method automatically.
    wgraph = uniform_weights(grid_2d(40, 40), 2.0)
    wresult = decompose(wgraph, beta, seed=0, validate=True)
    wd = wresult.decomposition
    print(f"\nweighted ({wresult.trace.method}): "
          f"{wd.num_pieces} pieces, "
          f"cut weight fraction {wd.cut_weight_fraction():.4f}, "
          f"invariants {wresult.report.all_invariants_hold()}")


if __name__ == "__main__":
    main()
