#!/usr/bin/env python
"""Quickstart for the decomposition service (`repro.serve`).

Starts a server on a background thread, uploads a graph once, then drives
it the way a spanner/hopset pipeline would: many (beta, seed) requests
over the same graph.  Repeat requests are answered from the memoizing
cache — byte-identical to the cold computation, because decompositions
are derandomized — and the stats op shows the cache doing the work.

Run:  python examples/serve_quickstart.py [grid_side]
"""

from __future__ import annotations

import sys

from repro.graphs import grid_2d
from repro.serve import ServeClient, serve_background


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    graph = grid_2d(side, side)
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}")

    with serve_background(max_workers=2) as server:
        host, port = server.address
        print(f"server: {host}:{port}")
        with ServeClient(host, port) as client:
            # The handshake advertises the method registry — the same
            # document `repro methods --json` prints.
            hello = client.hello()
            print(f"methods: {', '.join(m['name'] for m in hello['methods'])}")

            # Upload once; every later request references the digest.
            digest = client.upload(graph)
            print(f"digest:  {digest[:16]}...")

            # A pipeline's inner loop: several betas, several seeds.
            for beta in (0.02, 0.05):
                for seed in range(3):
                    result = client.decompose(digest, beta, seed=seed)
                    print(
                        f"beta={beta:<5} seed={seed} "
                        f"pieces={result.num_pieces:<5} cached={result.cached}"
                    )

            # The same requests again — all warm hits, bit-identical.
            reruns = [
                client.decompose(digest, beta, seed=seed)
                for beta in (0.02, 0.05)
                for seed in range(3)
            ]
            print(f"reruns cached: {all(r.cached for r in reruns)}")

            cache = client.stats()["cache"]
            print(
                f"cache: {cache['hits']} hits, {cache['misses']} misses, "
                f"{cache['bytes']} bytes resident"
            )


if __name__ == "__main__":
    main()
