#!/usr/bin/env python
"""Parallel execution backends: vectorised rounds vs multiprocessing.

Demonstrates the reproduction's parallelism story (see DESIGN.md §2):

- the vectorised engine executes one PRAM round per NumPy pass;
- the multiprocessing backend distributes frontier gathers over real worker
  processes (message-passing, mpi4py-style 1-D decomposition) and produces
  **bit-identical** output;
- Brent's bound converts the measured (work, depth) into simulated time on
  p processors — the quantity Theorem 1.2 is actually about.

Run:  python examples/parallel_backends.py
"""

import time

import numpy as np

from repro.bfs import ParallelBFSEngine, delayed_multisource_bfs
from repro.core import sample_shifts
from repro.graphs import grid_2d
from repro.pram import brent_time


def main() -> None:
    graph = grid_2d(60, 60)
    beta = 0.1
    shifts = sample_shifts(graph.num_vertices, beta, seed=3)
    print(f"grid 60x60, beta={beta}\n")

    t0 = time.perf_counter()
    serial = delayed_multisource_bfs(
        graph, shifts.start_time, tie_key=shifts.tie_key
    )
    t_serial = time.perf_counter() - t0
    print(f"vectorised engine: {serial.num_rounds} rounds, "
          f"work={serial.work}, {t_serial * 1000:.1f} ms")

    with ParallelBFSEngine(graph, num_workers=2) as engine:
        t0 = time.perf_counter()
        par = engine.partition_delayed(
            shifts.start_time, tie_key=shifts.tie_key
        )
        t_par = time.perf_counter() - t0
    identical = np.array_equal(serial.center, par.center) and np.array_equal(
        serial.hops, par.hops
    )
    print(f"mp backend (2 workers): identical={identical}, "
          f"{t_par * 1000:.1f} ms (IPC-bound at this scale — expected)")

    print("\nBrent-simulated time (work/p + depth), the Theorem 1.2 view:")
    depth = serial.active_rounds * int(np.ceil(np.log2(graph.num_vertices)))
    print(f"{'p':>6} {'T_p':>12}")
    for p in (1, 4, 16, 64, 256):
        print(f"{p:>6} {brent_time(serial.work, depth, p):>12.0f}")
    print(
        "\nwork/p dominates until p ~ work/depth "
        f"(= {serial.work // max(depth, 1)}); past that the "
        "O(log^2 n / beta) depth is the floor."
    )


if __name__ == "__main__":
    main()
