#!/usr/bin/env python
"""Reproduce the paper's Figure 1: grid decompositions across six β values.

Writes one PPM image per β (viewable with any image tool; `convert x.ppm
x.png` if you want PNGs) plus an ASCII thumbnail to the terminal.

Run:  python examples/figure1_grid.py [side]
      (side defaults to 200; the paper uses 1000)
"""

import sys
from pathlib import Path

from repro.core import decompose
from repro.graphs import grid_2d
from repro.viz import render_grid_ascii, render_grid_ppm

FIGURE1_BETAS = (0.002, 0.005, 0.01, 0.02, 0.05, 0.1)


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    out_dir = Path("figure1_output")
    out_dir.mkdir(exist_ok=True)
    graph = grid_2d(side, side)
    print(f"decomposing a {side}x{side} grid at {len(FIGURE1_BETAS)} betas\n")
    print(f"{'beta':>8} {'pieces':>8} {'max_rad':>8} {'cut_frac':>10}  render")
    for beta in FIGURE1_BETAS:
        result = decompose(graph, beta, seed=1307)
        d = result.decomposition
        path = render_grid_ppm(
            d.labels, side, side, out_dir / f"beta_{beta}.ppm"
        )
        print(
            f"{beta:>8.3f} {d.num_pieces:>8d} {d.max_radius():>8d} "
            f"{d.cut_fraction():>10.4f}  {path}"
        )
    # Terminal thumbnail of the middle panel.
    mid = decompose(graph, 0.02, seed=1307).decomposition
    print("\nASCII thumbnail (beta = 0.02):\n")
    print(render_grid_ascii(mid.labels, side, side, max_size=48))


if __name__ == "__main__":
    main()
