#!/usr/bin/env python
"""Linial–Saks block decomposition by iterating the (1/2, O(log n)) LDD.

Every edge lands in exactly one block; each block's connected pieces have
small strong diameter; the number of blocks is logarithmic in m because each
iteration keeps (in expectation) half the remaining edges inside pieces —
exactly the construction the paper's Section 2 sketches.

Run:  python examples/block_decomposition.py
"""

from repro.blockdecomp import block_decomposition
from repro.core.theory import blockdecomp_iteration_bound
from repro.graphs import grid_2d


def main() -> None:
    graph = grid_2d(30, 30)
    print(f"grid 30x30: n={graph.num_vertices}, m={graph.num_edges}")
    bd = block_decomposition(graph, seed=0)
    bound = blockdecomp_iteration_bound(graph.num_edges)
    print(
        f"blocks: {bd.num_blocks}   "
        f"(ceil(log2 m) + 1 = {bound})\n"
    )
    print(f"{'block':>6} {'edges':>7} {'max_piece_radius':>17}")
    counts = bd.block_edge_counts()
    for i in range(bd.num_blocks):
        print(f"{i:>6d} {int(counts[i]):>7d} {bd.block_radii[i]:>17d}")
    remaining = graph.num_edges
    print("\nedges remaining after each iteration (expected halving):")
    for i in range(bd.num_blocks):
        remaining -= int(counts[i])
        print(f"  after block {i}: {remaining}")


if __name__ == "__main__":
    main()
