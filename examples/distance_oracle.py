#!/usr/bin/env python
"""Approximate distance oracle from one decomposition (Cohen [13] lineage).

Preprocess: decompose, store per-vertex hops-to-center, and all-pairs
center distances on the cluster quotient.  Query: O(1) time, never
underestimates.  Shows the quality/β trade-off.  The decompositions run
through the pipeline layer (one memoizing ``EngineProvider`` here —
rebuilding the β=0.3 oracle below is a memo hit, not a recomputation).

Run:  python examples/distance_oracle.py
"""

import numpy as np

from repro.bfs import bfs
from repro.graphs import grid_2d
from repro.oracles import build_oracle
from repro.pipeline import EngineProvider


def main() -> None:
    graph = grid_2d(30, 30)
    print(f"grid 30x30: n={graph.num_vertices}, m={graph.num_edges}\n")
    print(f"{'beta':>6} {'pieces':>7} {'mean_ratio':>11} {'max_ratio':>10}")
    with EngineProvider() as provider:
        for beta in (0.02, 0.1, 0.3):
            oracle = build_oracle(graph, beta, seed=0, provider=provider)
            rep = oracle.evaluate(num_sources=10, seed=1)
            print(
                f"{beta:>6.2f} {oracle.num_pieces:>7d} "
                f"{rep.mean_ratio:>11.2f} {rep.max_ratio:>10.2f}"
            )

        # Spot-check a few individual queries against exact BFS.  Same
        # configuration as above -> the decomposition comes from the memo.
        oracle = build_oracle(graph, 0.3, seed=0, provider=provider)
        stats = provider.stats()
        print(
            f"\nprovider: {stats['requests']} request(s), "
            f"{stats['memo_hits']} memo hit(s)"
        )
    rng = np.random.default_rng(2)
    print("\nsample queries (estimate vs exact):")
    for _ in range(5):
        u, v = rng.integers(0, graph.num_vertices, size=2)
        exact = bfs(graph, int(u)).dist[int(v)]
        est = oracle.estimate(int(u), int(v))[0]
        print(f"  d({u:>3},{v:>3}) = {exact:>3}   estimate = {est:>5.1f}")


if __name__ == "__main__":
    main()
