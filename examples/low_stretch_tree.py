#!/usr/bin/env python
"""Low-stretch spanning trees via iterated shifted decompositions (AKPW).

Builds AKPW trees on a torus (the classic adversarial case for BFS trees)
across β values, compares stretch against the BFS-tree baseline, and shows
the per-level contraction record.  The per-level decompositions run
through the pipeline layer — here on a shared-memory ``PoolProvider``, so
every level executes on the persistent worker pool; swap in an
``EngineProvider`` (serial) or ``ServeProvider`` (remote server) and the
trees are bit-identical.

Run:  python examples/low_stretch_tree.py
"""

from repro.graphs import torus_2d
from repro.lowstretch import akpw_spanning_tree, bfs_spanning_tree, stretch_report
from repro.pipeline import EngineProvider, PoolProvider


def main() -> None:
    graph = torus_2d(20, 20)
    print(f"torus 20x20: n={graph.num_vertices}, m={graph.num_edges}\n")

    try:
        provider = PoolProvider(max_workers=2)
    except OSError:
        # Sandboxes without subprocess support degrade to the engine; the
        # trees are identical either way — that is the pipeline contract.
        provider = EngineProvider()
    with provider:
        print(f"AKPW trees across beta (backend: {provider.backend}):")
        print(
            f"{'beta':>6} {'levels':>7} {'mean_str':>9} {'max_str':>8} "
            f"{'total':>9}"
        )
        for beta in (0.2, 0.4, 0.6):
            res = akpw_spanning_tree(
                graph, beta=beta, seed=0, provider=provider
            )
            rep = stretch_report(graph, res.forest)
            print(
                f"{beta:>6.1f} {res.num_levels:>7d} {rep.mean:>9.3f} "
                f"{rep.max:>8.0f} {rep.total:>9.0f}"
            )

        baseline = stretch_report(graph, bfs_spanning_tree(graph, seed=0))
        print(
            f"\nBFS-tree baseline: mean={baseline.mean:.3f} "
            f"max={baseline.max:.0f} total={baseline.total:.0f}"
        )

        res = akpw_spanning_tree(graph, beta=0.4, seed=0, provider=provider)
        print("\nper-level contraction record (beta=0.4):")
        print(f"{'level':>6} {'supernodes':>11} {'edges':>7} {'beta':>6}")
        for i, ((n, m), b) in enumerate(zip(res.level_sizes, res.level_betas)):
            print(f"{i:>6d} {n:>11d} {m:>7d} {b:>6.2f}")

        stats = provider.stats()
        print(
            f"\nprovider: {stats['requests']} request(s), "
            f"{stats['memo_hits']} memo hit(s) — the beta=0.4 rebuild "
            "cost nothing."
        )

    print(
        "\nWhy this matters: the total stretch bounds the condition number "
        "of the\ntree-preconditioned Laplacian system (see "
        "examples/sdd_solver.py)."
    )


if __name__ == "__main__":
    main()
