"""Legacy setup shim + optional native-kernel build.

The execution environment has no ``wheel`` package and no network, so PEP 660
editable installs (which require ``bdist_wheel``) are unavailable; this shim
lets ``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
All metadata lives in ``pyproject.toml``.

The one thing declared here is the **optional** C extension
``repro.bfs._kernel`` (the compiled frontier kernel for the shifted BFS).
It is marked ``optional`` and the build_ext command below additionally
swallows compiler failures, so an install on a machine with no C toolchain
still succeeds — the package then runs on the pure-numpy kernel
(``kernel="auto"`` degrades silently; see ``repro.bfs.kernels``).

Build in a source checkout with::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """Build the native kernel if possible; never fail the install."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # compiler missing / broken toolchain
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        print(
            "WARNING: building the optional native kernel repro.bfs._kernel "
            f"failed ({exc!r}); the package will use the pure-python kernel."
        )


setup(
    ext_modules=[
        Extension(
            "repro.bfs._kernel",
            sources=["src/repro/bfs/_kernelmod.c"],
            optional=True,
            extra_compile_args=["-O3"],
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
