"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so PEP 660
editable installs (which require ``bdist_wheel``) are unavailable; this shim
lets ``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
