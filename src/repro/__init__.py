"""repro — reproduction of Miller, Peng & Xu,
*Parallel Graph Decompositions Using Random Shifts* (SPAA 2013).

Quick start::

    from repro.graphs import grid_2d
    from repro.core import decompose

    result = decompose(grid_2d(100, 100), beta=0.05, seed=0)
    print(result.summary())

``decompose`` is the unified entry point: it dispatches on the graph type
(unweighted ``CSRGraph`` vs ``WeightedCSRGraph``), selects any registered
``method`` (``"auto"`` picks the paper's algorithm for the graph kind), and
validates per-method ``**options`` against the method registry.  Batched
multi-seed or multi-graph runs go through its companion::

    from repro.core import decompose_many

    batch = decompose_many(grid_2d(100, 100), beta=0.05, seeds=8)
    print(batch.aggregate())          # mean/std of cut fraction, radius, ...

For serving many decompositions of the same graphs, the shared-memory batch
runtime keeps the graphs resident and streams requests to persistent
workers (``decompose_many(..., executor="shared")`` routes through it)::

    from repro.runtime import DecompositionPool

    with DecompositionPool(grid_2d(100, 100)) as pool:
        result = pool.decompose("0", beta=0.05, seed=0)

Long-lived workloads go one layer up: the decomposition service
(:mod:`repro.serve`, CLI ``repro serve`` / ``repro request``) fronts a
pool with a content-addressed graph store, a memoizing result cache
(decompositions are derandomized, so warm hits are byte-identical), and
in-flight request coalescing::

    from repro.serve import ServeClient, serve_background

    with serve_background(max_workers=4) as server:
        with ServeClient(*server.address) as client:
            digest = client.upload(grid_2d(100, 100))
            result = client.decompose(digest, beta=0.05, seed=0)

The older ``partition(graph, beta)`` facade still works but is deprecated
(each call emits a ``DeprecationWarning``) — see
:mod:`repro.core.partition` and CHANGES.md.

Package layout (see DESIGN.md for the full inventory):

- :mod:`repro.core` — the decomposition engine, method registry, the
  paper's algorithm and baselines, verification;
- :mod:`repro.runtime` — the shared-memory batch runtime (resident graphs,
  persistent worker pools, throughput measurement);
- :mod:`repro.serve` — the decomposition service over it (async TCP
  server, content-addressed store, memoizing cache, blocking client);
- :mod:`repro.graphs`, :mod:`repro.rng`, :mod:`repro.bfs`, :mod:`repro.pram`
  — the substrates it runs on;
- :mod:`repro.lowstretch`, :mod:`repro.spanners`, :mod:`repro.embeddings`,
  :mod:`repro.solvers`, :mod:`repro.blockdecomp`, :mod:`repro.oracles` — the
  applications the paper motivates;
- :mod:`repro.telemetry` — metrics registry and tracing spans (the serve
  layer's ``metrics`` op, ``repro request --trace``, ``repro trace``).

Library logging follows the stdlib convention: every module logs through
``logging.getLogger(__name__)`` under the ``repro`` root, which carries a
``NullHandler`` — importing the package never configures logging or prints
to stderr.  Applications opt in with ``logging.basicConfig()`` (or the
CLI's ``--verbose``).
"""

import logging as _logging

from repro._version import __version__
from repro.core.engine import (
    BatchResult,
    PartitionResult,
    decompose,
    decompose_many,
)
from repro.core.partition import partition

# Stdlib library-logging convention: silent unless the application
# configures handlers (the CLI's --verbose does).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__all__ = [
    "__version__",
    "decompose",
    "decompose_many",
    "partition",
    "PartitionResult",
    "BatchResult",
]
