"""repro — reproduction of Miller, Peng & Xu,
*Parallel Graph Decompositions Using Random Shifts* (SPAA 2013).

Quick start::

    from repro.graphs import grid_2d
    from repro.core import partition

    result = partition(grid_2d(100, 100), beta=0.05, seed=0)
    print(result.summary())

Package layout (see DESIGN.md for the full inventory):

- :mod:`repro.core` — the partition algorithm, baselines, verification;
- :mod:`repro.graphs`, :mod:`repro.rng`, :mod:`repro.bfs`, :mod:`repro.pram`
  — the substrates it runs on;
- :mod:`repro.lowstretch`, :mod:`repro.spanners`, :mod:`repro.embeddings`,
  :mod:`repro.solvers`, :mod:`repro.blockdecomp`, :mod:`repro.oracles` — the
  applications the paper motivates.
"""

from repro._version import __version__
from repro.core.partition import PartitionResult, partition

__all__ = ["__version__", "partition", "PartitionResult"]
