"""Jacobi (diagonal) preconditioner — the trivial baseline.

For unweighted Laplacians the diagonal is the degree vector; Jacobi barely
changes the spectrum of near-regular graphs, which is exactly why the tree
preconditioner's iteration-count win in ``bench_solver`` is the interesting
comparison.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix

from repro.errors import GraphError

__all__ = ["JacobiPreconditioner"]


class JacobiPreconditioner:
    """``r ↦ D⁻¹ r`` with ``D = diag(A)``; zero diagonals pass through."""

    def __init__(self, matrix: csr_matrix) -> None:
        diag = np.asarray(matrix.diagonal(), dtype=np.float64)
        if diag.shape[0] != matrix.shape[0]:
            raise GraphError("matrix must be square")
        self._inv_diag = np.where(diag > 0, 1.0 / np.maximum(diag, 1e-300), 1.0)

    def apply(self, r: np.ndarray) -> np.ndarray:
        return self._inv_diag * r
