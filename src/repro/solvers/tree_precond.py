"""Spanning-tree preconditioners — O(n) exact tree-Laplacian solves.

The combinatorial-preconditioning pipeline the paper plugs into: a spanning
tree ``T ⊆ G`` preconditions ``L_G`` with ``L_T``, and the preconditioned
condition number is bounded by the tree's *total stretch* (Spielman–Teng via
[15]) — which is exactly what the low-stretch construction in
:mod:`repro.lowstretch` minimises.  Applying the preconditioner requires
solving ``L_T y = r``, which a tree admits in linear time by leaf
elimination:

- **up sweep** (leaves → root): eliminating leaf ``v`` with parent ``p``
  adds ``r_v`` to ``r_p`` (no fill-in on a tree);
- **down sweep** (root → leaves): ``y_v = y_p + r'_v / w(v, p)`` with the
  root grounded at 0;
- per-component mean subtraction selects the canonical solution of the
  singular system.

Both sweeps are evaluated level-by-level with vectorised scatters, so an
apply is a handful of NumPy passes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.trees.structure import RootedForest

__all__ = ["TreePreconditioner"]


class TreePreconditioner:
    """Exact ``L_T⁻¹`` (pseudo-inverse) application for a spanning forest."""

    def __init__(self, forest: RootedForest) -> None:
        n = forest.num_vertices
        if n == 0:
            raise GraphError("cannot precondition an empty forest")
        self._parent = forest.parent
        self._weight = forest.edge_weight
        depth = forest.depth
        self._max_depth = int(depth.max()) if n else 0
        # Vertices bucketed by depth for level-synchronous sweeps.
        order = np.argsort(depth, kind="stable")
        self._levels: list[np.ndarray] = []
        bounds = np.searchsorted(depth[order], np.arange(self._max_depth + 2))
        for d in range(self._max_depth + 1):
            self._levels.append(order[bounds[d] : bounds[d + 1]])
        # Component bookkeeping for the mean-zero projection.
        self._component = _root_of(forest)
        comp_ids, comp_index = np.unique(self._component, return_inverse=True)
        self._comp_index = comp_index
        self._comp_sizes = np.bincount(comp_index).astype(np.float64)

    @property
    def num_vertices(self) -> int:
        return int(self._parent.shape[0])

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Solve ``L_T y = P r`` and return the mean-zero ``y``.

        ``P`` projects the input onto each tree's zero-sum space first, so
        the singular solve is well-posed for any input.
        """
        r = np.asarray(r, dtype=np.float64)
        if r.shape[0] != self.num_vertices:
            raise GraphError("rhs length must equal the vertex count")
        rhs = self._project(r.copy())
        # Up sweep: deepest level first, each vertex pushes its accumulated
        # rhs onto its parent.  np.add.at handles sibling collisions.
        for level in reversed(self._levels[1:]):
            np.add.at(rhs, self._parent[level], rhs[level])
        # Down sweep: roots are grounded at 0, children add r'_v / w_v.
        y = np.zeros_like(rhs)
        for level in self._levels[1:]:
            p = self._parent[level]
            y[level] = y[p] + rhs[level] / self._weight[level]
        return self._project(y)

    def _project(self, x: np.ndarray) -> np.ndarray:
        """Subtract each tree's mean."""
        sums = np.bincount(
            self._comp_index, weights=x, minlength=self._comp_sizes.shape[0]
        )
        return x - (sums / self._comp_sizes)[self._comp_index]


def _root_of(forest: RootedForest) -> np.ndarray:
    """Root id per vertex via pointer jumping."""
    n = forest.num_vertices
    root = np.where(forest.parent == -1, np.arange(n), forest.parent)
    for _ in range(int(np.ceil(np.log2(n + 1))) + 2):
        nxt = root[root]
        if np.array_equal(nxt, root):
            break
        root = nxt
    return root
