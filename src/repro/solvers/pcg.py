"""Preconditioned conjugate gradient — written here, not imported.

The parallel SDD solvers the paper feeds into ([9]) are preconditioned
Chebyshev/CG iterations whose iteration count is governed by the quality of
a combinatorial preconditioner.  This is a textbook PCG with:

- explicit support for *singular* (Laplacian) systems via a range projector,
- an iteration/residual trace for the solver benchmarks, and
- a pluggable preconditioner ``apply(r) → M⁻¹ r``.

Iteration-count comparisons between preconditioners is the benchmark's
metric, so the loop counts matrix-vector products exactly (one per
iteration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConvergenceError, ParameterError

__all__ = ["PCGResult", "pcg"]


@dataclass(frozen=True, eq=False)
class PCGResult:
    """Solution and convergence trace."""

    x: np.ndarray
    converged: bool
    num_iterations: int
    #: relative preconditioned-residual norms per iteration (including 0th).
    residual_history: tuple[float, ...]


def pcg(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    *,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
    project: Callable[[np.ndarray], np.ndarray] | None = None,
    rtol: float = 1e-8,
    max_iterations: int = 1000,
    raise_on_failure: bool = False,
) -> PCGResult:
    """Solve ``A x = b`` for SPD (or SPSD + projector) ``A``.

    Parameters
    ----------
    matvec:
        ``x ↦ A x``.
    b:
        Right-hand side.  For singular Laplacians it must lie in
        ``range(A)``; pass ``project`` to enforce this.
    preconditioner:
        ``r ↦ M⁻¹ r`` with SPD ``M``; identity when omitted.
    project:
        Projection onto ``range(A)`` applied to ``b``, the initial residual
        and each preconditioned direction — the standard singular-system
        guard.
    rtol:
        Convergence threshold on ``‖r‖₂ / ‖b‖₂``.
    max_iterations:
        Iteration budget; ``raise_on_failure`` selects between raising
        :class:`ConvergenceError` and returning ``converged=False``.
    """
    if rtol <= 0:
        raise ParameterError("rtol must be positive")
    if max_iterations < 1:
        raise ParameterError("max_iterations must be >= 1")
    b = np.asarray(b, dtype=np.float64)
    if project is not None:
        b = project(b)
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return PCGResult(
            x=np.zeros_like(b),
            converged=True,
            num_iterations=0,
            residual_history=(0.0,),
        )

    x = np.zeros_like(b)
    r = b.copy()
    z = preconditioner(r) if preconditioner is not None else r.copy()
    if project is not None:
        z = project(z)
    p = z.copy()
    rz = float(r @ z)
    history = [float(np.linalg.norm(r)) / norm_b]

    for iteration in range(1, max_iterations + 1):
        ap = matvec(p)
        pap = float(p @ ap)
        if pap <= 0:
            # Either numerical breakdown or a direction in the kernel; the
            # projector should prevent this, so treat as failure.
            if raise_on_failure:
                raise ConvergenceError("PCG breakdown: p'Ap <= 0")
            return PCGResult(
                x=x,
                converged=False,
                num_iterations=iteration - 1,
                residual_history=tuple(history),
            )
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        rel = float(np.linalg.norm(r)) / norm_b
        history.append(rel)
        if rel <= rtol:
            if project is not None:
                x = project(x)
            return PCGResult(
                x=x,
                converged=True,
                num_iterations=iteration,
                residual_history=tuple(history),
            )
        z = preconditioner(r) if preconditioner is not None else r
        if project is not None:
            z = project(z)
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new

    if raise_on_failure:
        raise ConvergenceError(
            f"PCG did not reach rtol={rtol} in {max_iterations} iterations "
            f"(last relative residual {history[-1]:.3e})"
        )
    if project is not None:
        x = project(x)
    return PCGResult(
        x=x,
        converged=False,
        num_iterations=max_iterations,
        residual_history=tuple(history),
    )
