"""Ultrasparsifier preconditioner: low-stretch tree + sampled off-tree edges.

The solver chain in [9] does not precondition with the bare tree: it
augments the low-stretch tree with a small set of off-tree edges sampled
with probability proportional to their *stretch* (the leverage-score proxy),
then solves the resulting ultra-sparse Laplacian directly.  This is the step
where the decomposition's low-stretch property actually pays: sampling by
stretch concentrates the spectral approximation with few edges.

At the scales a Python reproduction runs, the bare tree loses to Jacobi on
well-conditioned graphs (see ``bench_solver``); the augmented preconditioner
restores the expected ordering, matching the paper's pipeline rather than a
strawman.

The augmented system is factorised once with SuperLU (on the ridge-
regularised Laplacian, making it SPD); each application is a pair of
triangular solves.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.linalg import splu

from repro.errors import GraphError, ParameterError
from repro.graphs.build import from_edges
from repro.graphs.csr import CSRGraph
from repro.lowstretch.stretch import edge_stretches
from repro.rng.seeding import SeedLike, make_generator
from repro.solvers.laplacian import graph_laplacian
from repro.trees.structure import RootedForest

__all__ = ["UltrasparsifierPreconditioner"]


class UltrasparsifierPreconditioner:
    """Direct solves on (tree + stretch-sampled off-tree edges)."""

    def __init__(
        self,
        graph: CSRGraph,
        forest: RootedForest,
        *,
        offtree_fraction: float = 0.2,
        seed: SeedLike = None,
        ridge: float = 1e-10,
    ) -> None:
        """Build and factorise the augmented Laplacian.

        Parameters
        ----------
        graph, forest:
            The system graph and a spanning forest of it.
        offtree_fraction:
            Expected fraction of off-tree edges to add, sampled without
            replacement with probability proportional to stretch.
        ridge:
            Relative diagonal regularisation making the factorisation
            non-singular; scaled by the mean degree.
        """
        if not 0.0 <= offtree_fraction <= 1.0:
            raise ParameterError("offtree_fraction must be in [0, 1]")
        if forest.num_vertices != graph.num_vertices:
            raise GraphError("forest and graph must share the vertex set")
        rng = make_generator(seed)
        n = graph.num_vertices

        tree_child = np.flatnonzero(forest.parent != -1)
        tree_edges = np.stack(
            [tree_child, forest.parent[tree_child]], axis=1
        )
        edges = graph.edge_array()
        stretches = edge_stretches(graph, forest)
        off_mask = stretches > 1.0  # tree edges have stretch exactly 1
        off_edges = edges[off_mask]
        off_stretch = stretches[off_mask]
        budget = int(round(offtree_fraction * off_edges.shape[0]))
        if budget and off_edges.shape[0]:
            prob = off_stretch / off_stretch.sum()
            picked = rng.choice(
                off_edges.shape[0],
                size=min(budget, off_edges.shape[0]),
                replace=False,
                p=prob,
            )
            extra = off_edges[picked]
        else:
            extra = np.zeros((0, 2), dtype=np.int64)
        sparsifier = from_edges(
            n, np.concatenate([tree_edges, extra], axis=0), dedup=True
        )
        lap = graph_laplacian(sparsifier).tocsc()
        scale = max(1.0, float(sparsifier.degrees().mean()))
        lap = lap + ridge * scale * _identity(n)
        self._lu = splu(lap)
        self._num_edges = sparsifier.num_edges

    @property
    def num_edges(self) -> int:
        """Edges in the augmented sparsifier (tree + sampled)."""
        return self._num_edges

    def apply(self, r: np.ndarray) -> np.ndarray:
        """``r ↦ (L_H + εI)⁻¹ r`` via the cached factorisation."""
        return self._lu.solve(np.asarray(r, dtype=np.float64))


def _identity(n: int) -> csr_matrix:
    return csr_matrix(
        (np.ones(n), np.arange(n), np.arange(n + 1)), shape=(n, n)
    )
