"""SDD/Laplacian solving: PCG with decomposition-derived preconditioners."""

from repro.solvers.jacobi import JacobiPreconditioner
from repro.solvers.laplacian import (
    component_projector,
    graph_laplacian,
    random_zero_sum_rhs,
    residual_norm,
)
from repro.solvers.pcg import PCGResult, pcg
from repro.solvers.solver import PRECONDITIONERS, LaplacianSolver, SolveStats
from repro.solvers.tree_precond import TreePreconditioner

__all__ = [
    "JacobiPreconditioner",
    "component_projector",
    "graph_laplacian",
    "random_zero_sum_rhs",
    "residual_norm",
    "PCGResult",
    "pcg",
    "PRECONDITIONERS",
    "LaplacianSolver",
    "SolveStats",
    "TreePreconditioner",
]
