"""Laplacian solver facade — the end-to-end application of the paper.

Wires the whole pipeline together the way [9] describes: shifted
decompositions → AKPW low-stretch spanning tree → tree-preconditioned CG on
the graph Laplacian.  The facade exposes preconditioner choices so the
benchmark can show the ordering the theory predicts:

    iterations(tree-akpw) ≤ iterations(tree-bfs) ≪ iterations(jacobi/none)

on graphs where BFS trees have high stretch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.lowstretch.akpw import akpw_spanning_tree, bfs_spanning_tree
from repro.lowstretch.stretch import stretch_report
from repro.rng.seeding import SeedLike
from repro.solvers.jacobi import JacobiPreconditioner
from repro.solvers.laplacian import component_projector, graph_laplacian
from repro.solvers.pcg import PCGResult, pcg
from repro.solvers.tree_precond import TreePreconditioner

__all__ = ["LaplacianSolver", "SolveStats", "PRECONDITIONERS"]

#: Available preconditioner names.
PRECONDITIONERS = ("ultrasparse", "tree-akpw", "tree-bfs", "jacobi", "none")


@dataclass(frozen=True)
class SolveStats:
    """Construction-time facts useful for reporting."""

    preconditioner: str
    #: total stretch of the preconditioning tree (condition-number proxy);
    #: NaN for non-tree preconditioners.
    tree_total_stretch: float


class LaplacianSolver:
    """PCG Laplacian solver with decomposition-derived preconditioning.

    Parameters
    ----------
    graph:
        Undirected graph whose Laplacian is to be solved against.
    preconditioner:
        One of :data:`PRECONDITIONERS`.
    beta:
        The per-level decomposition parameter used by the AKPW tree.
    seed:
        Randomness for tree construction.
    provider, method:
        Pipeline routing for the tree's decompositions (see
        :mod:`repro.pipeline`): any
        :class:`~repro.pipeline.DecompositionProvider` backend and any
        registered unweighted method.  Two solvers built with the same
        configuration and a shared provider reuse every AKPW level from
        the provider's memo.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        preconditioner: str = "tree-akpw",
        beta: float = 0.5,
        seed: SeedLike = None,
        provider=None,
        method: str = "auto",
    ) -> None:
        if preconditioner not in PRECONDITIONERS:
            raise ParameterError(
                f"unknown preconditioner {preconditioner!r}; "
                f"choices: {PRECONDITIONERS}"
            )
        self._graph = graph
        self._lap = graph_laplacian(graph)
        self._project = component_projector(graph)
        total_stretch = float("nan")
        if preconditioner == "ultrasparse":
            from repro.solvers.ultrasparse import UltrasparsifierPreconditioner

            forest = akpw_spanning_tree(
                graph, beta=beta, seed=seed, provider=provider, method=method
            ).forest
            self._precond = UltrasparsifierPreconditioner(
                graph, forest, seed=seed
            ).apply
            total_stretch = stretch_report(graph, forest).total
        elif preconditioner == "tree-akpw":
            forest = akpw_spanning_tree(
                graph, beta=beta, seed=seed, provider=provider, method=method
            ).forest
            self._precond = TreePreconditioner(forest).apply
            total_stretch = stretch_report(graph, forest).total
        elif preconditioner == "tree-bfs":
            forest = bfs_spanning_tree(graph, seed=seed)
            self._precond = TreePreconditioner(forest).apply
            total_stretch = stretch_report(graph, forest).total
        elif preconditioner == "jacobi":
            self._precond = JacobiPreconditioner(self._lap).apply
        else:
            self._precond = None
        self._stats = SolveStats(
            preconditioner=preconditioner, tree_total_stretch=total_stretch
        )

    @property
    def stats(self) -> SolveStats:
        return self._stats

    @property
    def laplacian(self):
        """The assembled sparse Laplacian (scipy CSR)."""
        return self._lap

    def solve(
        self,
        b: np.ndarray,
        *,
        rtol: float = 1e-8,
        max_iterations: int = 2000,
    ) -> PCGResult:
        """Solve ``L x = b`` (``b`` is projected into ``range(L)``)."""
        return pcg(
            lambda x: self._lap @ x,
            b,
            preconditioner=self._precond,
            project=self._project,
            rtol=rtol,
            max_iterations=max_iterations,
        )
