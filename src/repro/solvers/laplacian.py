"""Graph Laplacians and right-hand-side utilities.

The solver application ([9, 11]: SDD systems, max-flow inner loops) operates
on ``L = D − A``.  Laplacians are singular — the all-ones vector spans the
kernel per connected component — so the helpers here also provide the
projections that keep PCG iterates inside ``range(L)``.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix

from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.graphs.ops import connected_components
from repro.graphs.weighted import WeightedCSRGraph

__all__ = [
    "graph_laplacian",
    "component_projector",
    "random_zero_sum_rhs",
    "residual_norm",
]


def graph_laplacian(graph: CSRGraph) -> csr_matrix:
    """Sparse Laplacian ``L = D − A`` (weighted when the graph is weighted)."""
    n = graph.num_vertices
    weighted = isinstance(graph, WeightedCSRGraph)
    off_data = -(graph.weights if weighted else np.ones(graph.num_arcs))
    adj = csr_matrix(
        (off_data, graph.indices, graph.indptr), shape=(n, n)
    )
    deg = -np.asarray(adj.sum(axis=1)).ravel()
    lap = adj.tolil()
    lap.setdiag(deg)
    return lap.tocsr()


def component_projector(graph: CSRGraph):
    """Return ``project(x)``: subtract each component's mean from ``x``.

    ``range(L)`` is exactly the space of vectors with zero sum on every
    connected component; PCG on a singular Laplacian must keep ``b`` and the
    iterates there.
    """
    comp = connected_components(graph)
    k = int(comp.max()) + 1 if comp.size else 0
    sizes = np.bincount(comp, minlength=k).astype(np.float64)

    def project(x: np.ndarray) -> np.ndarray:
        means = np.bincount(comp, weights=x, minlength=k) / sizes
        return x - means[comp]

    return project


def random_zero_sum_rhs(
    graph: CSRGraph, *, seed: int | None = None
) -> np.ndarray:
    """A random right-hand side lying in ``range(L)``.

    Gaussian entries with each component's mean removed — the standard
    benchmark workload for Laplacian solvers.
    """
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(graph.num_vertices)
    return component_projector(graph)(b)


def residual_norm(lap: csr_matrix, x: np.ndarray, b: np.ndarray) -> float:
    """Relative residual ``‖b − Lx‖₂ / ‖b‖₂`` (0 rhs → absolute norm)."""
    if x.shape != b.shape:
        raise ParameterError("x and b must have matching shapes")
    r = b - lap @ x
    nb = float(np.linalg.norm(b))
    return float(np.linalg.norm(r)) / nb if nb else float(np.linalg.norm(r))
