"""Consistent-hash ring assigning content digests to shards.

The cluster routes every graph-keyed request by its ``graph_digest``:
content addressing ("same digest, same graph, same cached bytes") plus a
deterministic digest → shard map means a request for a given graph always
lands where that graph — and every memoized result for it — lives.

The map is a classic consistent-hash ring: each shard label is hashed to
``replicas`` virtual points (SHA-256 of ``"label#i"``), a key is hashed
the same way, and the owning shard is the first vnode clockwise.  Virtual
nodes smooth the load split (64 per shard keeps the max/min resident-graph
ratio low at realistic graph counts), and adding or removing one shard
remaps only ~1/N of the key space — though this cluster never mutates the
ring at runtime: a dead shard keeps its segment and requests for it fail
loudly (see :class:`~repro.cluster.router.ClusterRouter`), because
silently remapping would recompute results that already exist on the
unreachable shard and split the cache.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Iterable, Sequence

from repro.errors import ParameterError

__all__ = ["HashRing", "DEFAULT_REPLICAS"]

#: virtual nodes per shard — balances a 3-shard ring to within a few
#: percent while keeping owner lookup a bisect over a few hundred points.
DEFAULT_REPLICAS = 64


def _point(label: str) -> int:
    """Ring coordinate of ``label``: the first 8 bytes of its SHA-256."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Immutable consistent-hash ring over shard labels.

    Parameters
    ----------
    nodes:
        Shard labels (conventionally ``"host:port"``); must be non-empty
        and unique.
    replicas:
        Virtual nodes per shard.
    """

    def __init__(
        self, nodes: Sequence[str], *, replicas: int = DEFAULT_REPLICAS
    ) -> None:
        nodes = list(nodes)
        if not nodes:
            raise ParameterError("a hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ParameterError(f"duplicate ring nodes: {nodes}")
        if replicas < 1:
            raise ParameterError(f"replicas must be >= 1, got {replicas}")
        self._nodes = tuple(nodes)
        self._replicas = int(replicas)
        points: list[tuple[int, str]] = []
        for node in nodes:
            for i in range(self._replicas):
                points.append((_point(f"{node}#{i}"), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    @property
    def nodes(self) -> tuple[str, ...]:
        """Ring members, in construction order."""
        return self._nodes

    @property
    def replicas(self) -> int:
        return self._replicas

    def owner(self, key: str) -> str:
        """The shard owning ``key`` — first vnode at or after its point."""
        idx = bisect.bisect_left(self._points, _point(key))
        if idx == len(self._points):
            idx = 0  # wrap around the ring
        return self._owners[idx]

    def distribution(self, keys: Iterable[str]) -> Counter:
        """``Counter`` of owners over ``keys`` — load-split diagnostics."""
        return Counter(self.owner(key) for key in keys)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __repr__(self) -> str:
        return (
            f"HashRing({len(self._nodes)} node(s), "
            f"{self._replicas} replicas)"
        )
