"""Single-process cluster deployment harnesses.

:func:`cluster_background` stands up a whole cluster — N shard servers
plus the router — on daemon threads in the current process, for tests,
benchmarks, and notebooks.  Each shard is a full
:class:`~repro.serve.server.DecompositionServer` with its own event loop,
worker pool, store, and cache (exactly the process-per-shard topology,
minus the processes), so cross-shard behaviour — routing stability,
upload-on-miss, dead-shard degradation — is exercised for real.

The ``repro cluster`` CLI builds the same topology for actual serving;
see :mod:`repro.cli`.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager

from repro.cluster.router import router_background
from repro.serve.client import ServeClient
from repro.serve.server import serve_background

__all__ = ["cluster_background"]


@contextmanager
def cluster_background(
    graphs=None,
    *,
    num_shards: int = 2,
    max_workers: int | None = None,
    replicas: int | None = None,
    owns_shards: bool = False,
    **shard_kwargs,
):
    """N shard servers + a router, all on daemon threads.

    Yields the started :class:`ClusterRouter` (``router.address`` is what
    clients connect to; ``router.shard_labels`` names the members).  The
    shard server handles are attached as ``router.shard_servers`` so
    fault-injection tests can stop individual members.
    ``graphs`` are preloaded *through the router*, so each lands on — and
    only on — its owning shard.  Extra keyword arguments
    (``cache_bytes``, ``idle_ttl``, ``start_method``) go to every shard.

    ::

        with cluster_background(graph, num_shards=3) as router:
            with ServeClient(*router.address) as client:
                client.decompose(digest, 0.3)   # lands on digest's owner
    """
    from repro.graphs.csr import CSRGraph

    if isinstance(graphs, CSRGraph):
        graphs = [graphs]
    router_kwargs = {"owns_shards": owns_shards}
    if replicas is not None:
        router_kwargs["replicas"] = replicas
    with ExitStack() as stack:
        shards = [
            stack.enter_context(
                serve_background(max_workers=max_workers, **shard_kwargs)
            )
            for _ in range(int(num_shards))
        ]
        router = stack.enter_context(
            router_background(
                [shard.address for shard in shards], **router_kwargs
            )
        )
        router.shard_servers = tuple(shards)
        for graph in graphs or ():
            with ServeClient(*router.address) as client:
                client.upload_graph(graph)
        yield router
