"""`ClusterRouter` — the front process of a sharded decomposition cluster.

The router speaks the same frame protocol as a
:class:`~repro.serve.server.DecompositionServer` (both generations, same
pipelined ``id`` semantics), so every existing client — ``ServeClient``,
``AsyncServeClient``, ``ServeProvider`` — works against it unchanged.
Behind it, N independent shard servers each own a slice of the content
digest space:

- **uploads** are parsed (or built from binary arrays) and hashed
  router-side — the digest *is* the routing key — then forwarded to the
  owning shard as a binary v2 upload;
- **graph-keyed ops** (``decompose``/``spanner``/``lowstretch_tree``/
  ``hierarchy``/``discard``) go straight to the digest's owner, which
  holds the graph and every memoized result for it; a request may carry
  an inline ``graph`` (upload-request fields) that the router replays to
  the owner if it answers *unknown graph digest* (upload-on-miss);
- **stats** fans out and aggregates numeric counters cluster-wide;
- **metrics** fans out and merges every shard's telemetry registry
  (plus the router's own relay-latency histograms) into one snapshot;
- **hello** fans out and unions the resident digests.

Tracing rides through both forwarding planes: a request whose header
carries ``{"trace_id", "span_id"}`` is restamped with a router-minted
relay span id (the shard's server span parents to it), and the finished
``router.relay`` span record joins the response's ``spans`` list during
the same header-only restamp — the binary tail is still never decoded.

Forwarding has two planes.  Digest-keyed graph ops whose frame
generation matches the shard's ride a per-shard relay channel
(:class:`_RelayChannel`): the router peeks only the JSON header, swaps
the frame ``id``, and splices the body through verbatim — no task, no
future, and no array ever materialises router-side.  Everything needing
real control flow (uploads, fan-outs, upload-on-miss replays,
cross-generation clients, a channel that is down) takes the task-based
control plane over per-shard :class:`AsyncServeClient` pools.  Both
planes produce identical answers; only speed differs.

The ring is never mutated at runtime: a dead shard's requests come back
as error frames naming the shard (``shard host:port unreachable``) while
every other shard keeps serving — remapping on failure would silently
recompute results the unreachable shard already holds.  Connections to a
shard that comes back reopen lazily on the next request.
"""

from __future__ import annotations

import asyncio
import errno
import logging
import os
import threading
import time
from contextlib import contextmanager

from repro._version import __version__
from repro.errors import ParameterError, ReproError, ServeError
from repro.cluster.hash_ring import DEFAULT_REPLICAS, HashRing
from repro.serve.aio_client import AsyncServeClient
from repro.serve.client import check_response, negotiated_protocol
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    decode_frame_payload,
    encode_frame,
    frame_protocol,
    parse_frame_length,
    peek_frame_fields,
    restamp_frame,
)
from repro.serve.server import upload_builder
from repro.telemetry import (
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
    trace as _trace,
)

__all__ = ["ClusterRouter", "router_background"]

logger = logging.getLogger(__name__)

#: ops the router forwards to the digest's owning shard verbatim.  The
#: chunked upload sequence is included: its ``upload_id`` *is* the graph
#: digest (content addressing), so every chunk of one transfer lands on
#: the shard that will own the graph, and a later ``decompose`` by digest
#: is a warm-store hit there.
_GRAPH_OPS = (
    "decompose",
    "spanner",
    "lowstretch_tree",
    "hierarchy",
    "discard",
    "upload_begin",
    "upload_chunk",
    "upload_commit",
    "upload_abort",
)


def _routing_digest(fields: dict) -> str | None:
    """The digest a graph op routes on; chunked ops key by ``upload_id``."""
    key = fields.get("digest")
    if not isinstance(key, str):
        key = fields.get("upload_id")
    return key if isinstance(key, str) else None

#: request had no ``id`` field (``None`` would be a legal id value).
_NO_ID = object()

#: bytes buffered toward one peer before the relay defers to the slow
#: path (shard side) or awaits drain (client side).
_RELAY_HIGH_WATER = 4 * 1024 * 1024

#: seconds before a broken relay channel tries to reconnect.
_RELAY_RETRY = 0.5


def _trace_ctx_of(fields: dict) -> dict | None:
    """The request's ``{"trace_id", "span_id"}`` header, or ``None``."""
    ctx = fields.get("trace")
    if isinstance(ctx, dict) and isinstance(ctx.get("trace_id"), str):
        return ctx
    return None


def _relay_span_record(
    trace_ctx: dict, span_id: str, op, shard: str, plane: str,
    wall: float, dur_s: float,
) -> dict:
    """One finished ``router.relay`` span, ready for a response header.

    ``span_id`` was minted when the request was forwarded (the forwarded
    ``trace`` header named it as the shard's parent), so the shard's
    server span nests under this relay span and the relay span under the
    client's — the printed tree shows every hop in order.
    """
    return {
        "trace_id": trace_ctx["trace_id"],
        "span_id": span_id,
        "parent_id": trace_ctx.get("span_id"),
        "name": "router.relay",
        "ts": wall,
        "dur_ms": dur_s * 1e3,
        "pid": os.getpid(),
        "attrs": {"op": op, "shard": shard, "plane": plane},
    }


class _RelayChannel:
    """Callback-style data plane to one shard: no task per request.

    One multiplexed connection carries every fast-path graph op for the
    shard.  The client-connection loop calls :meth:`submit` synchronously
    — swap the frame's ``id`` for a channel-local one and append it to
    the shard transport — and the channel's single read task restamps
    each response straight onto the owning client's transport.  Per
    relayed request the router spends two small JSON header rewrites and
    one tail splice; no task, no future, and no array ever materialises.

    Anything that needs real control flow — inline-graph replay,
    cross-generation clients, a channel that is down — stays on the
    task-based path (:meth:`ClusterRouter._route_graph_op`), so the two
    planes answer identically and only speed differs.
    """

    def __init__(self, router: "ClusterRouter", label: str, host, port) -> None:
        self._router = router
        self._label = label
        self._shard = (host, port)
        self._timeout = router._timeout
        self._reader = None
        self._writer = None
        self.protocol: int | None = None
        self._pending: dict[int, tuple] = {}
        self._next_id = 0
        self._read_task: asyncio.Task | None = None
        self._connecting = False
        self._retry_at = 0.0

    @property
    def ready(self) -> bool:
        return (
            self._writer is not None
            and not self._writer.transport.is_closing()
        )

    def ensure(self) -> None:
        """Kick off a (re)connect unless one is running or cooling down."""
        loop = self._router._loop
        if (
            self.ready
            or self._connecting
            or loop is None
            or loop.time() < self._retry_at
        ):
            return
        self._connecting = True
        task = loop.create_task(self._connect())
        self._router._conn_tasks.add(task)
        task.add_done_callback(self._router._conn_tasks.discard)

    async def _connect(self) -> None:
        host, port = self._shard
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), self._timeout
            )
        except (OSError, asyncio.TimeoutError):
            self._connecting = False
            self._retry_at = self._router._loop.time() + _RELAY_RETRY
            return
        try:
            writer.write(encode_frame({"op": "hello"}, 1))
            await writer.drain()
            header = await asyncio.wait_for(
                reader.readexactly(4), self._timeout
            )
            body = await reader.readexactly(parse_frame_length(header))
            hello = check_response(decode_frame_payload(body))
        except (
            OSError,
            ServeError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
        ):
            writer.close()
            self._connecting = False
            self._retry_at = self._router._loop.time() + _RELAY_RETRY
            return
        self._reader = reader
        self._writer = writer
        self.protocol = negotiated_protocol(hello, PROTOCOL_VERSION)
        self._connecting = False
        logger.debug(
            "relay channel to shard %s up (protocol v%d)",
            self._label, self.protocol,
        )
        self._read_task = self._router._loop.create_task(self._read_loop())

    def submit(self, body: bytes, fields: dict, client_writer) -> bool:
        """Relay the raw request ``body`` to the shard; False = slow path."""
        writer = self._writer
        if (
            writer is None
            or writer.transport.is_closing()
            or writer.transport.get_write_buffer_size() > _RELAY_HIGH_WATER
        ):
            return False
        relay_id = self._next_id
        self._next_id += 1
        timer = self._router._loop.call_later(
            self._timeout, self._expire, relay_id
        )
        updates: dict = {"id": relay_id}
        trace_ctx = _trace_ctx_of(fields)
        relay_span_id = None
        if trace_ctx is not None:
            # Interpose a router.relay span: the shard sees it as parent,
            # and the finished span record joins the response in
            # _read_loop's restamp.
            relay_span_id = _trace.new_span_id()
            updates["trace"] = {
                "trace_id": trace_ctx["trace_id"],
                "span_id": relay_span_id,
            }
        self._pending[relay_id] = (
            client_writer,
            fields["id"] if "id" in fields else _NO_ID,
            fields.get("op"),
            timer,
            trace_ctx,
            relay_span_id,
            time.time(),
            time.perf_counter(),
        )
        writer.write(restamp_frame(body, updates))
        return True

    def _error_frame(self, orig_id, detail: str) -> bytes:
        fields = {
            "ok": False,
            "error": "ServeError",
            "message": f"shard {self._label} unreachable: {detail}",
            "shard": self._label,
        }
        if orig_id is not _NO_ID:
            fields["id"] = orig_id
        return encode_frame(fields, self.protocol or 1)

    def _expire(self, relay_id: int) -> None:
        entry = self._pending.pop(relay_id, None)
        if entry is None:
            return
        client_writer, orig_id, op = entry[:3]
        self._router._shard_errors += 1
        if not client_writer.transport.is_closing():
            client_writer.write(self._error_frame(
                orig_id,
                f"timed out after {self._timeout}s waiting for op {op!r}",
            ))

    async def _read_loop(self) -> None:
        reader = self._reader
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                    body = await reader.readexactly(
                        parse_frame_length(header)
                    )
                    fields = peek_frame_fields(body)
                except (
                    OSError,
                    ServeError,
                    asyncio.IncompleteReadError,
                ) as exc:
                    self._fail(str(exc) or "connection lost")
                    return
                entry = self._pending.pop(fields.get("id"), None)
                if entry is None:
                    continue  # expired request; late response discarded
                (client_writer, orig_id, op, timer,
                 trace_ctx, relay_span_id, wall, t0) = entry
                timer.cancel()
                dur_s = time.perf_counter() - t0
                self._router._metrics.observe(
                    "repro_relay_seconds", dur_s, shard=self._label
                )
                updates: dict = {
                    "id": orig_id if orig_id is not _NO_ID else None
                }
                if fields.get("ok") and "shard" not in fields:
                    updates["shard"] = self._label
                if trace_ctx is not None:
                    updates["spans"] = list(fields.get("spans") or ()) + [
                        _relay_span_record(
                            trace_ctx, relay_span_id, op, self._label,
                            "relay", wall, dur_s,
                        )
                    ]
                if client_writer.transport.is_closing():
                    continue
                client_writer.write(restamp_frame(body, updates))
                if (
                    client_writer.transport.get_write_buffer_size()
                    > _RELAY_HIGH_WATER
                ):
                    try:
                        await client_writer.drain()
                    except ConnectionError:
                        pass  # that client hung up; others keep going
        except asyncio.CancelledError:
            self._fail("router shutting down")
            raise

    def _fail(self, detail: str) -> None:
        """Channel died: error-frame every in-flight request, then reset."""
        pending, self._pending = self._pending, {}
        writer, self._writer = self._writer, None
        self._reader = None
        self.protocol = None
        self._retry_at = self._router._loop.time() + _RELAY_RETRY
        for client_writer, orig_id, _op, timer, *_rest in pending.values():
            timer.cancel()
            self._router._shard_errors += 1
            if not client_writer.transport.is_closing():
                client_writer.write(self._error_frame(orig_id, detail))
        if writer is not None:
            writer.close()

    async def close(self) -> None:
        task, self._read_task = self._read_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass
        for entry in self._pending.values():
            entry[3].cancel()  # the expiry timer
        self._pending.clear()


class ClusterRouter:
    """Consistent-hash front for N decomposition shards.

    Parameters
    ----------
    shards:
        ``(host, port)`` addresses of running
        :class:`DecompositionServer` shards.
    host, port:
        Bind address of the router itself (``port=0`` picks a free port).
    replicas:
        Virtual nodes per shard on the ring.
    timeout:
        Per-forwarded-request timeout in seconds.
    connect_window:
        Backoff window for shard connects; short by design — a dead shard
        should fail a request quickly, not stall it.
    owns_shards:
        When true, a client ``shutdown`` op is fanned out to every shard
        before the router stops (the ``repro cluster`` CLI spawns its own
        shards and passes this).
    idle_ttl:
        Shut the router down after this many seconds without any client
        frame.
    """

    def __init__(
        self,
        shards,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = DEFAULT_REPLICAS,
        timeout: float = 120.0,
        connect_window: float = 1.0,
        owns_shards: bool = False,
        idle_ttl: float | None = None,
    ) -> None:
        shards = [(str(h), int(p)) for h, p in shards]
        if not shards:
            raise ParameterError("a cluster needs at least one shard")
        self._shards = shards
        self._labels = [f"{h}:{p}" for h, p in shards]
        self._ring = HashRing(self._labels, replicas=replicas)
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self._connect_window = float(connect_window)
        self._owns_shards = bool(owns_shards)
        if idle_ttl is not None and idle_ttl <= 0:
            raise ParameterError(f"idle_ttl must be > 0, got {idle_ttl}")
        self._idle_ttl = idle_ttl

        self._clients: dict[str, AsyncServeClient] = {}
        self._relays: dict[str, _RelayChannel] = {}
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._started_at = time.monotonic()
        self._last_activity = time.monotonic()
        self.address: tuple[str, int] | None = None

        self._connections = 0
        self._requests_total = 0
        self._forwarded = 0
        self._shard_errors = 0
        self._miss_uploads = 0
        self._errors = 0
        # The router's own registry is an instance, not the process-global
        # one: under in-process loopback (tests, serve_background shards)
        # the global registry is shared with the shards, and the metrics
        # fan-out would merge the same series twice.
        self._metrics = MetricsRegistry()

    @property
    def ring(self) -> HashRing:
        return self._ring

    @property
    def shard_labels(self) -> tuple[str, ...]:
        return tuple(self._labels)

    def owner_of(self, digest: str) -> str:
        """The shard label owning ``digest`` — exposed for tests/tools."""
        return self._ring.owner(digest)

    # ------------------------------------------------------------------
    # lifecycle (mirrors DecompositionServer)
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        if self._server is not None:
            raise ServeError("router is already started")
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._clients = {
            label: AsyncServeClient(
                h,
                p,
                timeout=self._timeout,
                pool_size=4,
                connect_window=self._connect_window,
            )
            for label, (h, p) in zip(self._labels, self._shards)
        }
        self._relays = {
            label: _RelayChannel(self, label, h, p)
            for label, (h, p) in zip(self._labels, self._shards)
        }
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self._host, self._port
            )
        except OSError as exc:
            if exc.errno == errno.EADDRINUSE:
                raise ServeError(
                    f"cannot listen on {self._host}:{self._port}: "
                    f"address already in use (is another server "
                    f"running there?)"
                ) from None
            raise
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._started_at = time.monotonic()
        logger.info(
            "routing %d shard(s) on %s:%d: %s",
            len(self._labels), self.address[0], self.address[1],
            ", ".join(self._labels),
        )
        self._touch()
        if self._idle_ttl is not None:
            task = self._loop.create_task(self._ttl_watchdog())
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        return self.address

    async def run_async(self, *, ready=None) -> None:
        """Start, signal ``ready``, route until shutdown, then clean up."""
        await self.start()
        if ready is not None:
            getattr(ready, "set", ready)()
        try:
            await self._stop_event.wait()
        finally:
            await self.aclose()

    def request_shutdown(self) -> None:
        """Ask the router to stop; safe to call from any thread."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:  # loop already closed
            pass

    async def aclose(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        relays, self._relays = self._relays, {}
        for relay in relays.values():
            await relay.close()
        clients, self._clients = self._clients, {}
        for client in clients.values():
            await client.aclose()

    # ------------------------------------------------------------------
    # connection handling (same pipelined frame loop as the server)
    # ------------------------------------------------------------------
    def _touch(self) -> None:
        self._last_activity = time.monotonic()

    async def _ttl_watchdog(self) -> None:
        while not self._stop_event.is_set():
            idle = time.monotonic() - self._last_activity
            if idle >= self._idle_ttl:
                self._stop_event.set()
                return
            await asyncio.sleep(
                max(0.05, min(self._idle_ttl - idle, self._idle_ttl / 4))
            )

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._connections += 1
        write_lock = asyncio.Lock()
        request_tasks: set[asyncio.Task] = set()

        async def _respond(message: dict, protocol: int) -> None:
            response = await self._dispatch(message, protocol)
            if isinstance(response, (bytes, bytearray)):
                frame = bytes(response)  # pre-framed raw relay
            else:
                if "id" in message:
                    response["id"] = message["id"]
                try:
                    frame = encode_frame(response, protocol)
                except ServeError as exc:  # oversized response
                    frame = encode_frame(
                        {
                            "ok": False,
                            "error": "ServeError",
                            "message": str(exc),
                            **(
                                {"id": message["id"]}
                                if "id" in message
                                else {}
                            ),
                        },
                        protocol,
                    )
            try:
                async with write_lock:
                    writer.write(frame)
                    await writer.drain()
            except ConnectionError:
                pass  # client hung up before reading its response

        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                    length = parse_frame_length(header)
                    body = await reader.readexactly(length)
                    self._touch()
                    protocol = frame_protocol(body)
                    fields = peek_frame_fields(body)
                except asyncio.IncompleteReadError:
                    return
                except ServeError as exc:
                    async with write_lock:
                        writer.write(encode_frame({
                            "ok": False,
                            "error": "ServeError",
                            "message": str(exc),
                        }))
                        await writer.drain()
                    return
                # Data plane: a graph op keyed by digest alone rides the
                # owner's relay channel — restamped in place, no task.
                relay_key = (
                    _routing_digest(fields)
                    if fields.get("op") in _GRAPH_OPS
                    and "graph" not in fields
                    else None
                )
                if relay_key is not None:
                    channel = self._relays[self._ring.owner(relay_key)]
                    if channel.protocol == protocol and channel.submit(
                        body, fields, writer
                    ):
                        self._requests_total += 1
                        self._forwarded += 1
                        continue
                    # Channel down or cross-generation: reconnect in the
                    # background, answer this request on the task path.
                    channel.ensure()
                try:
                    message = decode_frame_payload(body)
                except ServeError as exc:
                    async with write_lock:
                        writer.write(encode_frame({
                            "ok": False,
                            "error": "ServeError",
                            "message": str(exc),
                        }))
                        await writer.drain()
                    return
                request = self._loop.create_task(
                    _respond(message, protocol)
                )
                for registry in (request_tasks, self._conn_tasks):
                    registry.add(request)
                    request.add_done_callback(registry.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for request in list(request_tasks):
                request.cancel()
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(
        self, message: dict, protocol: int
    ) -> dict | bytes:
        self._requests_total += 1
        op = message.get("op")
        try:
            if op in _GRAPH_OPS:
                return await self._route_graph_op(message, protocol)
            handler = self._OPS.get(op)
            if handler is None:
                raise ParameterError(
                    f"unknown op {op!r}; choices: "
                    f"{sorted(set(self._OPS) | set(_GRAPH_OPS))}"
                )
            trace_ctx = _trace_ctx_of(message)
            if trace_ctx is not None:
                # Control-plane ops answer router-side (fan-outs,
                # uploads), so the router is the traced server here; the
                # shard hops inside run untraced on purpose — their
                # latency is the fan-out's latency.
                with _trace.collect_spans() as spans:
                    with _trace.adopt_context(
                        trace_ctx["trace_id"], trace_ctx.get("span_id")
                    ):
                        with _trace.span(f"router.{op}", op=str(op)):
                            response = await handler(self, message)
                response["spans"] = list(response.get("spans") or ()) + spans
                return response
            return await handler(self, message)
        except ReproError as exc:
            self._errors += 1
            return {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        except Exception as exc:  # pragma: no cover - defensive
            self._errors += 1
            return {
                "ok": False,
                "error": type(exc).__name__,
                "message": f"internal router error: {exc}",
            }

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    async def _forward(self, label: str, message: dict) -> dict:
        """Relay ``message`` to shard ``label``; error frame on failure.

        Shard-side error frames pass through verbatim; transport failures
        (connect refused, timeout, dropped stream) become error frames
        naming the shard — the ring stays as it is, callers see exactly
        which member is down.
        """
        self._forwarded += 1
        try:
            return await self._clients[label].call(message, check=False)
        except ServeError as exc:
            self._shard_errors += 1
            return {
                "ok": False,
                "error": "ServeError",
                "message": f"shard {label} unreachable: {exc}",
                "shard": label,
            }

    async def _forward_raw(
        self, label: str, message: dict
    ) -> tuple[dict, bytes | None]:
        """Relay ``message`` to shard ``label`` without decoding arrays.

        Returns ``(fields, body)`` — the response's control fields and
        its raw frame body, ready for a :func:`restamp_frame` splice.
        Transport failures become ``(error fields, None)`` naming the
        shard, exactly like :meth:`_forward`.
        """
        self._forwarded += 1
        try:
            return await self._clients[label].call_raw(message)
        except ServeError as exc:
            self._shard_errors += 1
            return (
                {
                    "ok": False,
                    "error": "ServeError",
                    "message": f"shard {label} unreachable: {exc}",
                    "shard": label,
                },
                None,
            )

    async def _route_graph_op(
        self, message: dict, client_protocol: int
    ) -> dict | bytes:
        digest = _routing_digest(message)
        if digest is None:
            raise ParameterError(
                f"{message.get('op')} needs a string 'digest' or "
                f"'upload_id' to route on (upload the graph first)"
            )
        label = self._ring.owner(digest)
        forwarded = {
            k: v for k, v in message.items() if k not in ("id", "graph")
        }
        trace_ctx = _trace_ctx_of(message)
        relay_span_id = None
        if trace_ctx is not None:
            # Same interposition as the relay channel: the shard parents
            # its server span to the router's relay span.
            relay_span_id = _trace.new_span_id()
            forwarded["trace"] = {
                "trace_id": trace_ctx["trace_id"],
                "span_id": relay_span_id,
            }
        wall = time.time()
        t0 = time.perf_counter()
        fields, body = await self._forward_raw(label, forwarded)
        inline = message.get("graph")
        if (
            not fields.get("ok")
            and isinstance(inline, dict)
            and "unknown graph digest" in str(fields.get("message", ""))
        ):
            # Upload-on-miss: the request carried the graph (upload-op
            # fields); replay it to the owner, then retry the op once.
            self._miss_uploads += 1
            upload = {
                **{k: v for k, v in inline.items() if k != "id"},
                "op": "upload",
            }
            uploaded, _ = await self._forward_raw(label, upload)
            if not uploaded.get("ok"):
                return dict(uploaded)
            if uploaded.get("digest") != digest:
                raise ServeError(
                    f"inline graph hashes to "
                    f"{str(uploaded.get('digest'))[:12]}…, not the "
                    f"requested digest {digest[:12]}… — wrong graph "
                    f"attached to the request"
                )
            fields, body = await self._forward_raw(label, forwarded)
        dur_s = time.perf_counter() - t0
        self._metrics.observe("repro_relay_seconds", dur_s, shard=label)
        relay_span = None
        if trace_ctx is not None:
            relay_span = _relay_span_record(
                trace_ctx, relay_span_id, message.get("op"), label,
                "task", wall, dur_s,
            )
        if body is not None and frame_protocol(body) == client_protocol:
            # Fast path: same generation on both hops, so the shard's
            # frame is spliced through with only its header restamped —
            # the binary tail is never decoded, copied once, and the
            # arrays never materialise router-side.
            updates: dict = {
                "id": message["id"] if "id" in message else None
            }
            if fields.get("ok") and "shard" not in fields:
                updates["shard"] = label
            if relay_span is not None:
                updates["spans"] = (
                    list(fields.get("spans") or ()) + [relay_span]
                )
            return restamp_frame(body, updates)
        # Transport failure (no body) or a cross-generation client:
        # decode fully and let encode_frame transcode the arrays.
        response = (
            dict(fields) if body is None else decode_frame_payload(body)
        )
        response.pop("id", None)
        if response.get("ok") and "shard" not in response:
            response = {**response, "shard": label}
        if relay_span is not None:
            response = {
                **response,
                "spans": list(response.get("spans") or ()) + [relay_span],
            }
        return response

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def _op_hello(self, message: dict) -> dict:
        responses = await asyncio.gather(
            *(self._forward(label, {"op": "hello"}) for label in self._labels)
        )
        by_label = dict(zip(self._labels, responses))
        alive = {
            label: r for label, r in by_label.items() if r.get("ok")
        }
        if not alive:
            raise ServeError(
                f"no cluster shard is reachable "
                f"({len(self._labels)} configured)"
            )
        base = dict(next(iter(alive.values())))
        base.pop("shard", None)
        base.update(
            server="repro.cluster",
            version=__version__,
            protocol=PROTOCOL_VERSION,
            graphs=sorted(
                {d for r in alive.values() for d in r.get("graphs", ())}
            ),
            cluster={
                "shards": list(self._labels),
                "alive": sorted(alive),
                "replicas": self._ring.replicas,
            },
        )
        return base

    async def _op_upload(self, message: dict) -> dict:
        # The digest is the routing key, so the router must parse/build
        # and hash the graph itself (off-loop — uploads are the heavy
        # frames) before it can pick the owner.  The forward is always a
        # binary v2 upload: the graph is already in memory as arrays.
        build = upload_builder(
            {k: v for k, v in message.items() if k != "id"}
        )
        graph, digest = await self._loop.run_in_executor(None, build)
        label = self._ring.owner(digest)
        try:
            response = await self._clients[label].upload_graph(graph)
        except ServeError as exc:
            self._shard_errors += 1
            return {
                "ok": False,
                "error": "ServeError",
                "message": f"shard {label} unreachable: {exc}",
                "shard": label,
            }
        self._forwarded += 1
        return {**response, "shard": label}

    async def _op_stats(self, message: dict) -> dict:
        responses = await asyncio.gather(
            *(self._forward(label, {"op": "stats"}) for label in self._labels)
        )
        by_label = dict(zip(self._labels, responses))
        alive = {label: r for label, r in by_label.items() if r.get("ok")}
        aggregate: dict[str, dict] = {}
        for section in ("server", "cache", "store", "pool"):
            totals: dict[str, float] = {}
            for r in alive.values():
                for k, v in (r.get(section) or {}).items():
                    if isinstance(v, bool) or not isinstance(v, (int, float)):
                        continue
                    totals[k] = totals.get(k, 0) + v
            aggregate[section] = totals
        shards = {}
        for label, r in by_label.items():
            if r.get("ok"):
                shards[label] = {
                    "ok": True,
                    "requests_total": r["server"].get("requests_total"),
                    "graphs": r["store"].get("graphs"),
                    "cache_entries": r["cache"].get("entries"),
                }
            else:
                shards[label] = {
                    "ok": False,
                    "message": r.get("message", "unreachable"),
                }
        return {
            "ok": True,
            "router": {
                "uptime_s": time.monotonic() - self._started_at,
                "shards": len(self._labels),
                "alive": len(alive),
                "connections": self._connections,
                "requests_total": self._requests_total,
                "forwarded": self._forwarded,
                "shard_errors": self._shard_errors,
                "miss_uploads": self._miss_uploads,
                "errors": self._errors,
            },
            **aggregate,
            "shards": shards,
        }

    async def _op_metrics(self, message: dict) -> dict:
        """Cluster-wide metric snapshot: every shard's registry, merged.

        Counters sum, histogram buckets sum (shards share bucket edges by
        construction — same code everywhere), so the merged snapshot reads
        exactly like one process's.  The router contributes its own
        registry (relay latency histograms).  Dead shards are reported in
        ``shards`` but do not fail the op — the union of the living is
        still the right answer for a dashboard.
        """
        responses = await asyncio.gather(
            *(
                self._forward(label, {"op": "metrics", "text": False})
                for label in self._labels
            )
        )
        snapshots = [self._metrics.snapshot()]
        processes = 1
        shards: dict[str, dict] = {}
        for label, r in zip(self._labels, responses):
            if r.get("ok") and isinstance(r.get("metrics"), dict):
                snapshots.append(r["metrics"])
                processes += int(r.get("processes") or 1)
                shards[label] = {"ok": True}
            else:
                shards[label] = {
                    "ok": False,
                    "message": r.get("message", "unreachable"),
                }
        merged = merge_snapshots(snapshots)
        response = {
            "ok": True,
            "metrics": merged,
            "processes": processes,
            "shards": shards,
        }
        if bool(message.get("text", True)):
            response["text"] = render_prometheus(merged)
        return response

    async def _op_shutdown(self, message: dict) -> dict:
        if self._owns_shards:
            await asyncio.gather(
                *(
                    self._forward(label, {"op": "shutdown"})
                    for label in self._labels
                )
            )
        self._stop_event.set()
        return {"ok": True, "stopping": True}

    _OPS = {
        "hello": _op_hello,
        "upload": _op_upload,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "shutdown": _op_shutdown,
    }


@contextmanager
def router_background(shards, **kwargs):
    """A :class:`ClusterRouter` on a daemon thread, as a context manager.

    The router-side analogue of
    :func:`repro.serve.server.serve_background`; yields the started router
    with ``router.address`` bound.
    """
    router = ClusterRouter(shards, **kwargs)
    ready = threading.Event()
    failure: list[BaseException] = []

    def _runner() -> None:
        try:
            asyncio.run(router.run_async(ready=ready))
        except BaseException as exc:  # pragma: no cover - startup failure
            failure.append(exc)
        finally:
            ready.set()

    thread = threading.Thread(
        target=_runner, daemon=True, name="repro-cluster-router"
    )
    thread.start()
    ready.wait(timeout=60)
    if failure:
        raise failure[0]
    if router.address is None:
        raise ServeError("cluster router failed to start")
    try:
        yield router
    finally:
        router.request_shutdown()
        thread.join(timeout=60)
