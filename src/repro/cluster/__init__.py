"""Sharded serving: consistent-hash routing over N decomposition servers.

The horizontal-scale layer the ROADMAP's "millions of users" step names.
Decompositions are derandomized and content-addressed — *same digest,
same graph, same cached bytes* — which makes them embarrassingly
shardable: a deterministic digest → shard map sends every request for a
graph to the one server holding that graph and every memoized result for
it.  No shared state, no cross-shard invalidation; aggregate warm
throughput scales with the shard count.

- :mod:`repro.cluster.hash_ring` — :class:`HashRing`, the digest → shard
  map (SHA-256 vnodes, never mutated at runtime);
- :mod:`repro.cluster.router` — :class:`ClusterRouter`, the protocol-
  compatible front that hashes, forwards, fans out ``stats``, and names
  dead shards in error frames; :func:`router_background` thread harness;
- :mod:`repro.cluster.provider` — :class:`ClusterProvider`, the
  pipeline seam (``provider="cluster:HOST:PORT"``);
- :mod:`repro.cluster.deploy` — :func:`cluster_background`, a whole
  cluster on daemon threads for tests/benchmarks.

CLI: ``repro cluster --shards N`` spawns shards + router in one process.
Architecture and the v2 binary frame layout: DESIGN.md §9; throughput
numbers: the CL benchmark (``benchmarks/bench_cluster.py``).
"""

from repro.cluster.deploy import cluster_background
from repro.cluster.hash_ring import DEFAULT_REPLICAS, HashRing
from repro.cluster.provider import ClusterProvider
from repro.cluster.router import ClusterRouter, router_background

__all__ = [
    "HashRing",
    "DEFAULT_REPLICAS",
    "ClusterRouter",
    "ClusterProvider",
    "router_background",
    "cluster_background",
]
