"""`ClusterProvider` — the pipeline seam pointed at a sharded cluster.

A :class:`~repro.cluster.router.ClusterRouter` speaks the serve protocol
bit for bit, so the provider mechanics are exactly
:class:`~repro.pipeline.providers.ServeProvider`: upload once by content
digest, reference by digest, rebuild full results locally.  What changes
is where requests land — the router consistent-hashes each digest to its
owning shard, so one provider transparently spreads a multi-graph
workload (a solver sweep, a benchmark corpus) across N servers, and the
provider's existing *unknown graph digest* self-heal re-uploads through
the router (which forwards to the same owner — routing is deterministic)
if a shard restarted or evicted the graph.

Batches inherit the fan-out for free:
:meth:`~repro.pipeline.providers.DecompositionProvider.decompose_batch`
drives the pipelined :class:`~repro.serve.aio_client.AsyncServeClient`
against the router, so a level's independent pieces are in flight
simultaneously and land on their owning shards concurrently — level
parallelism across machines with no cluster-specific code here.

The subclass exists so applications and stats can tell the transports
apart (``backend="cluster"``), and as the registration point for the
``"cluster:HOST:PORT"`` provider spec in
:func:`repro.pipeline.resolve_provider`.
"""

from __future__ import annotations

from repro.pipeline.providers import ServeProvider

__all__ = ["ClusterProvider"]


class ClusterProvider(ServeProvider):
    """Remote backend against a :class:`ClusterRouter` front.

    Accepts the same arguments as :class:`ServeProvider` (a connected
    ``ServeClient`` or an ``address=(host, port)`` pointing at the
    router).
    """

    backend = "cluster"
