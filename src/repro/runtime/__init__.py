"""Shared-memory batch runtime: load graphs once, decompose many times.

The serving layer the ROADMAP's batching/throughput goals build on:

- :mod:`repro.runtime.shm` — :class:`SharedCSR` / :class:`SharedWeightedCSR`
  place a graph's CSR arrays in ``multiprocessing.shared_memory`` and
  reattach them zero-copy in worker processes;
- :mod:`repro.runtime.pool` — :class:`DecompositionPool` keeps a pool of
  workers attached to the registered graphs and streams tiny
  ``(graph_key, method, seed, options)`` requests to them, returning
  results bit-identical to serial :func:`repro.core.engine.decompose`;
  graphs can be registered/unregistered on the live pool (the
  decomposition service :mod:`repro.serve` builds on this);
- :mod:`repro.runtime.throughput` — request/second measurement comparing
  the runtime against per-task pickling executors (the ``RT`` benchmark
  and the CLI's ``bench-throughput`` subcommand).

``decompose_many(..., executor="shared")`` routes through this package; see
DESIGN.md §6 for the architecture.
"""

from repro.runtime.pool import DecompositionPool, DecompositionRequest
from repro.runtime.shm import (
    SharedCSR,
    SharedGraphDescriptor,
    SharedWeightedCSR,
    attach_shared,
    share_graph,
)
from repro.runtime.throughput import ThroughputRecord, measure_throughput

__all__ = [
    "DecompositionPool",
    "DecompositionRequest",
    "SharedCSR",
    "SharedWeightedCSR",
    "SharedGraphDescriptor",
    "share_graph",
    "attach_shared",
    "ThroughputRecord",
    "measure_throughput",
]
