"""Persistent decomposition pool over shared-memory resident graphs.

:class:`DecompositionPool` is the serving half of the batch runtime: the
graphs are registered once (placed in shared memory via
:mod:`repro.runtime.shm`), the worker processes attach to them once in
their initializer, and from then on every request that crosses the process
boundary is a few-hundred-byte ``(graph_key, beta, method, seed, options)``
tuple.  Results come back *slim* — assignment arrays plus the trace, never
the graph — and are rehydrated against the parent's own graph object, so a
round trip moves O(n) result data instead of O(m) graph data each way.

Determinism: workers run the very same :func:`repro.core.engine.decompose`
the serial path runs, keyed by the explicit integer seed of the request, so
pool results are bit-identical to serial ones (the conformance suite in
``tests/test_conformance.py`` pins this across every registered method).

The pool is a context manager; exiting shuts the workers down and unlinks
the shared segments.  Request validation (unknown graph key, unknown
method/options) happens in :meth:`submit` on the parent side, before
anything is enqueued.

Graphs can be registered on a *live* pool (:meth:`register_graph` /
:meth:`unregister_graph`) — the serving layer (:mod:`repro.serve`) uploads
graphs long after the workers have started.  Every request payload carries
the graph's :class:`SharedGraphDescriptor` (a few hundred bytes), and
workers attach lazily on first sight of a key, re-attaching when a key is
re-registered under a new segment; no worker restart is needed under any
start method.
"""

from __future__ import annotations

import logging
import os
import threading
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.bfs.kernels import native_available
from repro.core.decomposition import Decomposition
from repro.core.engine import PartitionResult, _resolve, decompose
from repro.core.weighted import WeightedDecomposition
from repro.errors import ParameterError
from repro.graphs.backing import backing_handle, backing_kind
from repro.graphs.csr import CSRGraph
from repro.graphs.mmapcsr import MmapGraphDescriptor, attach_mmap
from repro.runtime.shm import (
    SharedCSR,
    SharedGraphDescriptor,
    attach_shared,
    share_graph,
)

__all__ = ["DecompositionPool", "DecompositionRequest"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class DecompositionRequest:
    """One unit of pool work: which graph, which configuration, which seed."""

    graph_key: str
    beta: float
    method: str = "auto"
    seed: int | None = None
    validate: bool = False
    options: Mapping[str, object] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
#: key -> attached SharedCSR; populated once per worker by the initializer
#: and kept alive for the worker's lifetime (the attached graphs' arrays are
#: views into the mapped segments).
_WORKER_GRAPHS: dict[str, SharedCSR] = {}


def _attach_descriptor(descriptor):
    """Worker-side attach, dispatching on the descriptor's backing kind."""
    if isinstance(descriptor, MmapGraphDescriptor):
        return attach_mmap(descriptor)
    return attach_shared(descriptor)


def _attach_worker(descriptors: dict[str, SharedGraphDescriptor]) -> None:
    """Pool initializer: map every registered graph exactly once."""
    _WORKER_GRAPHS.clear()
    for key, descriptor in descriptors.items():
        _WORKER_GRAPHS[key] = _attach_descriptor(descriptor)


def _warm_up(hold_seconds: float = 0.0) -> None:
    """Near-no-op task whose submission forces worker startup.

    ``hold_seconds`` briefly occupies the worker so that, on interpreters
    that spawn workers one-per-submit (Python 3.10), each warm-up submit
    sees no idle worker and therefore forks a fresh one (see __init__).
    """
    if hold_seconds:
        import time

        time.sleep(hold_seconds)


def _worker_graph(graph_key: str, descriptor: SharedGraphDescriptor):
    """The worker's attached graph for ``graph_key``, attaching on demand.

    The initializer pre-attaches construction-time graphs; graphs registered
    on the live pool arrive here through the descriptor riding on the
    request.  A key re-registered under a new segment (unregister + register
    cycle) is detected by segment-name mismatch and re-attached, so workers
    never serve a stale mapping.
    """
    cached = _WORKER_GRAPHS.get(graph_key)
    if cached is not None:
        if cached.descriptor.segment == descriptor.segment:
            return cached.graph
        cached.close()
    attached = _attach_descriptor(descriptor)
    _WORKER_GRAPHS[graph_key] = attached
    return attached.graph


def _execute_request(payload: tuple) -> tuple:
    """Run one request against the worker's attached graph, return it slim.

    An optional eighth payload element is the propagated trace context
    (``{"trace_id", "span_id"}``): when present, the worker adopts it,
    collects every span the decomposition produces (the ``pool.execute``
    wrapper plus the BFS-phase spans underneath), and ships them home in
    the slim tuple so the serving layer can attach them to its response.
    """
    graph_key, descriptor, beta, method, seed, validate, options = payload[:7]
    trace_ctx = payload[7] if len(payload) > 7 else None
    graph = _worker_graph(graph_key, descriptor)
    if trace_ctx is None:
        result = decompose(
            graph, beta, method=method, seed=seed, validate=validate,
            **options,
        )
        return _slim_result(result)
    from repro.telemetry import trace as _trace

    with _trace.collect_spans() as spans:
        with _trace.adopt_context(
            trace_ctx.get("trace_id"), trace_ctx.get("span_id")
        ):
            with _trace.span(
                "pool.execute",
                graph_key=graph_key, method=method, seed=seed,
            ):
                result = decompose(
                    graph, beta, method=method, seed=seed,
                    validate=validate, **options,
                )
    return _slim_result(result, spans=tuple(spans))


def _slim_result(result: PartitionResult, spans: tuple = ()) -> tuple:
    """Strip the graph out of a result for transport (assignments only)."""
    decomposition = result.decomposition
    if isinstance(decomposition, WeightedDecomposition):
        payload = ("weighted", decomposition.center, decomposition.radius)
    else:
        payload = ("unweighted", decomposition.center, decomposition.hops)
    return payload, result.trace, result.report, spans


def _rehydrate_result(
    graph: CSRGraph,
    slim: tuple,
) -> PartitionResult:
    """Rebind a slim result to the parent's graph object."""
    (kind, center, per_vertex), trace, report = slim[:3]
    spans = slim[3] if len(slim) > 3 else ()
    if kind == "weighted":
        decomposition = WeightedDecomposition(
            graph=graph, center=center, radius=per_vertex
        )
    else:
        decomposition = Decomposition(
            graph=graph, center=center, hops=per_vertex
        )
    return PartitionResult(
        decomposition=decomposition, trace=trace, report=report,
        spans=tuple(spans),
    )


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------
class _MmapHandle:
    """Pool-side handle over a memmap-backed graph.

    Shape-compatible with :class:`~repro.runtime.shm.SharedCSR` where the
    pool cares (``descriptor``/``nbytes()``/``close()``) but copies nothing:
    workers re-open the file from the descriptor.  ``close()`` defers to
    the wrapper's file ownership — a server spool file dies with its store
    entry, a user-opened file survives the pool.
    """

    def __init__(self, wrapper) -> None:
        self._wrapper = wrapper

    @property
    def descriptor(self) -> MmapGraphDescriptor:
        return self._wrapper.descriptor

    def nbytes(self) -> int:
        return self._wrapper.nbytes()

    def close(self) -> None:
        if self._wrapper.owns_file:
            self._wrapper.close()


def _share_backing(graph: CSRGraph):
    """Pick the pool's serving handle for ``graph`` by its backing.

    Memmap-backed graphs are served through their existing file (workers
    map it on attach); everything else is copied into a fresh
    shared-memory segment as before.
    """
    if backing_kind(graph) == "mmap":
        wrapper = backing_handle(graph)
        if wrapper is not None and not wrapper.closed:
            return _MmapHandle(wrapper)
    return share_graph(graph)


class DecompositionPool:
    """Workers that hold the registered graphs and stream decompositions.

    Parameters
    ----------
    graphs:
        The graphs to serve: a single graph (key ``"0"``), a sequence
        (keys ``"0"``, ``"1"``, ...), an explicit ``{key: graph}`` mapping,
        or ``None`` for an initially empty pool (register graphs later via
        :meth:`register_graph`).  Each is copied into shared memory once.
    max_workers:
        Worker-process count (default: CPU count).
    start_method:
        Optional multiprocessing start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); the attach-by-name protocol works under all of
        them.  Default: the platform default.

    Examples
    --------
    >>> from repro.graphs import grid_2d
    >>> from repro.runtime import DecompositionPool
    >>> with DecompositionPool(grid_2d(12, 12)) as pool:
    ...     result = pool.decompose("0", beta=0.2, seed=7)
    >>> result.decomposition.num_pieces > 1
    True
    """

    def __init__(
        self,
        graphs: CSRGraph | Sequence[CSRGraph] | Mapping[str, CSRGraph] | None = None,
        *,
        max_workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self._graphs = _normalise_graph_map(graphs)
        self._shared: dict[str, SharedCSR | _MmapHandle] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._stats_lock = threading.Lock()
        # Serialises live register/unregister cycles: the serve layer
        # mutates from its event loop while pipeline providers mutate from
        # executor threads.
        self._registry_lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        try:
            for key, graph in self._graphs.items():
                self._shared[key] = _share_backing(graph)
            descriptors = {
                key: shared.descriptor
                for key, shared in self._shared.items()
            }
            workers = (
                max_workers if max_workers is not None
                else (os.cpu_count() or 1)
            )
            if workers < 1:
                raise ParameterError(
                    f"max_workers must be >= 1, got {max_workers}"
                )
            self._max_workers = int(workers)
            mp_context = None
            if start_method is not None:
                import multiprocessing

                mp_context = multiprocessing.get_context(start_method)
            self._pool = ProcessPoolExecutor(
                max_workers=int(workers),
                mp_context=mp_context,
                initializer=_attach_worker,
                initargs=(descriptors,),
            )
            # Force worker startup *now*, from the constructing thread.
            # Under the fork start method workers are otherwise forked at
            # submit time — and forking from an arbitrary submitting
            # thread while other threads hold locks is the classic
            # multiprocessing deadlock (observed as a rare hang when
            # pipeline providers submit concurrently from thread pools).
            # Python 3.11+ launches ALL fork workers on the first submit;
            # 3.10 spawns one per submit unless none is idle, so there the
            # warm-ups briefly hold their workers to force a full fleet.
            import multiprocessing
            import sys

            start = (
                mp_context.get_start_method()
                if mp_context is not None
                else multiprocessing.get_start_method()
            )
            if (
                start == "fork"
                and sys.version_info < (3, 11)
                and self._max_workers > 1
            ):
                warmups = [
                    self._pool.submit(_warm_up, 0.05)
                    for _ in range(self._max_workers)
                ]
                for future in warmups:
                    future.result()
            else:
                self._pool.submit(_warm_up).result()
            logger.debug(
                "pool up: %d worker(s), start_method=%s, %d graph(s) "
                "resident", self._max_workers, start, len(self._graphs),
            )
        except BaseException:
            self.shutdown()
            raise

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def max_workers(self) -> int:
        """Worker-process count — batch schedulers size their window by it."""
        return self._max_workers

    @property
    def graph_keys(self) -> tuple[str, ...]:
        """Keys of the registered graphs, in registration order."""
        return tuple(self._graphs)

    def graph(self, graph_key: str) -> CSRGraph:
        """The parent-side graph registered under ``graph_key``."""
        return self._graphs[self._check_key(graph_key)]

    def shared_nbytes(self) -> int:
        """Total graph bytes resident in shared memory."""
        return sum(shared.nbytes() for shared in self._shared.values())

    @property
    def closed(self) -> bool:
        return self._pool is None

    def stats(self) -> dict[str, int | bool]:
        """Request/graph counters — the serving layer's monitoring hook.

        ``submitted`` counts requests accepted by :meth:`submit`/:meth:`run`;
        ``completed``/``failed`` count finished ones (a cancelled request
        counts as failed).  Counts are monotonic over the pool's lifetime.
        """
        with self._stats_lock:
            backings = {"ram": 0, "shm": 0, "mmap": 0}
            for handle in self._shared.values():
                kind = "mmap" if isinstance(handle, _MmapHandle) else "shm"
                backings[kind] += 1
            return {
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "graphs": len(self._graphs),
                "shared_bytes": self.shared_nbytes(),
                "max_workers": self._max_workers,
                "backing_ram": backings["ram"],
                "backing_shm": backings["shm"],
                "backing_mmap": backings["mmap"],
                "native_kernel": native_available(),
                "closed": self.closed,
            }

    # ------------------------------------------------------------------
    # live graph registration
    # ------------------------------------------------------------------
    def register_graph(self, graph_key: str, graph: CSRGraph) -> None:
        """Place ``graph`` in shared memory and serve it under ``graph_key``.

        Works on a live pool under every start method: workers attach
        lazily from the descriptor carried by the first request that names
        the key (see :func:`_worker_graph`), so no worker restart happens.
        """
        if self._pool is None:
            raise ParameterError("DecompositionPool is shut down")
        if not isinstance(graph_key, str):
            raise ParameterError(
                f"graph keys must be strings, got {type(graph_key).__name__}"
            )
        if not isinstance(graph, CSRGraph):
            raise ParameterError(
                f"graph {graph_key!r} is not a CSRGraph: "
                f"{type(graph).__name__}"
            )
        with self._registry_lock:
            if graph_key in self._graphs:
                raise ParameterError(
                    f"graph key {graph_key!r} is already registered; "
                    "unregister it first to replace the graph"
                )
            self._shared[graph_key] = _share_backing(graph)
            self._graphs[graph_key] = graph

    def unregister_graph(self, graph_key: str) -> None:
        """Stop serving ``graph_key`` and unlink its shared segment.

        The caller is responsible for not racing in-flight requests against
        the same key (the serving layer serialises registry mutations on its
        event loop; pipeline providers only evict keys they registered,
        under their own lock); workers that already mapped the segment keep
        their mapping until they next see the key re-registered or the pool
        shuts down — the OS frees the memory once the last mapping closes.
        """
        with self._registry_lock:
            self._check_key(graph_key)
            del self._graphs[graph_key]
            self._shared.pop(graph_key).close()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _count_done(self, future: "Future") -> None:
        """Done-callback keeping the completed/failed counters current."""
        with self._stats_lock:
            if future.cancelled() or future.exception() is not None:
                self._failed += 1
            else:
                self._completed += 1
    def submit(
        self,
        graph_key: str,
        beta: float,
        *,
        method: str = "auto",
        seed: int | None = None,
        validate: bool = False,
        trace_ctx: dict | None = None,
        **options: object,
    ) -> "Future[PartitionResult]":
        """Enqueue one decomposition; returns a future of the full result.

        The configuration is validated here, parent-side — an unknown graph
        key, method or option raises immediately with the registry's
        message instead of surfacing from a worker.

        ``trace_ctx`` is an optional ``{"trace_id", "span_id"}`` tracing
        context: it rides the request payload to the worker, which then
        returns its spans on :attr:`PartitionResult.spans`.
        """
        if self._pool is None:
            raise ParameterError("DecompositionPool is shut down")
        graph = self._graphs[self._check_key(graph_key)]
        _resolve(graph, method).bind(options)
        descriptor = self._shared[graph_key].descriptor
        payload = (graph_key, descriptor, beta, method, seed, validate,
                   dict(options))
        if trace_ctx is not None:
            payload += (dict(trace_ctx),)
        raw = self._pool.submit(_execute_request, payload)
        with self._stats_lock:
            self._submitted += 1
        out = _chain_future(raw, lambda slim: _rehydrate_result(graph, slim))
        out.add_done_callback(self._count_done)
        return out

    def decompose(
        self,
        graph_key: str,
        beta: float,
        *,
        method: str = "auto",
        seed: int | None = None,
        validate: bool = False,
        **options: object,
    ) -> PartitionResult:
        """Synchronous :meth:`submit` — one request, one result."""
        return self.submit(
            graph_key,
            beta,
            method=method,
            seed=seed,
            validate=validate,
            **options,
        ).result()

    def run(
        self,
        requests: Iterable[DecompositionRequest],
        *,
        chunksize: int | None = None,
    ) -> list[PartitionResult]:
        """Stream a batch of requests; results come back in request order.

        Unlike per-request :meth:`submit`, a batch is shipped ``chunksize``
        requests per pool message (default: ~4 chunks per worker), which
        amortises dispatch overhead when requests are much cheaper than
        the decompositions — the common serving shape.  Results are
        identical either way; only transport granularity changes.
        """
        if self._pool is None:
            raise ParameterError("DecompositionPool is shut down")
        request_list = list(requests)
        payloads = []
        for req in request_list:
            graph = self._graphs[self._check_key(req.graph_key)]
            options = dict(req.options)
            _resolve(graph, req.method).bind(options)
            payloads.append(
                (req.graph_key, self._shared[req.graph_key].descriptor,
                 req.beta, req.method, req.seed, req.validate, options)
            )
        if not payloads:
            return []
        if chunksize is None:
            # Enough chunks that workers stay busy, few enough that
            # dispatch stays off the profile.
            chunksize = max(1, len(payloads) // (4 * self._max_workers))
        with self._stats_lock:
            self._submitted += len(payloads)
        # Drain results one at a time so the counters reflect per-request
        # outcomes: requests yielded before a failure count as completed;
        # the failing one and everything after it (which the broken map
        # will never yield) count as failed.
        slim_results: list[tuple] = []
        try:
            for slim in self._pool.map(
                _execute_request, payloads, chunksize=int(chunksize)
            ):
                slim_results.append(slim)
                with self._stats_lock:
                    self._completed += 1
        except BaseException:
            with self._stats_lock:
                self._failed += len(payloads) - len(slim_results)
            raise
        return [
            _rehydrate_result(self._graphs[req.graph_key], slim)
            for req, slim in zip(request_list, slim_results)
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, *, wait: bool = True) -> None:
        """Stop the workers and unlink every shared segment (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)
        shared, self._shared = self._shared, {}
        for wrapper in shared.values():
            wrapper.close()

    def __enter__(self) -> "DecompositionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{len(self._graphs)} graph(s)"
        return f"DecompositionPool({state})"

    def _check_key(self, graph_key: str) -> str:
        if graph_key not in self._graphs:
            raise ParameterError(
                f"unknown graph key {graph_key!r}; "
                f"registered keys: {sorted(self._graphs)}"
            )
        return graph_key


def _normalise_graph_map(graphs) -> dict[str, CSRGraph]:
    if graphs is None:
        return {}
    if isinstance(graphs, CSRGraph):
        graphs = {"0": graphs}
    elif isinstance(graphs, Mapping):
        graphs = dict(graphs)
    else:
        graphs = {str(i): g for i, g in enumerate(graphs)}
    for key, graph in graphs.items():
        if not isinstance(key, str):
            raise ParameterError(
                f"graph keys must be strings, got {type(key).__name__}"
            )
        if not isinstance(graph, CSRGraph):
            raise ParameterError(
                f"graph {key!r} is not a CSRGraph: {type(graph).__name__}"
            )
    return graphs


def _chain_future(raw: Future, transform) -> Future:
    """A future resolving to ``transform(raw.result())``.

    Keeps :meth:`DecompositionPool.submit` returning plain
    ``concurrent.futures.Future`` objects while rehydration happens lazily
    on the parent side (in the callback thread that completes ``raw``).
    """
    out: Future = Future()

    def _complete(done: Future) -> None:
        # The caller may have cancelled the chained future while the raw
        # task kept running; claim it (PENDING -> RUNNING) before setting
        # anything, and drop the result if the claim fails.
        if not out.set_running_or_notify_cancel():
            return
        if done.cancelled():
            out.set_exception(CancelledError())
            return
        exc = done.exception()
        if exc is not None:
            out.set_exception(exc)
            return
        try:
            out.set_result(transform(done.result()))
        except BaseException as err:  # rehydration failure
            out.set_exception(err)

    raw.add_done_callback(_complete)
    return out
