"""Shared-memory graph segments — load a CSR graph once, attach anywhere.

The batch runtime's premise (following Ceccarello et al.'s space-efficient
decomposition engines) is that the graph is the big immutable input and the
requests are tiny: a worker should never receive the graph through a pickle
stream, it should *attach* to the one copy the parent placed in
``multiprocessing.shared_memory``.

:class:`SharedCSR` (and :class:`SharedWeightedCSR`) own one shared-memory
segment laid out as the concatenation of the graph's defining arrays (the
:meth:`~repro.graphs.csr.CSRGraph.csr_arrays` contract: ``indptr``,
``indices``, and ``weights`` for weighted graphs).  The picklable
:class:`SharedGraphDescriptor` carries only the segment name plus per-array
offset/shape/dtype metadata — a few hundred bytes regardless of graph size —
and :func:`attach_shared` rebuilds a fully functional graph in a worker as
NumPy views straight into the mapped segment, copying nothing.

Lifecycle: the creating process owns the segment and must :meth:`unlink
<SharedCSR.unlink>` it (``close()`` does both for owners; both classes are
context managers).  Attached wrappers close their mapping only — unlinking
is the owner's job, and attachment bypasses the ``resource_tracker``
registration so a worker exiting never destroys a segment the parent still
serves (see :func:`_attach_existing` for the bpo-39959 story).
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.graphs.weighted import WeightedCSRGraph

__all__ = [
    "ArraySpec",
    "SharedGraphDescriptor",
    "SharedCSR",
    "SharedWeightedCSR",
    "share_graph",
    "attach_shared",
]


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one defining array inside the shared segment."""

    name: str
    offset: int
    shape: tuple[int, ...]
    dtype: str

    def view(self, buf) -> np.ndarray:
        """A zero-copy NumPy view of this array over the mapped buffer."""
        count = int(np.prod(self.shape)) if self.shape else 1
        return np.frombuffer(
            buf, dtype=np.dtype(self.dtype), count=count, offset=self.offset
        ).reshape(self.shape)


@dataclass(frozen=True)
class SharedGraphDescriptor:
    """Everything a worker needs to reattach a shared graph.

    Picklable and tiny: the segment *name* (not its contents), the graph
    class (pickled by reference), and the array layout.  ``nbytes`` lets
    attachment fail fast with a clear message when the segment was unlinked
    or truncated underneath us.
    """

    segment: str
    graph_type: type
    arrays: tuple[ArraySpec, ...]
    nbytes: int

    @property
    def weighted(self) -> bool:
        return issubclass(self.graph_type, WeightedCSRGraph)


#: Serialises every SharedMemory construction in this module: attaching
#: suppresses the process-global ``resource_tracker.register`` for the
#: duration of the call, so a *creation* must never overlap that window
#: (its registration would be swallowed and the segment could leak).
_TRACKER_LOCK = threading.Lock()


def _create_segment(size: int) -> shared_memory.SharedMemory:
    """Allocate a fresh segment, registration guaranteed to be seen."""
    with _TRACKER_LOCK:
        return shared_memory.SharedMemory(create=True, size=size)


def _attach_existing(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment *without* registering it for cleanup.

    ``SharedMemory(name=...)`` registers the segment with the resource
    tracker even on attach (bpo-39959, fixed only by 3.13's ``track=False``,
    above this repo's 3.10–3.12 floor).  That is wrong for both start
    methods: under ``spawn`` the worker's own tracker unlinks the segment
    when the worker exits, destroying it under the owner; under ``fork``
    an ``unregister``-after-attach workaround would instead erase the
    *owner's* entry in the shared tracker (its cache is a set, not a
    refcount).  Suppressing registration during the attach call is the one
    behaviour correct everywhere: the creator remains the sole registrant.
    """
    if sys.version_info >= (3, 13):  # pragma: no cover - 3.10-3.12 floor
        return shared_memory.SharedMemory(name=name, track=False)

    from multiprocessing import resource_tracker

    with _TRACKER_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedCSR:
    """A CSR graph resident in one shared-memory segment.

    Construct with :meth:`create` (owner side) or :meth:`attach` (worker
    side); :attr:`graph` is a regular :class:`~repro.graphs.csr.CSRGraph`
    whose arrays are views into the segment, so every algorithm in the
    library runs on it unchanged.
    """

    #: Graph class this wrapper shares; the weighted subclass overrides it.
    graph_type: type = CSRGraph

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        descriptor: SharedGraphDescriptor,
        graph: CSRGraph,
        *,
        owner: bool,
    ) -> None:
        self._shm: shared_memory.SharedMemory | None = shm
        self._descriptor = descriptor
        self._graph = graph
        self._owner = owner

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, graph: CSRGraph) -> "SharedCSR":
        """Copy ``graph``'s arrays into a fresh shared segment (owner side)."""
        if not isinstance(graph, cls.graph_type):
            raise ParameterError(
                f"{cls.__name__} shares {cls.graph_type.__name__} instances, "
                f"got {type(graph).__name__}"
            )
        arrays = graph.csr_arrays()
        total = sum(arr.nbytes for arr in arrays.values())
        # Zero-size segments are rejected by the OS; a 0-vertex graph still
        # has the one-element indptr, so total >= 8, but guard anyway.
        shm = _create_segment(max(total, 1))
        specs: list[ArraySpec] = []
        offset = 0
        views: dict[str, np.ndarray] = {}
        for name, arr in arrays.items():
            spec = ArraySpec(
                name=name,
                offset=offset,
                shape=tuple(arr.shape),
                dtype=arr.dtype.str,
            )
            view = spec.view(shm.buf)
            view[...] = arr
            views[name] = view
            specs.append(spec)
            offset += arr.nbytes
        descriptor = SharedGraphDescriptor(
            segment=shm.name,
            graph_type=type(graph),
            arrays=tuple(specs),
            nbytes=total,
        )
        shared_graph = type(graph).from_arrays(views, validate=False)
        return cls(shm, descriptor, shared_graph, owner=True)

    @classmethod
    def attach(cls, descriptor: SharedGraphDescriptor) -> "SharedCSR":
        """Map an existing segment and rebuild the graph zero-copy."""
        try:
            shm = _attach_existing(descriptor.segment)
        except FileNotFoundError:
            raise ParameterError(
                f"shared graph segment {descriptor.segment!r} does not "
                "exist (was the owning SharedCSR closed?)"
            ) from None
        if shm.size < descriptor.nbytes:
            shm.close()
            raise ParameterError(
                f"shared graph segment {descriptor.segment!r} holds "
                f"{shm.size} bytes but the descriptor expects "
                f"{descriptor.nbytes}"
            )
        views = {spec.name: spec.view(shm.buf) for spec in descriptor.arrays}
        graph = descriptor.graph_type.from_arrays(views, validate=False)
        return cls(shm, descriptor, graph, owner=False)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """The shared graph (arrays are views into the segment)."""
        if self._shm is None:
            raise ParameterError("shared graph is closed")
        return self._graph

    @property
    def descriptor(self) -> SharedGraphDescriptor:
        """Picklable reattachment token for worker processes."""
        return self._descriptor

    @property
    def owner(self) -> bool:
        """Whether this wrapper created (and must unlink) the segment."""
        return self._owner

    @property
    def closed(self) -> bool:
        return self._shm is None

    def nbytes(self) -> int:
        """Bytes of graph data resident in the segment."""
        return self._descriptor.nbytes

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping; owners also unlink the segment.

        Idempotent.  NumPy views into the segment (including the wrapper's
        own graph) become invalid after this.
        """
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        # Release the graph's views first: SharedMemory.close() cannot
        # unmap while exported buffers are alive.
        self._graph = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a caller kept a view alive
            pass
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def unlink(self) -> None:
        """Owner-side close-and-destroy (alias for :meth:`close`)."""
        if not self._owner:
            raise ParameterError(
                "only the owning SharedCSR may unlink its segment"
            )
        self.close()

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"segment={self._descriptor.segment!r}"
        role = "owner" if self._owner else "attached"
        return (
            f"{type(self).__name__}({state}, {role}, "
            f"nbytes={self._descriptor.nbytes})"
        )


class SharedWeightedCSR(SharedCSR):
    """Weighted variant: shares ``weights`` alongside the topology."""

    graph_type = WeightedCSRGraph


def share_graph(graph: CSRGraph) -> SharedCSR:
    """Place any supported graph in shared memory (owner side).

    Picks :class:`SharedWeightedCSR` for weighted inputs, :class:`SharedCSR`
    otherwise — the factory the pool uses so callers never dispatch by hand.
    """
    if isinstance(graph, WeightedCSRGraph):
        return SharedWeightedCSR.create(graph)
    if isinstance(graph, CSRGraph):
        return SharedCSR.create(graph)
    raise ParameterError(
        f"expected a CSRGraph or WeightedCSRGraph, got {type(graph).__name__}"
    )


def attach_shared(descriptor: SharedGraphDescriptor) -> SharedCSR:
    """Attach to a shared graph from its descriptor (worker side)."""
    cls = SharedWeightedCSR if descriptor.weighted else SharedCSR
    return cls.attach(descriptor)
