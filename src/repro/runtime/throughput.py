"""Request-throughput measurement for the batch runtime (experiment RT).

Answers the serving question the runtime exists for: *how many decomposition
requests per second* does each execution strategy sustain against one
resident graph?  Strategies measured:

- ``serial`` — in-process loop (no transport at all; the latency floor for
  one core);
- ``pickle`` — process pool where **every task carries the graph** through
  the pickle stream and ships the full result (graph included) back: the
  naive per-task pickling executor the acceptance criterion compares
  against;
- ``process`` — the engine's legacy pool (graph pickled once per worker via
  the initializer, results shipped back whole);
- ``shared`` — the :class:`~repro.runtime.pool.DecompositionPool` runtime:
  graph resident in shared memory, tiny requests, slim results.

Every record carries a digest of the per-seed assignment arrays, so callers
(the RT benchmark, the CLI) can assert all strategies computed bit-identical
decompositions while comparing their speed.
"""

from __future__ import annotations

import hashlib
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.engine import PartitionResult, decompose, decompose_many
from repro.core.weighted import WeightedDecomposition
from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.runtime.pool import DecompositionPool, DecompositionRequest

__all__ = ["THROUGHPUT_EXECUTORS", "ThroughputRecord", "measure_throughput"]

#: Strategies measure_throughput knows how to run.
THROUGHPUT_EXECUTORS = ("serial", "pickle", "process", "shared")


@dataclass(frozen=True)
class ThroughputRecord:
    """One strategy's measurement over the same request stream."""

    executor: str
    num_requests: int
    seconds: float
    requests_per_sec: float
    #: SHA-1 over the per-seed assignment arrays, in seed order — equal
    #: digests mean bit-identical decompositions across strategies.
    assignments_digest: str

    def speedup_over(self, baseline: "ThroughputRecord") -> float:
        """Requests/sec ratio of this strategy over ``baseline``."""
        if baseline.requests_per_sec <= 0:
            return float("inf")
        return self.requests_per_sec / baseline.requests_per_sec


def _digest(results: Sequence[PartitionResult]) -> str:
    sha = hashlib.sha1()
    for result in results:
        decomposition = result.decomposition
        sha.update(decomposition.center.tobytes())
        if isinstance(decomposition, WeightedDecomposition):
            sha.update(decomposition.radius.tobytes())
        else:
            sha.update(decomposition.hops.tobytes())
    return sha.hexdigest()


def _pickle_task(payload: tuple) -> PartitionResult:
    """Worker for the per-task pickling baseline: the graph rides along."""
    graph, beta, method, seed, options = payload
    return decompose(graph, beta, method=method, seed=seed, **options)


def _run_serial(graph, beta, method, seeds, options, workers):
    return [
        decompose(graph, beta, method=method, seed=seed, **options)
        for seed in seeds
    ]


def _run_pickle(graph, beta, method, seeds, options, workers):
    from concurrent.futures import ProcessPoolExecutor

    payloads = [(graph, beta, method, seed, options) for seed in seeds]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_pickle_task, payloads))


def _run_process(graph, beta, method, seeds, options, workers):
    batch = decompose_many(
        graph,
        beta,
        method=method,
        seeds=seeds,
        executor="process",
        max_workers=workers,
        **options,
    )
    return batch.results


def _run_shared(graph, beta, method, seeds, options, workers):
    with DecompositionPool({"g": graph}, max_workers=workers) as pool:
        return pool.run(
            DecompositionRequest(
                graph_key="g",
                beta=beta,
                method=method,
                seed=seed,
                options=options,
            )
            for seed in seeds
        )


_RUNNERS = {
    "serial": _run_serial,
    "pickle": _run_pickle,
    "process": _run_process,
    "shared": _run_shared,
}


def measure_throughput(
    graph: CSRGraph,
    beta: float,
    *,
    num_requests: int = 32,
    executors: Sequence[str] = ("pickle", "shared"),
    max_workers: int | None = None,
    method: str = "auto",
    base_seed: int = 0,
    options: Mapping[str, object] | None = None,
    repeats: int = 1,
) -> dict[str, ThroughputRecord]:
    """Time the same request stream under each strategy.

    Every strategy runs requests for seeds ``base_seed .. base_seed +
    num_requests - 1`` against ``graph`` and is timed end to end,
    *including* its pool/segment setup — a serving runtime that cannot
    amortise its own startup does not get to hide it.  With ``repeats > 1``
    each strategy runs that many times and reports its fastest pass (the
    usual min-time discipline: scheduling noise only ever slows a run
    down), with the digest checked identical across passes.

    Returns ``{executor: ThroughputRecord}`` in the order requested.
    Strategy names outside :data:`THROUGHPUT_EXECUTORS` raise
    :class:`~repro.errors.ParameterError`.
    """
    if num_requests < 1:
        raise ParameterError(
            f"num_requests must be >= 1, got {num_requests}"
        )
    if repeats < 1:
        raise ParameterError(f"repeats must be >= 1, got {repeats}")
    if max_workers is not None and max_workers < 1:
        raise ParameterError(f"max_workers must be >= 1, got {max_workers}")
    unknown = [name for name in executors if name not in _RUNNERS]
    if unknown:
        raise ParameterError(
            f"unknown throughput executor(s) {unknown}; "
            f"choices: {list(THROUGHPUT_EXECUTORS)}"
        )
    seeds = list(range(base_seed, base_seed + num_requests))
    opts = dict(options or {})
    records: dict[str, ThroughputRecord] = {}
    for name in executors:
        best: float | None = None
        digest: str | None = None
        for _ in range(repeats):
            start = time.perf_counter()
            results = _RUNNERS[name](
                graph, beta, method, seeds, opts, max_workers
            )
            elapsed = time.perf_counter() - start
            pass_digest = _digest(results)
            if digest is None:
                digest = pass_digest
            elif digest != pass_digest:  # pragma: no cover - determinism bug
                # Deliberately not a ReproError: this is an internal
                # invariant violation, not bad user input — the CLI must
                # crash loudly rather than print a polite exit-2 error.
                raise RuntimeError(
                    f"executor {name!r} produced differing assignments "
                    "across repeat passes"
                )
            if best is None or elapsed < best:
                best = elapsed
        records[name] = ThroughputRecord(
            executor=name,
            num_requests=num_requests,
            seconds=best,
            requests_per_sec=num_requests / best if best > 0 else 0.0,
            assignments_digest=digest,
        )
    return records
