"""Ablation: uniform shifts in place of exponential ones.

Section 3 motivates the exponential distribution as the limit of the
iteratively-doubled uniform shifts of [9] ("the need to have exponentially
decreasing number of centers ... suggests that the exponential distribution
can be used in place of the (locally) uniform distribution").  This ablation
runs the *same* single-BFS pipeline as Algorithm 1 but draws
``δ_u ~ Uniform[0, R)`` with ``R = c·ln(n)/β``.

What breaks, measurably (benchmark ``bench_ablation_shifts``): with uniform
shifts the gap between the smallest and second-smallest shifted distance at
an edge midpoint no longer has the memoryless ``βc``-tail of Lemma 4.4, so
the cut fraction degrades relative to the exponential version at equal
diameter budget — the empirical justification for the paper's distribution
choice.
"""

from __future__ import annotations

import numpy as np

from repro.core.decomposition import Decomposition, PartitionTrace
from repro.core.registry import KERNEL_OPTION, OptionSpec, register_method
from repro.core.ldd_bfs import partition_bfs_with_shifts
from repro.core.shifts import shifts_from_values
from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.rng.exponential import validate_beta
from repro.rng.seeding import SeedLike, make_generator

__all__ = ["partition_uniform"]


@register_method(
    "uniform",
    kind="unweighted",
    description="ablation - uniform shifts in the Algorithm 1 pipeline",
    options=(
        OptionSpec(
            "range_constant",
            "float",
            1.0,
            "scale c of the uniform shift range c * ln(n) / beta",
        ),
        KERNEL_OPTION,
    ),
)
def partition_uniform(
    graph: CSRGraph,
    beta: float,
    *,
    seed: SeedLike = None,
    range_constant: float = 1.0,
) -> tuple[Decomposition, PartitionTrace]:
    """Algorithm 1's pipeline with ``δ_u ~ Uniform[0, c·ln(n)/β)``.

    The range is chosen so the *maximum* shift (hence the diameter
    certificate) matches the exponential version's high-probability scale,
    making cut-quality comparisons at matched diameter meaningful.
    """
    beta = validate_beta(beta)
    n = graph.num_vertices
    if n == 0:
        raise GraphError("cannot partition the empty graph")
    rng = make_generator(seed)
    shift_range = max(1.0, range_constant * np.log(max(n, 2)) / beta)
    delta = rng.random(n) * shift_range
    shifts = shifts_from_values(beta, delta, mode="fractional", seed=rng)
    decomposition, trace = partition_bfs_with_shifts(graph, shifts)
    trace = PartitionTrace(
        method="bfs-uniform-shifts",
        beta=beta,
        rounds=trace.rounds,
        work=trace.work,
        depth=trace.depth,
        delta_max=trace.delta_max,
        wall_time_s=trace.wall_time_s,
        frontier_sizes=trace.frontier_sizes,
        extra={**trace.extra, "shift_range": float(shift_range)},
    )
    return decomposition, trace
