"""Method registry — the extensibility seam of the decomposition engine.

Every decomposition algorithm is published through a :class:`MethodSpec`
registered with :func:`register_method`.  The spec records what the engine
needs for dispatch and validation without importing the engine:

- which *graph kinds* the implementation accepts (``"unweighted"`` CSR
  topology, ``"weighted"`` CSR with positive edge weights, or ``"any"``);
- which keyword *options* it accepts (:class:`OptionSpec` — type, default,
  choices), so ``decompose(..., **options)`` and the CLI's
  ``--option key=value`` can validate inputs up front with error messages
  that name the valid alternatives;
- *pinned* options for alias methods (``permutation`` is ``bfs`` with
  ``tie_break`` pinned), which callers cannot override.

New algorithms — the MPX spanner/hopset line, batched variants — plug in by
decorating their entry point; no engine or CLI change is needed.

:data:`PARTITION_METHODS`, historically a hand-written dict, is now a live
read-only view over the registry restricted to methods that accept
unweighted graphs, preserving the old ``name -> description`` contract.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bfs.kernels import KERNEL_CHOICES
from repro.errors import ParameterError

__all__ = [
    "OptionSpec",
    "MethodSpec",
    "KERNEL_OPTION",
    "register_method",
    "get_method",
    "method_names",
    "iter_methods",
    "describe_methods",
    "PARTITION_METHODS",
]

#: Graph kinds a method may declare support for.
GRAPH_KINDS = ("unweighted", "weighted", "any")

_OPTION_PARSERS: dict[str, Callable[[str], object]] = {
    "str": str,
    "int": int,
    "float": float,
}


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"not a boolean: {text!r}")


_OPTION_PARSERS["bool"] = _parse_bool

#: Python types accepted per declared option type (bool is checked first in
#: validate() — it subclasses int and must not satisfy int/float options).
_OPTION_PYTHON_TYPES = {
    "str": str,
    "int": (int, np.integer),
    "float": (int, float, np.integer, np.floating),
    "bool": (bool, np.bool_),
}


@dataclass(frozen=True)
class OptionSpec:
    """One accepted keyword option of a registered method.

    ``type`` is a name from ``{"str", "int", "float", "bool"}`` — kept as a
    string so specs stay trivially picklable and printable.  ``choices``
    restricts string options to an enumerated set.
    """

    name: str
    type: str
    default: object
    description: str = ""
    choices: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.type not in _OPTION_PARSERS:
            raise ParameterError(
                f"option {self.name!r} has unknown type {self.type!r}; "
                f"choices: {sorted(_OPTION_PARSERS)}"
            )

    def validate(self, value: object) -> object:
        """Check ``value`` against the spec, returning the value to use.

        Type mismatches fail here with a :class:`ParameterError` naming the
        expected type, instead of surfacing as a ``TypeError`` deep inside
        the algorithm.
        """
        is_bool = isinstance(value, (bool, np.bool_))
        if self.type != "bool" and is_bool:
            raise ParameterError(
                f"option {self.name!r} expects a {self.type}, "
                f"got bool {value!r}"
            )
        if not isinstance(value, _OPTION_PYTHON_TYPES[self.type]):
            raise ParameterError(
                f"option {self.name!r} expects a {self.type}, "
                f"got {type(value).__name__} {value!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise ParameterError(
                f"invalid value {value!r} for option {self.name!r}; "
                f"choices: {sorted(self.choices)}"
            )
        return value

    def parse(self, text: str) -> object:
        """Parse a CLI-style string value (``--option name=text``)."""
        try:
            value = _OPTION_PARSERS[self.type](text)
        except ValueError as exc:
            raise ParameterError(
                f"option {self.name!r} expects a {self.type}: {exc}"
            ) from exc
        return self.validate(value)


@dataclass(frozen=True)
class MethodSpec:
    """Registered decomposition method: metadata plus the implementation.

    ``func(graph, beta, *, seed=..., **options)`` must return a
    ``(decomposition, trace)`` pair; the engine wraps it into a
    ``PartitionResult``.  ``pinned`` options are forwarded on every call and
    are not user-overridable (alias methods use them).
    """

    name: str
    description: str
    kind: str
    func: Callable = field(repr=False)
    options: tuple[OptionSpec, ...] = ()
    pinned: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in GRAPH_KINDS:
            raise ParameterError(
                f"method {self.name!r} has unknown kind {self.kind!r}; "
                f"choices: {sorted(GRAPH_KINDS)}"
            )
        overlap = {o.name for o in self.options} & set(self.pinned)
        if overlap:
            raise ParameterError(
                f"method {self.name!r} pins options it also exposes: "
                f"{sorted(overlap)}"
            )

    @property
    def supports_unweighted(self) -> bool:
        return self.kind in ("unweighted", "any")

    @property
    def supports_weighted(self) -> bool:
        return self.kind in ("weighted", "any")

    def supports(self, graph_kind: str) -> bool:
        return {"unweighted": self.supports_unweighted,
                "weighted": self.supports_weighted}[graph_kind]

    def option(self, name: str) -> OptionSpec:
        """Look up one option spec by name (ParameterError when unknown)."""
        for spec in self.options:
            if spec.name == name:
                return spec
        raise ParameterError(
            f"method {self.name!r} has no option {name!r}; "
            f"accepted options: {sorted(o.name for o in self.options)}"
        )

    def bind(self, options: Mapping[str, object]) -> dict[str, object]:
        """Validate user options and merge with pinned values.

        Unknown names and out-of-domain values raise
        :class:`~repro.errors.ParameterError` listing the valid choices.
        Returns the keyword arguments to forward to :attr:`func` (defaults
        are left to the implementation's signature).
        """
        bound: dict[str, object] = {}
        for key, value in options.items():
            spec = self.option(key)  # raises with the accepted names
            bound[key] = spec.validate(value)
        bound.update(self.pinned)
        return bound


#: Shared option spec for the shifted-BFS hot-path engine.  Every
#: unweighted method registers it — the engine consumes the value (it
#: applies :func:`repro.bfs.kernels.use_kernel` around the method call and
#: never forwards ``kernel=`` to the implementation), so methods that do
#: not run the shifted BFS accept and ignore it, keeping batch sweeps over
#: methods × kernels uniform.
KERNEL_OPTION = OptionSpec(
    "kernel",
    "str",
    "auto",
    "shifted-BFS hot-path engine: 'native' (compiled extension, errors "
    "when not built), 'python' (pure numpy), or 'auto' (native when "
    "available); bit-identical results either way",
    choices=KERNEL_CHOICES,
)

#: name -> MethodSpec; mutate only through register_method.
_REGISTRY: dict[str, MethodSpec] = {}


def register_method(
    name: str,
    *,
    kind: str,
    description: str,
    options: tuple[OptionSpec, ...] | list[OptionSpec] = (),
    pinned: Mapping[str, object] | None = None,
    func: Callable | None = None,
):
    """Register a decomposition method (usable as decorator or function).

    As a decorator::

        @register_method("bfs", kind="unweighted", description="...")
        def partition_bfs(graph, beta, *, seed=None, ...): ...

    As a plain call (alias methods pin options of an existing callable)::

        register_method("permutation", kind="unweighted", func=partition_bfs,
                        pinned={"tie_break": "permutation"}, description="...")

    Duplicate names are rejected — re-registering would silently change the
    behaviour of every caller that resolves methods by name.
    """

    def _register(fn: Callable) -> Callable:
        if name in _REGISTRY:
            raise ParameterError(
                f"method {name!r} is already registered "
                f"({_REGISTRY[name].description!r}); method names must be "
                "unique"
            )
        _REGISTRY[name] = MethodSpec(
            name=name,
            description=description,
            kind=kind,
            func=fn,
            options=tuple(options),
            pinned=dict(pinned or {}),
        )
        return fn

    if func is not None:
        return _register(func)
    return _register


def get_method(name: str) -> MethodSpec:
    """Resolve a method name to its spec.

    Raises :class:`~repro.errors.ParameterError` naming the registered
    methods when the name is unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ParameterError(
            f"unknown method {name!r}; choices: {sorted(_REGISTRY)}"
        ) from None


def method_names(graph_kind: str | None = None) -> list[str]:
    """Sorted names of registered methods, optionally filtered by kind."""
    return sorted(
        name
        for name, spec in _REGISTRY.items()
        if graph_kind is None or spec.supports(graph_kind)
    )


def iter_methods(graph_kind: str | None = None) -> list[MethodSpec]:
    """Registered specs in name order, optionally filtered by kind."""
    return [get_method(name) for name in method_names(graph_kind)]


def describe_methods(graph_kind: str | None = None) -> list[dict]:
    """The registry as JSON-serialisable dicts, in name order.

    The machine-readable registry dump behind ``repro methods --json`` and
    the decomposition service's ``hello`` handshake: each entry carries the
    method's name, kind, description, option specs (name/type/default/
    choices) and pinned values, so remote clients can validate and parse
    option strings without importing the implementation modules.
    """
    return [
        {
            "name": spec.name,
            "kind": spec.kind,
            "description": spec.description,
            "options": [
                {
                    "name": opt.name,
                    "type": opt.type,
                    "default": opt.default,
                    "description": opt.description,
                    "choices": list(opt.choices) if opt.choices else None,
                }
                for opt in spec.options
            ],
            "pinned": dict(spec.pinned),
        }
        for spec in iter_methods(graph_kind)
    ]


class _MethodsView(Mapping):
    """Read-only ``name -> description`` mapping over the registry.

    Filtered to one graph kind so :data:`PARTITION_METHODS` keeps its
    historical contract (exactly the methods ``partition``/``decompose``
    accept for plain :class:`~repro.graphs.csr.CSRGraph` inputs) while
    staying automatically in sync with registrations.
    """

    def __init__(self, graph_kind: str) -> None:
        self._graph_kind = graph_kind

    def __getitem__(self, name: str) -> str:
        spec = _REGISTRY.get(name)
        if spec is None or not spec.supports(self._graph_kind):
            raise KeyError(name)
        return spec.description

    def __iter__(self) -> Iterator[str]:
        return iter(method_names(self._graph_kind))

    def __len__(self) -> int:
        return len(method_names(self._graph_kind))

    def __repr__(self) -> str:
        return f"_MethodsView({dict(self)!r})"


#: Methods accepting unweighted graphs, as a live ``name -> description``
#: view (the CLI's ``methods`` listing and the docs iterate this).
PARTITION_METHODS: Mapping[str, str] = _MethodsView("unweighted")
