"""The unified decomposition engine: ``decompose`` and ``decompose_many``.

``decompose(graph, beta, method=..., **options)`` is the single entry point
for every decomposition algorithm:

- it dispatches on the *graph type* — a plain
  :class:`~repro.graphs.csr.CSRGraph` routes to the unweighted methods, a
  :class:`~repro.graphs.weighted.WeightedCSRGraph` to the weighted ones —
  with ``method="auto"`` picking the paper's algorithm for each kind;
- it resolves the method through the :mod:`~repro.core.registry`, validating
  per-method ``**options`` against the registered spec so unknown methods,
  unknown options and out-of-domain values all fail fast with messages that
  list the valid choices;
- it always returns a :class:`PartitionResult`, weighted runs included
  (verification routes through :func:`~repro.core.verify.verify_decomposition`,
  which skips the unweighted-only hop invariant for weighted inputs).

``decompose_many`` is the batched companion: it fans one configuration out
across seeds and/or graphs — serially, on a legacy process pool, or on the
shared-memory batch runtime (:mod:`repro.runtime`), where graphs are loaded
into ``multiprocessing.shared_memory`` once and workers attach zero-copy —
and returns the per-run results together with aggregate mean/std
statistics.  Because every run is keyed by an explicit integer seed, every
executor is bit-identical to the serial loop (pinned by
``tests/test_conformance.py``); repetition loops in benchmarks and the
CLI's ``--reps`` are thin wrappers over it.
"""

from __future__ import annotations

import math
import os
import warnings
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

# Importing the implementation modules populates the method registry.
import repro.core.ldd_bfs  # noqa: F401
import repro.core.ldd_blelloch  # noqa: F401
import repro.core.ldd_exact  # noqa: F401
import repro.core.ldd_sequential  # noqa: F401
import repro.core.ldd_uniform  # noqa: F401
import repro.core.weighted  # noqa: F401
from repro.bfs.kernels import resolve_kernel, use_kernel
from repro.core.decomposition import Decomposition, PartitionTrace
from repro.core.registry import MethodSpec, get_method, method_names
from repro.core.verify import VerificationReport, verify_decomposition
from repro.core.weighted import WeightedDecomposition
from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.graphs.weighted import WeightedCSRGraph
from repro.rng.seeding import SeedLike

__all__ = [
    "PartitionResult",
    "BatchRun",
    "BatchResult",
    "decompose",
    "decompose_many",
    "graph_kind",
]

#: ``method="auto"`` resolves to the paper's algorithm for each graph kind.
DEFAULT_METHODS = {"unweighted": "bfs", "weighted": "dijkstra"}


@dataclass(frozen=True, eq=False)
class PartitionResult:
    """A decomposition, how it was computed, and (optionally) its checks."""

    decomposition: Decomposition | WeightedDecomposition
    trace: PartitionTrace
    report: VerificationReport | None = None
    #: Telemetry span records collected where the decomposition actually
    #: ran (pool workers ship theirs home here); empty unless the request
    #: carried a tracing context.  Not part of result equality/identity.
    spans: tuple = ()

    def summary(self) -> dict[str, float | str]:
        """Merged one-line summary for logs and benchmark tables."""
        out: dict[str, float | str] = {"method": self.trace.method}
        out.update(self.decomposition.summary())
        out["rounds"] = float(self.trace.rounds)
        out["work"] = float(self.trace.work)
        out["depth"] = float(self.trace.depth)
        return out


def graph_kind(graph: CSRGraph) -> str:
    """``"weighted"`` for :class:`WeightedCSRGraph` inputs, else ``"unweighted"``.

    The subclass check runs first — a weighted graph *is a* CSR graph, but
    must dispatch to the weighted methods.
    """
    if isinstance(graph, WeightedCSRGraph):
        return "weighted"
    if isinstance(graph, CSRGraph):
        return "unweighted"
    raise ParameterError(
        f"expected a CSRGraph or WeightedCSRGraph, got {type(graph).__name__}"
    )


def _resolve(graph: CSRGraph, method: str | None) -> MethodSpec:
    """Map (graph type, method name) to a spec, or fail listing choices."""
    kind = graph_kind(graph)
    if method is None or method == "auto":
        method = DEFAULT_METHODS[kind]
    spec = get_method(method)
    if not spec.supports(kind):
        raise ParameterError(
            f"method {method!r} does not support {kind} graphs; "
            f"methods for {kind} graphs: {method_names(kind)}"
        )
    return spec


def decompose(
    graph: CSRGraph,
    beta: float,
    *,
    method: str = "auto",
    seed: SeedLike = None,
    validate: bool = False,
    **options: object,
) -> PartitionResult:
    """Compute a ``(β, O(log n / β))`` low-diameter decomposition.

    Parameters
    ----------
    graph:
        Undirected graph; a :class:`~repro.graphs.weighted.WeightedCSRGraph`
        routes to the weighted methods, any other
        :class:`~repro.graphs.csr.CSRGraph` to the unweighted ones.
    beta:
        Target fraction of cut edges (cut weight, for weighted graphs),
        ``0 < β ≤ 1``.
    method:
        A registered method name (see
        :func:`repro.core.registry.method_names`), or ``"auto"`` for the
        paper's algorithm matching the graph kind (``bfs`` / ``dijkstra``).
    seed:
        Seed / generator for reproducibility.
    validate:
        Run :func:`~repro.core.verify.verify_decomposition` on the result
        (deterministic invariants raise on failure) and attach the report.
    **options:
        Per-method options, validated against the registered spec — e.g.
        ``tie_break="permutation"`` for ``bfs``, ``randomize_starts=False``
        for ``sequential``, ``kernel="native"`` on any unweighted method to
        force the compiled BFS engine.  Unknown names raise
        :class:`~repro.errors.ParameterError` listing the accepted options.

    Examples
    --------
    >>> from repro.graphs import grid_2d
    >>> from repro.core import decompose
    >>> res = decompose(grid_2d(30, 30), beta=0.1, seed=7)
    >>> res.decomposition.num_pieces > 1
    True
    >>> res.decomposition.cut_fraction() < 0.5
    True
    """
    spec = _resolve(graph, method)
    kwargs = spec.bind(options)
    # The kernel option is consumed here, not forwarded: the engine applies
    # it as ambient context so implementations (and the BFS layers beneath
    # them) pick it up without a `kernel=` parameter in every signature.
    kernel = kwargs.pop("kernel", None)
    if kernel is not None:
        resolve_kernel(kernel)  # fail fast: native requested but not built
    with use_kernel(kernel):
        decomposition, trace = spec.func(graph, beta, seed=seed, **kwargs)
    report = None
    if validate:
        # Methods without a shift certificate record delta_max = NaN; the
        # report then skips the radius-vs-certificate comparison.
        delta_max = None if math.isnan(trace.delta_max) else trace.delta_max
        report = verify_decomposition(
            decomposition, beta=beta, delta_max=delta_max
        )
    return PartitionResult(
        decomposition=decomposition, trace=trace, report=report
    )


# ---------------------------------------------------------------------------
# batched execution
# ---------------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class BatchRun:
    """One run of a batch: which graph, which seed, and the result."""

    graph_index: int
    seed: int
    result: PartitionResult

    def summary(self) -> dict[str, float | str]:
        """The run's :meth:`PartitionResult.summary` plus batch coordinates."""
        out = self.result.summary()
        out["graph_index"] = float(self.graph_index)
        out["seed"] = float(self.seed)
        out["wall_time_s"] = float(self.result.trace.wall_time_s)
        return out


#: Statistics aggregated (mean/std over runs) by BatchResult.aggregate.
_AGGREGATE_KEYS = (
    "cut_fraction",
    "max_radius",
    "num_pieces",
    "rounds",
    "wall_time_s",
)


@dataclass(frozen=True, eq=False)
class BatchResult:
    """All runs of one :func:`decompose_many` call plus their aggregate."""

    runs: tuple[BatchRun, ...]
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def results(self) -> list[PartitionResult]:
        """The per-run :class:`PartitionResult` objects, in task order."""
        return [run.result for run in self.runs]

    def summaries(self) -> list[dict[str, float | str]]:
        """Per-run summary dicts, in task order (stable across executors).

        Cached: each summary scans the run's whole graph (piece sizes,
        radii, cuts), and ``values``/``aggregate`` consumers ask repeatedly.
        """
        if "summaries" not in self._cache:
            self._cache["summaries"] = [run.summary() for run in self.runs]
        return self._cache["summaries"]

    def values(self, key: str) -> np.ndarray:
        """One summary statistic across all runs, as a float array."""
        return np.asarray(
            [float(s[key]) for s in self.summaries()], dtype=np.float64
        )

    def aggregate(self) -> dict[str, float]:
        """Mean/std (population) of the headline statistics over all runs."""
        out: dict[str, float] = {"num_runs": float(len(self.runs))}
        for key in _AGGREGATE_KEYS:
            vals = self.values(key)
            out[f"{key}_mean"] = float(vals.mean())
            out[f"{key}_std"] = float(vals.std())
        return out


def _normalise_seeds(seeds: int | Iterable[int]) -> list[int]:
    if isinstance(seeds, (int, np.integer)):
        if seeds <= 0:
            raise ParameterError(f"need at least one seed, got {seeds}")
        return list(range(int(seeds)))
    out = [int(s) for s in seeds]
    if not out:
        raise ParameterError("need at least one seed")
    return out


def _normalise_graphs(graphs) -> list[CSRGraph]:
    if isinstance(graphs, CSRGraph):
        return [graphs]
    out = list(graphs)
    if not out:
        raise ParameterError("need at least one graph")
    for g in out:
        graph_kind(g)  # raises on non-graph entries
    return out


# Worker-process state for the batch pool: the task payload (graphs
# included) is shipped once per worker through the initializer instead of
# once per task through every submit.
_WORKER_STATE: dict[str, object] = {}


def _init_batch_worker(graphs, beta, method, validate, options) -> None:
    _WORKER_STATE["batch"] = (graphs, beta, method, validate, options)


def _run_batch_task(task: tuple[int, int]) -> PartitionResult:
    graph_index, seed = task
    graphs, beta, method, validate, options = _WORKER_STATE["batch"]
    return decompose(
        graphs[graph_index],
        beta,
        method=method,
        seed=seed,
        validate=validate,
        **options,
    )


def decompose_many(
    graphs: CSRGraph | Sequence[CSRGraph],
    beta: float,
    *,
    method: str = "auto",
    seeds: int | Iterable[int] = 8,
    validate: bool = False,
    executor: str = "auto",
    max_workers: int | None = None,
    **options: object,
) -> BatchResult:
    """Fan ``decompose`` out over seeds × graphs and aggregate the results.

    Parameters
    ----------
    graphs:
        One graph or a sequence of graphs; every (graph, seed) pair becomes
        one run, ordered graph-major then seed.
    beta, method, validate, **options:
        As for :func:`decompose`, shared by every run.  ``method="auto"``
        resolves per graph, so mixed weighted/unweighted batches work.
    seeds:
        An integer ``k`` (runs seeds ``0..k−1``) or an explicit iterable of
        integer seeds.  Integer seeds are required — they are what makes the
        pooled execution reproducible and identical to the serial one.
    executor:
        ``"shared"`` (persistent worker pool attached to shared-memory
        resident graphs — the :mod:`repro.runtime` batch runtime),
        ``"process"`` (legacy pool shipping graphs once per worker through
        pickle), ``"serial"`` (in-process loop), or ``"auto"`` (the shared
        runtime when more than one worker and more than one run are
        available, serial otherwise).
    max_workers:
        Concurrency bound for the pool; defaults to ``min(num runs, CPU
        count)``.

    Returns
    -------
    BatchResult
        Per-run results in task order plus mean/std aggregates.  Task order
        — hence every per-seed summary — is independent of the executor,
        and per-seed results are bit-identical across all of them.
    """
    graph_list = _normalise_graphs(graphs)
    seed_list = _normalise_seeds(seeds)
    if executor not in ("auto", "process", "serial", "shared"):
        raise ParameterError(
            f"unknown executor {executor!r}; "
            "choices: ['auto', 'process', 'serial', 'shared']"
        )
    # Validate the configuration once, up front: a bad method/option fails
    # here with the registry's message instead of inside N pool workers.
    for graph in graph_list:
        _resolve(graph, method).bind(options)
    tasks = [
        (graph_index, seed)
        for graph_index in range(len(graph_list))
        for seed in seed_list
    ]

    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    workers = max(1, min(int(workers), len(tasks)))

    results: list[PartitionResult] | None = None
    if executor == "process":
        results = _run_pool(
            graph_list, beta, method, validate, options, tasks, workers,
            strict=True,
        )
    elif executor == "shared" or (executor == "auto" and workers > 1):
        results = _run_shared(
            graph_list, beta, method, validate, options, tasks, workers,
            strict=executor == "shared",
        )
        if results is None:
            # auto degrades gracefully: no shared memory (tiny /dev/shm,
            # say) does not mean no parallelism — the pickling pool may
            # still work; only if that fails too does the batch go serial.
            results = _run_pool(
                graph_list, beta, method, validate, options, tasks,
                workers, strict=False,
            )
    if results is None:
        results = [
            _run_serial_task(
                graph_list, beta, method, validate, options, task
            )
            for task in tasks
        ]
    runs = tuple(
        BatchRun(graph_index=gi, seed=seed, result=result)
        for (gi, seed), result in zip(tasks, results)
    )
    return BatchResult(runs=runs)


def _run_serial_task(
    graphs, beta, method, validate, options, task
) -> PartitionResult:
    graph_index, seed = task
    return decompose(
        graphs[graph_index],
        beta,
        method=method,
        seed=seed,
        validate=validate,
        **options,
    )


def _run_pool(
    graphs, beta, method, validate, options, tasks, workers, *, strict
) -> list[PartitionResult] | None:
    """Run the batch on a process pool; ``None`` means "fall back to serial".

    Pool-infrastructure failures (a sandbox that forbids subprocesses, a
    worker killed by the OS) fall back when ``strict`` is false; exceptions
    raised by the runs themselves always propagate.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_batch_worker,
            initargs=(graphs, beta, method, validate, options),
        ) as pool:
            return list(pool.map(_run_batch_task, tasks))
    except (BrokenProcessPool, OSError, PermissionError) as exc:
        if strict:
            raise
        warnings.warn(
            f"process pool unavailable ({exc!r}); running the batch "
            "serially",
            RuntimeWarning,
            stacklevel=3,
        )
        return None


def _run_shared(
    graphs, beta, method, validate, options, tasks, workers, *, strict
) -> list[PartitionResult] | None:
    """Run the batch on the shared-memory runtime (``None`` = fall back).

    Routes through :class:`repro.runtime.pool.DecompositionPool`: graphs go
    into shared memory once, workers attach once, and each task crosses the
    process boundary as a tiny request.  Infrastructure failures (no
    ``/dev/shm``, a sandbox forbidding subprocesses, a worker killed by the
    OS) return ``None`` when ``strict`` is false — the ``auto`` caller then
    tries the pickling pool before degrading to serial — while exceptions
    raised by the runs themselves always propagate.
    """
    from concurrent.futures.process import BrokenProcessPool

    # Imported lazily: the engine is the runtime's dependency, not the
    # other way round (repro.runtime.pool imports decompose from here).
    from repro.runtime.pool import DecompositionPool, DecompositionRequest

    try:
        # Sequence inputs get the pool's own str(index) keys.
        with DecompositionPool(graphs, max_workers=workers) as pool:
            return pool.run(
                DecompositionRequest(
                    graph_key=str(graph_index),
                    beta=beta,
                    method=method,
                    seed=seed,
                    validate=validate,
                    options=options,
                )
                for graph_index, seed in tasks
            )
    except (BrokenProcessPool, OSError, PermissionError) as exc:
        if strict:
            raise
        warnings.warn(
            f"shared-memory runtime unavailable ({exc!r}); falling back "
            "to the pickling process pool",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
