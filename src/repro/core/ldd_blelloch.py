"""Emulation of the Blelloch et al. [9] parallel decomposition (baseline).

The predecessor algorithm the paper improves on.  Its structure, per the
paper's Section 2/3 description: run ``O(log n)`` *iterations*; iteration
``i`` samples a geometrically growing set of centers from the still-
unassigned vertices, grows their balls simultaneously (with uniform random
shifts resolving the small overlaps), carves off what they claim, and
recurses on the remainder.  The final iteration promotes every remaining
vertex to a center.

This module is an emulation faithful to that *shape* — batched center
growth, uniform shifts, geometric batch growth — rather than a line-by-line
port (the original interleaves the decomposition with its tree-embedding
pipeline).  DESIGN.md §5 records it as a substitution.  What the benchmarks
compare is exactly what the paper argues about:

- quality (cut fraction, piece radii) is comparable to Algorithm 1, but
- the round/depth cost carries an extra ``O(log n)`` factor from the
  iteration loop, and the work carries the repeated frontier restarts.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bfs.delayed import delayed_multisource_bfs
from repro.core.decomposition import Decomposition, PartitionTrace
from repro.core.registry import KERNEL_OPTION, OptionSpec, register_method
from repro.errors import GraphError
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph
from repro.graphs.ops import induced_subgraph
from repro.rng.exponential import validate_beta
from repro.rng.seeding import SeedLike, make_generator

__all__ = ["partition_blelloch"]


@register_method(
    "blelloch",
    kind="unweighted",
    description="baseline - Blelloch et al. [9] iterative batched centers",
    options=(
        OptionSpec(
            "shift_range_constant",
            "float",
            1.0,
            "scale c of the uniform shift range R = c * ln(n) / beta",
        ),
        KERNEL_OPTION,
    ),
)
def partition_blelloch(
    graph: CSRGraph,
    beta: float,
    *,
    seed: SeedLike = None,
    shift_range_constant: float = 1.0,
) -> tuple[Decomposition, PartitionTrace]:
    """Iterative batched-center decomposition in the style of [9].

    ``shift_range_constant`` scales the uniform shift range
    ``R = c · ln(n) / β`` that both smears ball start times within an
    iteration and caps the per-iteration radius.
    """
    beta = validate_beta(beta)
    n = graph.num_vertices
    if n == 0:
        raise GraphError("cannot partition the empty graph")
    t0 = time.perf_counter()
    rng = make_generator(seed)
    shift_range = max(1.0, shift_range_constant * np.log(max(n, 2)) / beta)

    center = np.full(n, -1, dtype=np.int64)
    hops = np.zeros(n, dtype=np.int64)
    remaining = np.arange(n, dtype=VERTEX_DTYPE)
    total_work = 0
    total_rounds = 0
    iterations = 0
    max_iter = int(np.ceil(np.log2(max(n, 2)))) + 1

    while remaining.size:
        iterations += 1
        sub = induced_subgraph(graph, remaining)
        sub_n = sub.graph.num_vertices
        # Geometric batch growth: iteration i samples each remaining vertex
        # with probability 2^i / n (the final iteration takes everyone).
        p = min(1.0, (2.0**iterations) / max(n, 1))
        if iterations >= max_iter:
            p = 1.0
        picked_mask = rng.random(sub_n) < p
        if not picked_mask.any():
            continue
        # Uniform shifts inside [0, R): a sampled center with shift δ wakes
        # at R − δ — same delayed-start machinery, but with the uniform
        # distribution [9] used instead of the exponential.
        shifts = rng.random(sub_n) * shift_range
        start_time = shift_range - shifts
        result = delayed_multisource_bfs(
            sub.graph,
            start_time,
            center_mask=picked_mask,
            max_round=int(np.floor(shift_range)) + 1,
        )
        # Each iteration pays for extracting and touching the whole
        # remaining subgraph, not only the arcs its balls traverse — that
        # restart cost is exactly the O(m·iterations) overhead the single-
        # BFS algorithm removes.
        total_work += result.work + sub.graph.num_arcs + sub_n
        total_rounds += result.num_rounds
        claimed_local = np.flatnonzero(result.center != -1)
        if claimed_local.size == 0:
            continue
        glob = sub.original_ids
        center[glob[claimed_local]] = glob[result.center[claimed_local]]
        hops[glob[claimed_local]] = result.hops[claimed_local]
        keep = np.ones(sub_n, dtype=bool)
        keep[claimed_local] = False
        remaining = glob[np.flatnonzero(keep)]

    trace = PartitionTrace(
        method="blelloch-iterative",
        beta=beta,
        rounds=total_rounds,
        work=total_work,
        depth=total_rounds,
        delta_max=float(shift_range),
        wall_time_s=time.perf_counter() - t0,
        extra={"iterations": iterations, "shift_range": float(shift_range)},
    )
    return Decomposition(graph=graph, center=center, hops=hops), trace
