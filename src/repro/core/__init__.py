"""The paper's contribution: exponentially shifted graph decompositions."""

from repro.core.decomposition import Decomposition, PartitionTrace
from repro.core.engine import (
    BatchResult,
    BatchRun,
    PartitionResult,
    decompose,
    decompose_many,
)
from repro.core.ldd_bfs import partition_bfs, partition_bfs_with_shifts
from repro.core.ldd_blelloch import partition_blelloch
from repro.core.ldd_exact import partition_exact, partition_exact_with_shifts
from repro.core.ldd_sequential import partition_sequential
from repro.core.ldd_uniform import partition_uniform
from repro.core.partition import partition
from repro.core.registry import (
    PARTITION_METHODS,
    MethodSpec,
    OptionSpec,
    get_method,
    iter_methods,
    method_names,
    register_method,
)
from repro.core.shifts import ShiftAssignment, sample_shifts, shifts_from_values
from repro.core.theory import (
    blockdecomp_iteration_bound,
    cut_probability_bound,
    diameter_bound,
    expected_cut_edges_bound,
    expected_delta_max,
    failure_probability,
    theorem12_depth_bound,
    theorem12_work_bound,
    whp_radius_bound,
)
from repro.core.verify import (
    VerificationReport,
    strong_diameters,
    verify_decomposition,
)
from repro.core.weighted import WeightedDecomposition, partition_weighted

__all__ = [
    "Decomposition",
    "PartitionTrace",
    "PartitionResult",
    "PARTITION_METHODS",
    "BatchResult",
    "BatchRun",
    "MethodSpec",
    "OptionSpec",
    "decompose",
    "decompose_many",
    "get_method",
    "iter_methods",
    "method_names",
    "register_method",
    "partition",
    "partition_bfs",
    "partition_bfs_with_shifts",
    "partition_exact",
    "partition_exact_with_shifts",
    "partition_sequential",
    "partition_blelloch",
    "partition_uniform",
    "partition_weighted",
    "WeightedDecomposition",
    "ShiftAssignment",
    "sample_shifts",
    "shifts_from_values",
    "VerificationReport",
    "strong_diameters",
    "verify_decomposition",
    "blockdecomp_iteration_bound",
    "cut_probability_bound",
    "diameter_bound",
    "expected_cut_edges_bound",
    "expected_delta_max",
    "failure_probability",
    "theorem12_depth_bound",
    "theorem12_work_bound",
    "whp_radius_bound",
]
