"""Algorithm 1 — the parallel partition via exponentially shifted BFS.

This is the paper's headline algorithm:

1. each vertex draws ``δ_u ~ Exp(β)`` *(parallel: work n, depth 1)*;
2. ``δ_max`` is a max-reduction *(work n, depth log n)*;
3. one delayed-start BFS assigns every vertex to the center minimising the
   shifted distance *(work O(m), depth ∆ rounds with ∆ ≤ δ_max + max hop)*;
4. the assignment is read off per vertex *(work n, depth 1)*.

The modelled PRAM depth charged per BFS round is ``O(log n)`` — the round's
claim resolution is a semisort/priority-write, which [18]'s randomized
parallel BFS performs in logarithmic depth.  Theorem 1.2's
``O(log² n / β)``-depth claim is exactly ``∆ · O(log n)`` with
``∆ = O(log n / β)`` w.h.p., and those are the numbers the trace records.
"""

from __future__ import annotations

import time

import numpy as np

import repro.telemetry as telemetry
from repro.bfs.delayed import delayed_multisource_bfs
from repro.bfs.kernels import resolve_kernel
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace
from repro.core.decomposition import Decomposition, PartitionTrace
from repro.core.registry import KERNEL_OPTION, OptionSpec, register_method
from repro.core.shifts import ShiftAssignment, sample_shifts
from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.pram.cost_model import WorkDepthCounter
from repro.pram.primitives import log2_ceil
from repro.rng.seeding import SeedLike

__all__ = ["partition_bfs", "partition_bfs_with_shifts"]

_TIE_BREAKS = ("fractional", "permutation", "quantile")


@register_method(
    "bfs",
    kind="unweighted",
    description="Algorithm 1 - exponentially shifted BFS (the paper's algorithm)",
    options=(
        OptionSpec(
            "tie_break",
            "str",
            "fractional",
            "round tie resolution: shift fractions, an explicit random "
            "permutation, or permutation-position quantile shifts",
            choices=_TIE_BREAKS,
        ),
        KERNEL_OPTION,
    ),
)
def partition_bfs(
    graph: CSRGraph,
    beta: float,
    *,
    seed: SeedLike = None,
    tie_break: str = "fractional",
) -> tuple[Decomposition, PartitionTrace]:
    """Run Algorithm 1 on ``graph`` with parameter ``β``.

    ``tie_break`` selects the Section 5 variant: ``"fractional"`` (the shift
    fractions, default) or ``"permutation"`` (an explicit random permutation).

    Returns the decomposition together with a :class:`PartitionTrace`
    recording the work/depth/round counts Theorem 1.2 bounds.
    """
    if graph.num_vertices == 0:
        raise GraphError("cannot partition the empty graph")
    timed = telemetry.enabled()
    t0 = time.perf_counter() if timed else 0.0
    with _trace.span(
        "bfs.shifts", vertices=graph.num_vertices, beta=beta
    ):
        shifts = sample_shifts(
            graph.num_vertices, beta, seed=seed, mode=tie_break
        )
    shifts_s = (time.perf_counter() - t0) if timed else 0.0
    decomposition, trace = partition_bfs_with_shifts(graph, shifts)
    if timed:
        _metrics.observe(
            "repro_bfs_phase_seconds", shifts_s, phase="shifts"
        )
        phases = dict(trace.extra.get("phases", ()))
        phases["shifts"] = shifts_s
        trace.extra["phases"] = phases
    return decomposition, trace


def partition_bfs_with_shifts(
    graph: CSRGraph,
    shifts: ShiftAssignment,
) -> tuple[Decomposition, PartitionTrace]:
    """Run Algorithm 1 with externally supplied shifts.

    Separated from the sampling so that the exact (Dijkstra) implementation
    and this one can be run on *identical* randomness — the equivalence the
    test suite asserts — and so ablations can substitute other shift
    distributions.
    """
    if shifts.num_vertices != graph.num_vertices:
        raise GraphError("shift vector length must equal the vertex count")
    t0 = time.perf_counter()
    n = graph.num_vertices
    counter = WorkDepthCounter()
    # Steps 1-2 of Algorithm 1: per-vertex sampling and the max-reduction.
    counter.charge(n, 1, label="sample-shifts")
    counter.charge(n, log2_ceil(n), label="delta-max-reduction")

    with _trace.span("bfs.expand", vertices=n) as expand_span:
        result = delayed_multisource_bfs(
            graph,
            shifts.start_time,
            tie_key=shifts.tie_key,
        )
        expand_span.annotate(
            rounds=result.num_rounds,
            active_rounds=result.active_rounds,
            work=result.work,
        )
    # Step 3: each active BFS round is a gather + semisort resolution,
    # O(log n) modelled depth per round ([18]); idle rounds are free.
    counter.charge(result.work, result.active_rounds * log2_ceil(n), label="bfs")
    # Step 4: reading the assignment is one parallel map.
    counter.charge(n, 1, label="assign")

    decomposition = Decomposition(
        graph=graph, center=result.center, hops=result.hops
    )
    extra_phases = {}
    if result.phase_seconds:
        # Deep instrumentation was on: surface the measured per-phase
        # times as live histograms and carry them in the trace so the
        # serving layer can observe them in its own process too.  The
        # paper's quantities — rounds, work, depth — are NOT re-observed
        # here: they already live on every PartitionTrace, and the serve
        # layer folds them into per-method histograms from the trace
        # (DecompositionServer._observe_trace), keeping this hot path at
        # two histogram updates.
        extra_phases = {
            "phases": {
                "gather": result.phase_seconds.get("gather", 0.0),
                "resolve": result.phase_seconds.get("resolve", 0.0),
            }
        }
        for phase, seconds in extra_phases["phases"].items():
            _metrics.observe(
                "repro_bfs_phase_seconds", seconds, phase=phase
            )
    trace = PartitionTrace(
        method=f"bfs-{shifts.mode}",
        beta=shifts.beta,
        rounds=result.num_rounds,
        work=counter.work,
        depth=counter.depth,
        delta_max=shifts.delta_max,
        wall_time_s=time.perf_counter() - t0,
        frontier_sizes=tuple(result.frontier_sizes),
        extra={
            "active_rounds": result.active_rounds,
            "bfs_work": result.work,
            "kernel": resolve_kernel(None),
            "breakdown": {
                k: (v.work, v.depth) for k, v in counter.breakdown.items()
            },
            **extra_phases,
        },
    )
    return decomposition, trace


# Section 5 variants are Algorithm 1 with the tie-break pinned; they are
# published as standalone method names so sweeps can select them uniformly.
register_method(
    "permutation",
    kind="unweighted",
    description="Section 5 variant - random-permutation tie-breaks",
    options=(KERNEL_OPTION,),
    pinned={"tie_break": "permutation"},
    func=partition_bfs,
)
register_method(
    "quantile",
    kind="unweighted",
    description="Section 5 variant - shifts from permutation positions",
    options=(KERNEL_OPTION,),
    pinned={"tie_break": "quantile"},
    func=partition_bfs,
)
