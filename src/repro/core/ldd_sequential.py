"""Sequential ball-growing — the classical LDD baseline (paper §1).

The textbook decomposition the paper's introduction describes: start a ball
at an unassigned vertex and expand it level by level until the boundary is a
``β``-fraction of the interior, carve the ball off, repeat.  Each stop
condition fires within ``O(log m / β)`` levels (the interior edge count grows
by a ``(1+β)`` factor per expanded level), giving the diameter bound; the
stop condition itself gives the cut bound.

The point of carrying this baseline is the *dependency chain*: ball ``i+1``
cannot start before ball ``i`` finishes, so the chain length is the sum of
all ball radii — Ω(n) on a path — which is precisely the sequential
bottleneck Theorem 1.2 removes.  The trace reports it as
``sequential_chain``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.decomposition import Decomposition, PartitionTrace
from repro.core.registry import KERNEL_OPTION, OptionSpec, register_method
from repro.errors import GraphError
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph
from repro.bfs.frontier import gather_frontier_arcs
from repro.rng.exponential import validate_beta
from repro.rng.seeding import SeedLike, make_generator

__all__ = ["partition_sequential"]


@register_method(
    "sequential",
    kind="unweighted",
    description="baseline - classical sequential ball growing",
    options=(
        OptionSpec(
            "randomize_starts",
            "bool",
            True,
            "grow balls from a random vertex order instead of ascending ids",
        ),
        KERNEL_OPTION,
    ),
)
def partition_sequential(
    graph: CSRGraph,
    beta: float,
    *,
    seed: SeedLike = None,
    randomize_starts: bool = True,
) -> tuple[Decomposition, PartitionTrace]:
    """Classical sequential ball-growing decomposition.

    Ball centers are chosen in a random order (or ascending vertex id if
    ``randomize_starts`` is false).  Growth stops at the first radius where
    ``boundary ≤ β · (interior + 1)``: ``interior`` counts edges with both
    endpoints inside the ball, ``boundary`` counts edges from the ball to the
    *unassigned remainder* (edges to earlier pieces are those pieces' cut
    edges and are not re-counted).
    """
    beta = validate_beta(beta)
    n = graph.num_vertices
    if n == 0:
        raise GraphError("cannot partition the empty graph")
    t0 = time.perf_counter()
    rng = make_generator(seed)
    order = (
        rng.permutation(n).astype(VERTEX_DTYPE)
        if randomize_starts
        else np.arange(n, dtype=VERTEX_DTYPE)
    )
    center = np.full(n, -1, dtype=np.int64)
    hops = np.zeros(n, dtype=np.int64)
    chain = 0
    num_balls = 0
    for start in order:
        start = int(start)
        if center[start] != -1:
            continue
        num_balls += 1
        radius = _grow_ball(graph, start, beta, center, hops)
        chain += radius + 1
    # Every vertex sits in exactly one frontier of its ball, so each arc is
    # gathered exactly once across the whole run: total work is 2m exactly.
    work = int(graph.num_arcs)
    trace = PartitionTrace(
        method="sequential-ball-growing",
        beta=beta,
        rounds=chain,
        work=work,
        depth=chain,
        delta_max=float("nan"),
        wall_time_s=time.perf_counter() - t0,
        sequential_chain=chain,
        extra={"num_balls": num_balls},
    )
    return Decomposition(graph=graph, center=center, hops=hops), trace


def _grow_ball(
    graph: CSRGraph,
    start: int,
    beta: float,
    center: np.ndarray,
    hops: np.ndarray,
) -> int:
    """Grow one ball from ``start`` over unassigned vertices; claim members.

    Returns the final radius.  Levels are expanded with the vectorised
    frontier gather; membership and statistics are updated incrementally so
    the total cost over all balls stays O(m).
    """
    center[start] = start
    hops[start] = 0
    frontier = np.asarray([start], dtype=VERTEX_DTYPE)
    interior = 0  # edges with both endpoints claimed by this ball
    radius = 0
    while True:
        arc_src, arc_dst = gather_frontier_arcs(graph, frontier)
        # Arcs from the frontier into the ball (including frontier-frontier)
        # close interior edges; arcs to unassigned vertices are boundary.
        into_ball = center[arc_dst] == start
        boundary_mask = center[arc_dst] == -1
        # Each interior edge is seen once from its later-claimed endpoint's
        # frontier arcs (frontier->ball arcs), or twice when both endpoints
        # are in the current frontier — correct for the double count.
        ff = into_ball & (hops[arc_dst] == radius)
        interior += int(into_ball.sum()) - int(ff.sum() // 2)
        cand = np.unique(arc_dst[boundary_mask])
        boundary = int(boundary_mask.sum())
        if boundary <= beta * (interior + 1) or cand.size == 0:
            return radius
        radius += 1
        center[cand] = start
        hops[cand] = radius
        frontier = cand.astype(VERTEX_DTYPE)
