"""Section 6 extension: shifted decomposition of weighted graphs.

The paper's concluding section notes the Section 4 analysis "can be readily
extended to the weighted case" — assignment by ``dist_w(u, v) − δ_u`` with
the same exponential shifts — while the *parallel depth* is no longer
controlled, because hop count and weighted distance decouple.  This module
implements that extension with a shifted multi-source Dijkstra:

- the cut probability of an edge of weight ``w`` becomes ``O(β·w)``
  (Lemma 4.4 with ``c = w``), so the expected *weighted* cut is ``O(β · W)``
  where ``W`` is the total edge weight — benchmark ``bench_weighted`` checks
  this shape;
- piece radii are bounded by ``δ_max`` in weighted distance (same Lemma 4.2
  argument).

The trace reports heap operations as work and the settled-order length as
the (uncontrolled) sequential depth, matching the paper's caveat.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bfs.dijkstra import dijkstra_multisource
from repro.core.decomposition import PartitionTrace
from repro.core.registry import register_method
from repro.core.shifts import sample_shifts
from repro.errors import GraphError
from repro.graphs.weighted import WeightedCSRGraph
from repro.rng.seeding import SeedLike

__all__ = ["WeightedDecomposition", "partition_weighted"]


@dataclass(frozen=True, eq=False)
class WeightedDecomposition:
    """Weighted analogue of :class:`~repro.core.decomposition.Decomposition`.

    ``radius`` holds each vertex's weighted distance to its center (the
    integer ``hops`` of the unweighted type is meaningless here).
    """

    graph: WeightedCSRGraph
    center: np.ndarray
    radius: np.ndarray
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def labels(self) -> np.ndarray:
        if "labels" not in self._cache:
            centers = np.unique(self.center)
            lookup = np.full(self.graph.num_vertices, -1, dtype=np.int64)
            lookup[centers] = np.arange(centers.shape[0], dtype=np.int64)
            self._cache["labels"] = lookup[self.center]
        return self._cache["labels"]

    @property
    def num_pieces(self) -> int:
        return int(np.unique(self.center).shape[0])

    def max_radius(self) -> float:
        """Largest weighted distance from any vertex to its center."""
        return float(self.radius.max()) if self.radius.size else 0.0

    def _cut_stats(self) -> tuple[int, float]:
        """(cut edge count, cut weight), computed in one edge scan."""
        if "cut_stats" not in self._cache:
            labels = self.labels
            edges = self.graph.edge_array()
            w = self.graph.edge_weight_array()
            cross = labels[edges[:, 0]] != labels[edges[:, 1]]
            self._cache["cut_stats"] = (
                int(cross.sum()), float(w[cross].sum())
            )
        return self._cache["cut_stats"]

    def cut_weight(self) -> float:
        """Total weight of edges crossing between pieces."""
        return self._cut_stats()[1]

    def cut_weight_fraction(self) -> float:
        """Cut weight over total weight — the weighted β measure."""
        total = self.graph.total_weight()
        return self.cut_weight() / total if total else 0.0

    def num_cut_edges(self) -> int:
        return self._cut_stats()[0]

    def piece_sizes(self) -> np.ndarray:
        """Vertex count per piece, aligned with sorted distinct centers."""
        return np.bincount(self.labels, minlength=self.num_pieces)

    def piece_members(self, label: int) -> np.ndarray:
        """Vertex ids belonging to piece ``label``."""
        return np.flatnonzero(self.labels == label)

    def radii(self) -> np.ndarray:
        """Max weighted distance to the center, per piece."""
        out = np.zeros(self.num_pieces, dtype=np.float64)
        np.maximum.at(out, self.labels, self.radius)
        return out

    def summary(self) -> dict[str, float]:
        """One-line statistics dict, mirroring ``Decomposition.summary``.

        ``cut_fraction`` is the *weighted* measure (cut weight over total
        weight — the β of the Section 6 analysis); the raw edge-count
        fraction is reported separately as ``cut_edge_fraction``.
        """
        sizes = self.piece_sizes()
        radii = self.radii()
        m = self.graph.num_edges
        return {
            "num_pieces": float(self.num_pieces),
            "max_piece_size": float(sizes.max()) if sizes.size else 0.0,
            "mean_piece_size": float(sizes.mean()) if sizes.size else 0.0,
            "max_radius": float(radii.max()) if radii.size else 0.0,
            "mean_radius": float(radii.mean()) if radii.size else 0.0,
            "num_cut_edges": float(self.num_cut_edges()),
            "cut_fraction": float(self.cut_weight_fraction()),
            "cut_weight": float(self.cut_weight()),
            "cut_edge_fraction": float(self.num_cut_edges() / m) if m else 0.0,
        }


@register_method(
    "dijkstra",
    kind="weighted",
    description="Section 6 extension - shifted multi-source Dijkstra (weighted graphs)",
)
def partition_weighted(
    graph: WeightedCSRGraph,
    beta: float,
    *,
    seed: SeedLike = None,
) -> tuple[WeightedDecomposition, PartitionTrace]:
    """Exponentially shifted decomposition of a positively weighted graph.

    Every vertex is a potential center with start priority ``δ_max − δ_u``;
    one multi-source Dijkstra assigns each vertex to the center of minimum
    shifted weighted distance.
    """
    n = graph.num_vertices
    if n == 0:
        raise GraphError("cannot partition the empty graph")
    t0 = time.perf_counter()
    shifts = sample_shifts(n, beta, seed=seed)
    sources = np.arange(n, dtype=np.int64)
    result = dijkstra_multisource(
        graph, sources, init_dist=shifts.start_time
    )
    radius = result.dist - shifts.start_time[result.source]
    decomposition = WeightedDecomposition(
        graph=graph, center=result.source, radius=radius
    )
    trace = PartitionTrace(
        method="weighted-dijkstra",
        beta=beta,
        rounds=0,
        work=result.work,
        depth=result.work,
        delta_max=shifts.delta_max,
        wall_time_s=time.perf_counter() - t0,
        sequential_chain=result.work,
        extra={"note": "weighted depth uncontrolled (paper Section 6)"},
    )
    return decomposition, trace
