"""Decomposition verification — executable versions of the paper's claims.

Two kinds of checks:

- **Deterministic invariants** (violations raise
  :class:`~repro.errors.VerificationError`): the assignment is a total
  partition; every piece is connected *as an induced subgraph*; the recorded
  hop distances equal true in-piece BFS distances from the center
  (Lemma 4.1's prefix-closure in executable form).
- **Probabilistic guarantees** (reported, never raised): piece radii vs the
  ``δ_max`` certificate and the ``O(log n / β)`` bound; cut fraction vs the
  ``O(β)`` bound.  Theorem 1.2 holds with constant probability per run, so a
  report-level comparison is the honest check.

``verify_decomposition`` with default arguments performs the deterministic
checks and returns a :class:`VerificationReport` carrying everything.

Weighted decompositions (:class:`~repro.core.weighted.WeightedDecomposition`,
produced by the ``dijkstra`` method) route through the same entry point:
partition totality and per-piece connectivity are checked on the topology,
radii/cuts are measured in weighted distance, and the unweighted-only hop
invariant (Lemma 4.1 is a statement about BFS levels) is skipped —
``hops_consistent`` is reported vacuously true and ``report.weighted`` is
set so consumers can tell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.sequential import multi_source_bfs
from repro.core.decomposition import Decomposition
from repro.core.weighted import WeightedDecomposition
from repro.errors import VerificationError
from repro.graphs.ops import induced_subgraph

__all__ = ["VerificationReport", "verify_decomposition", "strong_diameters"]


@dataclass(frozen=True)
class VerificationReport:
    """Everything the checks measured.

    ``max_strong_diameter`` is exact when ``exact_diameters`` was requested,
    otherwise the eccentricity-based 2-approximation certificate
    (``diameter ≤ 2 · max radius``).
    """

    num_pieces: int
    is_partition: bool
    pieces_connected: bool
    hops_consistent: bool
    max_radius: int | float
    max_strong_diameter: int | float
    diameters_exact: bool
    num_cut_edges: int
    cut_fraction: float
    delta_max: float | None
    radius_within_certificate: bool | None
    #: True when the checked decomposition was weighted: radii and cut
    #: fraction are in weighted distance/weight, and ``hops_consistent`` is
    #: vacuous (the hop invariant is an unweighted-only statement).
    weighted: bool = False

    def all_invariants_hold(self) -> bool:
        """True when every deterministic invariant passed."""
        return self.is_partition and self.pieces_connected and self.hops_consistent


def strong_diameters(
    decomposition: Decomposition, *, exact: bool = False
) -> np.ndarray:
    """Per-piece strong diameter.

    With ``exact=False`` returns each piece's center eccentricity measured
    inside the piece (radius; the strong diameter lies in ``[r, 2r]``).
    With ``exact=True`` runs a BFS from every vertex of each piece inside
    the induced subgraph — O(Σ piece_size · piece_edges), fine for the test
    and benchmark sizes.
    """
    graph = decomposition.graph
    out = np.zeros(decomposition.num_pieces, dtype=np.int64)
    for label in range(decomposition.num_pieces):
        members = decomposition.piece_members(label)
        sub = induced_subgraph(graph, members)
        center_local = sub.new_ids[decomposition.centers[label]]
        res = multi_source_bfs(sub.graph, np.asarray([center_local]))
        if np.any(res.dist < 0):
            raise VerificationError(
                f"piece {label} is disconnected from its center"
            )
        if exact:
            diam = 0
            for v in range(sub.graph.num_vertices):
                dv = multi_source_bfs(sub.graph, np.asarray([v])).dist
                diam = max(diam, int(dv.max()))
            out[label] = diam
        else:
            out[label] = int(res.dist.max())
    return out


def verify_decomposition(
    decomposition: Decomposition | WeightedDecomposition,
    *,
    beta: float | None = None,
    delta_max: float | None = None,
    exact_diameters: bool = False,
    raise_on_violation: bool = True,
) -> VerificationReport:
    """Check a decomposition against Definition 1.1 and the paper's lemmas.

    Parameters
    ----------
    decomposition:
        The partition to check.  Weighted decompositions are accepted; the
        unweighted-only hop invariant is skipped for them (see the module
        docstring).
    beta, delta_max:
        Optional run parameters enabling the probabilistic comparisons
        (cut fraction vs β, radii vs the shift certificate).
    exact_diameters:
        Compute exact strong diameters (quadratic per piece) instead of the
        center-eccentricity certificate.  Ignored for weighted inputs.
    raise_on_violation:
        Raise :class:`VerificationError` on deterministic invariant failures
        (default); pass ``False`` to collect the report regardless.
    """
    if isinstance(decomposition, WeightedDecomposition):
        return _verify_weighted(
            decomposition,
            delta_max=delta_max,
            raise_on_violation=raise_on_violation,
        )
    graph = decomposition.graph
    n = graph.num_vertices
    labels = decomposition.labels
    center = decomposition.center
    hops = decomposition.hops

    is_partition = bool(
        labels.shape[0] == n and np.all(labels >= 0) and np.all(center >= 0)
    )

    pieces_connected = True
    hops_consistent = True
    max_diam = 0
    for label in range(decomposition.num_pieces):
        members = decomposition.piece_members(label)
        sub = induced_subgraph(graph, members)
        center_local = int(sub.new_ids[decomposition.centers[label]])
        res = multi_source_bfs(sub.graph, np.asarray([center_local]))
        if np.any(res.dist < 0):
            pieces_connected = False
            continue
        # Lemma 4.1, executable: the hop distance the algorithm recorded must
        # equal the true distance measured *inside* the piece.
        inside = res.dist
        recorded = hops[members]
        if not np.array_equal(inside, recorded):
            hops_consistent = False
        if exact_diameters:
            diam = 0
            for v in range(sub.graph.num_vertices):
                dv = multi_source_bfs(sub.graph, np.asarray([v])).dist
                diam = max(diam, int(dv.max()))
            max_diam = max(max_diam, diam)
        else:
            max_diam = max(max_diam, int(inside.max()))

    report = VerificationReport(
        num_pieces=decomposition.num_pieces,
        is_partition=is_partition,
        pieces_connected=pieces_connected,
        hops_consistent=hops_consistent,
        max_radius=decomposition.max_radius(),
        max_strong_diameter=max_diam,
        diameters_exact=exact_diameters,
        num_cut_edges=decomposition.num_cut_edges(),
        cut_fraction=decomposition.cut_fraction(),
        delta_max=delta_max,
        radius_within_certificate=(
            bool(decomposition.max_radius() <= delta_max)
            if delta_max is not None
            else None
        ),
    )
    if raise_on_violation and not report.all_invariants_hold():
        failing = [
            name
            for name, ok in (
                ("partition", report.is_partition),
                ("connectivity", report.pieces_connected),
                ("hop-consistency", report.hops_consistent),
            )
            if not ok
        ]
        raise VerificationError(
            f"decomposition violates deterministic invariants: {failing}"
        )
    return report


def _verify_weighted(
    decomposition: WeightedDecomposition,
    *,
    delta_max: float | None,
    raise_on_violation: bool,
) -> VerificationReport:
    """Weighted checks: totality, connectivity, weighted radii and cuts.

    Connectivity is a topology statement, so it reuses the unweighted BFS on
    each induced piece; radii and the ``δ_max`` certificate are compared in
    weighted distance.  The per-piece weighted eccentricity from the center
    is exactly ``radius``, so the reported strong-diameter certificate is
    the radius (the true strong diameter lies in ``[r, 2r]``).
    """
    graph = decomposition.graph
    n = graph.num_vertices
    labels = decomposition.labels
    center = decomposition.center

    is_partition = bool(
        labels.shape[0] == n and np.all(labels >= 0) and np.all(center >= 0)
    )

    pieces_connected = True
    for label in range(decomposition.num_pieces):
        members = np.flatnonzero(labels == label)
        sub = induced_subgraph(graph, members)
        center_local = int(sub.new_ids[center[members[0]]])
        res = multi_source_bfs(sub.graph, np.asarray([center_local]))
        if np.any(res.dist < 0):
            pieces_connected = False

    max_radius = decomposition.max_radius()
    report = VerificationReport(
        num_pieces=decomposition.num_pieces,
        is_partition=is_partition,
        pieces_connected=pieces_connected,
        hops_consistent=True,  # vacuous: no hop invariant for weighted runs
        max_radius=max_radius,
        max_strong_diameter=max_radius,
        diameters_exact=False,
        num_cut_edges=decomposition.num_cut_edges(),
        cut_fraction=decomposition.cut_weight_fraction(),
        delta_max=delta_max,
        radius_within_certificate=(
            bool(max_radius <= delta_max + 1e-9)
            if delta_max is not None
            else None
        ),
        weighted=True,
    )
    if raise_on_violation and not report.all_invariants_hold():
        failing = [
            name
            for name, ok in (
                ("partition", report.is_partition),
                ("connectivity", report.pieces_connected),
            )
            if not ok
        ]
        raise VerificationError(
            f"weighted decomposition violates deterministic invariants: "
            f"{failing}"
        )
    return report
