"""Closed-form theoretical quantities from the paper's analysis.

Benchmarks plot measurements against these functions; tests pin their
algebra.  Section/lemma references follow the paper.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.rng.order_stats import (
    expected_maximum,
    harmonic_number,
    high_probability_shift_bound,
)

__all__ = [
    "expected_delta_max",
    "whp_radius_bound",
    "failure_probability",
    "cut_probability_bound",
    "expected_cut_edges_bound",
    "diameter_bound",
    "theorem12_depth_bound",
    "theorem12_work_bound",
    "blockdecomp_iteration_bound",
]


def expected_delta_max(n: int, beta: float) -> float:
    """Lemma 4.2: ``E[δ_max] = H_n / β``."""
    return expected_maximum(n, beta)


def whp_radius_bound(n: int, beta: float, d: float = 1.0) -> float:
    """Lemma 4.2 tail: all shifts (hence all radii) are below
    ``(d+1)·ln n / β`` with probability at least ``1 − n^{−d}``."""
    return high_probability_shift_bound(n, beta, d)


def failure_probability(n: int, d: float) -> float:
    """The ``n^{−d}`` failure probability of the w.h.p. statements."""
    if n < 1:
        raise ParameterError("n must be >= 1")
    return float(n ** (-d))


def cut_probability_bound(beta: float, c: float = 1.0) -> float:
    """Lemma 4.4: ``Pr[gap ≤ c] ≤ 1 − exp(−βc) < βc``.

    With ``c = 1`` (edge length), this bounds the probability that an edge's
    midpoint sees two centers within distance 1 — the event of Lemma 4.3
    that is necessary for the edge to be cut (Corollary 4.5).
    """
    if beta <= 0 or c < 0:
        raise ParameterError("need beta > 0 and c >= 0")
    return float(-np.expm1(-beta * c))


def expected_cut_edges_bound(m: int, beta: float, c: float = 1.0) -> float:
    """Corollary 4.5: expected number of cut edges is at most
    ``m · (1 − exp(−βc)) ≤ βcm``."""
    if m < 0:
        raise ParameterError("m must be >= 0")
    return m * cut_probability_bound(beta, c)


def diameter_bound(n: int, beta: float, d: float = 1.0) -> float:
    """The *strong diameter* side of the ``(β, O(log n / β))`` guarantee.

    Piece radii are bounded by the shift certificate (Lemma 4.2), and the
    strong diameter by twice the radius: ``2·(d+1)·ln n / β`` w.h.p.
    """
    return 2.0 * whp_radius_bound(n, beta, d)


def theorem12_depth_bound(n: int, beta: float, *, constant: float = 1.0) -> float:
    """Theorem 1.2 depth: ``O(log² n / β)``.

    Structure: ``O(log n / β)`` BFS rounds (the radius bound), each costing
    ``O(log n)`` PRAM depth via the parallel BFS of [18].
    """
    if n < 2:
        return 0.0
    if beta <= 0:
        raise ParameterError("beta must be positive")
    return constant * (np.log(n) ** 2) / beta


def theorem12_work_bound(m: int, *, constant: float = 1.0) -> float:
    """Theorem 1.2 work: ``O(m)``."""
    if m < 0:
        raise ParameterError("m must be >= 0")
    return constant * m


def blockdecomp_iteration_bound(m: int) -> int:
    """Section 2: iterating a ``(1/2, O(log n))`` decomposition halves the
    inter-piece edges, so at most ``⌈log₂ m⌉ + 1`` iterations empty the
    graph."""
    if m <= 0:
        return 1
    return int(np.ceil(np.log2(m))) + 1


def harmonic(n: int) -> float:
    """Re-export of ``H_n`` for benchmark reporting convenience."""
    return harmonic_number(n)
