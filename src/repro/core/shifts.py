"""Exponential start-time shifts (steps 1–2 of Algorithm 1).

Each vertex draws ``δ_u ~ Exp(β)``; the BFS start time of ``u`` is
``start_u = δ_max − δ_u`` where ``δ_max = max_u δ_u``.  The vertex with the
largest shift starts at time 0; every other vertex starts later.  The
integer part of ``start_u`` schedules the waking round, the fractional part
is the tie-break key (Section 5).

:class:`ShiftAssignment` bundles the sampled values with everything derived
from them, so the BFS-based and exact implementations can consume *the same*
randomness — the precondition for the equivalence property tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.rng.exponential import sample_exponential, validate_beta
from repro.rng.permutation import permutation_keys
from repro.rng.seeding import SeedLike, make_generator

__all__ = ["ShiftAssignment", "sample_shifts", "shifts_from_values"]


@dataclass(frozen=True, eq=False)
class ShiftAssignment:
    """Shift values and their derived start-time decomposition.

    Attributes
    ----------
    beta:
        The decomposition parameter the shifts were drawn with.
    delta:
        ``δ_u`` per vertex.
    delta_max:
        ``max_u δ_u`` — the high-probability diameter certificate of
        Lemma 4.2 (no piece radius can exceed it).
    start_time:
        ``δ_max − δ_u ≥ 0`` per vertex.
    start_round:
        ``⌊start_time⌋`` — waking round per vertex.
    tie_key:
        Key used to compare equal integer rounds.  For fractional mode this
        is ``frac(start_time)``; for permutation mode (Section 5) it is
        ``rank(u)/n`` from a uniformly random permutation.
    mode:
        ``"fractional"``, ``"permutation"`` or ``"quantile"`` (see
        :func:`sample_shifts`).
    """

    beta: float
    delta: np.ndarray
    delta_max: float
    start_time: np.ndarray
    start_round: np.ndarray
    tie_key: np.ndarray
    mode: str

    @property
    def num_vertices(self) -> int:
        return int(self.delta.shape[0])

    def radius_certificate(self) -> float:
        """Upper bound on every piece's radius implied by these shifts.

        Any vertex ``v`` could claim itself at shifted distance ``−δ_v``, so
        its winning center satisfies ``dist(c, v) ≤ δ_c ≤ δ_max``
        (Theorem 1.2's proof).
        """
        return self.delta_max


def sample_shifts(
    num_vertices: int,
    beta: float,
    *,
    seed: SeedLike = None,
    mode: str = "fractional",
) -> ShiftAssignment:
    """Draw shifts for ``num_vertices`` vertices at parameter ``β``.

    Modes (the first is Algorithm 1 as stated; the others are the Section 5
    implementation variants):

    - ``"fractional"`` — i.i.d. ``Exp(β)`` shifts, fractional parts used as
      tie-breaks;
    - ``"permutation"`` — i.i.d. ``Exp(β)`` shifts, tie-breaks replaced by
      an independent uniformly random permutation;
    - ``"quantile"`` — §5's final suggestion: *"generate a random
      permutation of the vertices, and assign the shift values based on
      positions in the permutation."*  Vertex at permutation rank ``r``
      gets the deterministic exponential quantile
      ``F⁻¹((r + 1/2)/n) = −ln(1 − (r + 1/2)/n)/β`` — a stratified sample
      of ``Exp(β)`` needing only one permutation of randomness.  The paper
      conjectures the change "could be accounted for using a more intricate
      analysis, but might be more easily studied empirically"; benchmark
      ``ABL-quantile`` does exactly that.
    """
    beta = validate_beta(beta)
    if num_vertices <= 0:
        raise ParameterError("num_vertices must be positive")
    rng = make_generator(seed)
    if mode == "quantile":
        perm = rng.permutation(num_vertices)
        ranks = np.empty(num_vertices, dtype=np.float64)
        ranks[perm] = np.arange(num_vertices, dtype=np.float64)
        delta = -np.log1p(-(ranks + 0.5) / num_vertices) / beta
        # Quantile deltas are deterministic given the rank, so the shift
        # ordering *is* the permutation; fractional parts remain valid
        # tie-break keys and are distinct whenever the quantiles are.
        return _assemble(beta, delta, "fractional", rng, label="quantile")
    return _assemble(beta, delta=sample_exponential(beta, num_vertices, seed=rng), mode=mode, rng=rng)


def shifts_from_values(
    beta: float,
    delta: np.ndarray,
    *,
    mode: str = "fractional",
    seed: SeedLike = None,
) -> ShiftAssignment:
    """Build a :class:`ShiftAssignment` from externally supplied ``δ`` values.

    Used by tests (deterministic shift patterns) and by the ablation variants
    that substitute a different shift distribution into the same pipeline.
    """
    beta = validate_beta(beta, upper=np.inf)
    delta = np.asarray(delta, dtype=np.float64)
    if delta.ndim != 1 or delta.shape[0] == 0:
        raise ParameterError("delta must be a non-empty 1-D array")
    if delta.min() < 0:
        raise ParameterError("shift values must be non-negative")
    return _assemble(beta, delta, mode, make_generator(seed))


def _assemble(
    beta: float,
    delta: np.ndarray,
    mode: str,
    rng: np.random.Generator,
    *,
    label: str | None = None,
) -> ShiftAssignment:
    if mode not in ("fractional", "permutation"):
        raise ParameterError(
            f"mode must be 'fractional', 'permutation' or 'quantile', "
            f"got {mode!r}"
        )
    delta = np.ascontiguousarray(delta, dtype=np.float64)
    delta_max = float(delta.max())
    start_time = delta_max - delta
    start_round = np.floor(start_time).astype(np.int64)
    if mode == "fractional":
        tie_key = start_time - start_round
    else:
        tie_key = permutation_keys(delta.shape[0], seed=rng)
    for arr in (delta, start_time, start_round, tie_key):
        arr.setflags(write=False)
    return ShiftAssignment(
        beta=beta,
        delta=delta,
        delta_max=delta_max,
        start_time=start_time,
        start_round=start_round,
        tie_key=tie_key,
        mode=label if label is not None else mode,
    )
