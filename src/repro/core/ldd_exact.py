"""Algorithm 2 — exact shifted-shortest-path partition (reference).

Assigns every vertex to the center minimising
``dist_{−δ}(u, v) = dist(u, v) − δ_u`` by running one multi-source Dijkstra
in the lexicographic domain ``(integer round, tie key, center id)``.  This is
the formulation the paper's Section 4 analysis works with; the BFS engine of
:mod:`repro.core.ldd_bfs` must produce the identical assignment on the same
shifts (Section 5's equivalence), which the test suite verifies.

Being heap-based and sequential, this implementation is the *correctness
yardstick*, not the production path.
"""

from __future__ import annotations

import time

from repro.bfs.dijkstra import shifted_integer_dijkstra
from repro.core.decomposition import Decomposition, PartitionTrace
from repro.core.registry import KERNEL_OPTION, OptionSpec, register_method
from repro.core.shifts import ShiftAssignment, sample_shifts
from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.rng.seeding import SeedLike

__all__ = ["partition_exact", "partition_exact_with_shifts"]


@register_method(
    "exact",
    kind="unweighted",
    description="Algorithm 2 - exact shifted shortest paths (Dijkstra reference)",
    options=(
        OptionSpec(
            "tie_break",
            "str",
            "fractional",
            "round tie resolution, as for method 'bfs'",
            choices=("fractional", "permutation", "quantile"),
        ),
        KERNEL_OPTION,
    ),
)
def partition_exact(
    graph: CSRGraph,
    beta: float,
    *,
    seed: SeedLike = None,
    tie_break: str = "fractional",
) -> tuple[Decomposition, PartitionTrace]:
    """Run Algorithm 2 (exact shifted distances) on ``graph``."""
    if graph.num_vertices == 0:
        raise GraphError("cannot partition the empty graph")
    shifts = sample_shifts(graph.num_vertices, beta, seed=seed, mode=tie_break)
    return partition_exact_with_shifts(graph, shifts)


def partition_exact_with_shifts(
    graph: CSRGraph,
    shifts: ShiftAssignment,
) -> tuple[Decomposition, PartitionTrace]:
    """Run Algorithm 2 with externally supplied shifts."""
    if shifts.num_vertices != graph.num_vertices:
        raise GraphError("shift vector length must equal the vertex count")
    t0 = time.perf_counter()
    result = shifted_integer_dijkstra(
        graph, shifts.start_round, shifts.tie_key
    )
    decomposition = Decomposition(
        graph=graph, center=result.center, hops=result.hops
    )
    rounds = (
        int(result.round_claimed.max() - shifts.start_round.min()) + 1
        if graph.num_vertices
        else 0
    )
    trace = PartitionTrace(
        method=f"exact-{shifts.mode}",
        beta=shifts.beta,
        rounds=rounds,
        work=result.work,
        depth=result.work,  # sequential reference: depth == work
        delta_max=shifts.delta_max,
        wall_time_s=time.perf_counter() - t0,
        sequential_chain=result.work,
    )
    return decomposition, trace
