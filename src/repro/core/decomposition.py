"""The :class:`Decomposition` result type and its statistics.

A decomposition is, per Definition 1.1, a partition of ``V`` into pieces;
this type stores it in the *center form* the algorithm naturally produces
(each vertex points at its piece's center vertex) plus the dense label form
downstream consumers want (quotient graphs, renderers).  All statistics the
benchmarks report — piece sizes, radii, cut edges, cut fraction — are
methods here, computed vectorised and cached where they are O(m).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.ops import cut_edge_mask

__all__ = ["Decomposition", "PartitionTrace"]


@dataclass(frozen=True, eq=False)
class Decomposition:
    """A partition of a graph's vertices into centered pieces.

    Attributes
    ----------
    graph:
        The decomposed graph.
    center:
        Per-vertex id of the piece's center (a vertex with
        ``center[c] == c``).
    hops:
        Per-vertex hop distance to its center along a path inside the piece
        (Lemma 4.1 guarantees such a path exists for the paper's algorithm).
        Baselines that do not track this may pass hop counts from their own
        ball-growing.
    """

    graph: CSRGraph
    center: np.ndarray
    hops: np.ndarray
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        n = self.graph.num_vertices
        center = np.ascontiguousarray(self.center, dtype=np.int64)
        hops = np.ascontiguousarray(self.hops, dtype=np.int64)
        if center.shape[0] != n or hops.shape[0] != n:
            raise GraphError("center and hops must have one entry per vertex")
        if n:
            if center.min() < 0 or center.max() >= n:
                raise GraphError("center ids out of range")
            if np.any(center[center] != center):
                raise GraphError("centers must be fixed points of the map")
            if hops.min() < 0:
                raise GraphError("hops must be non-negative")
            if np.any(hops[center[np.arange(n)] == np.arange(n)] != 0):
                raise GraphError("centers must have hop distance 0")
        center.setflags(write=False)
        hops.setflags(write=False)
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "hops", hops)

    # ------------------------------------------------------------------
    # label form
    # ------------------------------------------------------------------
    @property
    def centers(self) -> np.ndarray:
        """Sorted array of distinct center vertex ids (one per piece)."""
        if "centers" not in self._cache:
            self._cache["centers"] = np.unique(self.center)
        return self._cache["centers"]

    @property
    def labels(self) -> np.ndarray:
        """Dense piece labels ``0..k−1``, ordered by center vertex id."""
        if "labels" not in self._cache:
            centers = self.centers
            lookup = np.full(self.graph.num_vertices, -1, dtype=np.int64)
            lookup[centers] = np.arange(centers.shape[0], dtype=np.int64)
            self._cache["labels"] = lookup[self.center]
        return self._cache["labels"]

    @property
    def num_pieces(self) -> int:
        """Number of pieces ``k``."""
        return int(self.centers.shape[0])

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def piece_sizes(self) -> np.ndarray:
        """Vertex count per piece, aligned with :attr:`centers`."""
        return np.bincount(self.labels, minlength=self.num_pieces)

    def piece_members(self, label: int) -> np.ndarray:
        """Vertex ids belonging to piece ``label``."""
        return np.flatnonzero(self.labels == label)

    def radii(self) -> np.ndarray:
        """Max hop distance to the center, per piece (piece *radius*).

        The strong diameter of a piece is at most twice this value, and at
        least this value — the certificate Theorem 1.2's proof uses.
        """
        out = np.zeros(self.num_pieces, dtype=np.int64)
        np.maximum.at(out, self.labels, self.hops)
        return out

    def max_radius(self) -> int:
        """Largest piece radius."""
        return int(self.hops.max()) if self.hops.size else 0

    def cut_mask(self) -> np.ndarray:
        """Boolean mask over ``graph.edge_array()``: edges between pieces."""
        if "cut_mask" not in self._cache:
            self._cache["cut_mask"] = cut_edge_mask(self.graph, self.labels)
        return self._cache["cut_mask"]

    def num_cut_edges(self) -> int:
        """Number of edges with endpoints in different pieces."""
        return int(self.cut_mask().sum())

    def cut_fraction(self) -> float:
        """``cut edges / m`` — the β-side of Definition 1.1 (0 if no edges)."""
        m = self.graph.num_edges
        return self.num_cut_edges() / m if m else 0.0

    def summary(self) -> dict[str, float]:
        """One-line statistics dict used by benchmarks and the CLI."""
        sizes = self.piece_sizes()
        radii = self.radii()
        return {
            "num_pieces": float(self.num_pieces),
            "max_piece_size": float(sizes.max()) if sizes.size else 0.0,
            "mean_piece_size": float(sizes.mean()) if sizes.size else 0.0,
            "max_radius": float(radii.max()) if radii.size else 0.0,
            "mean_radius": float(radii.mean()) if radii.size else 0.0,
            "num_cut_edges": float(self.num_cut_edges()),
            "cut_fraction": float(self.cut_fraction()),
        }


@dataclass(frozen=True, eq=False)
class PartitionTrace:
    """Execution record of one partition run (the Theorem 1.2 quantities).

    ``rounds`` is the parallel BFS depth ∆; ``depth`` is the modelled PRAM
    depth (rounds × O(log n) per [18] plus the reductions); ``work`` counts
    scanned arcs plus per-vertex setup.  ``delta_max`` is the Lemma 4.2
    certificate.  Baselines fill the fields that make sense for them
    (``sequential_chain`` is the ball-growing dependency-chain length, 0 for
    fully parallel methods).
    """

    method: str
    beta: float
    rounds: int
    work: int
    depth: int
    delta_max: float
    wall_time_s: float
    sequential_chain: int = 0
    frontier_sizes: tuple[int, ...] = ()
    extra: dict = field(default_factory=dict)
