"""Public facade: one entry point for every decomposition method.

``partition(graph, beta)`` is the API downstream code and examples use; the
``method`` keyword selects between the paper's algorithm (default), the exact
reference, the Section 5 permutation variant, and the baselines.  Returns a
:class:`PartitionResult` bundling the decomposition with its execution trace
and (optionally) a verification report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decomposition import Decomposition, PartitionTrace
from repro.core.ldd_bfs import partition_bfs
from repro.core.ldd_blelloch import partition_blelloch
from repro.core.ldd_exact import partition_exact
from repro.core.ldd_sequential import partition_sequential
from repro.core.ldd_uniform import partition_uniform
from repro.core.verify import VerificationReport, verify_decomposition
from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.rng.seeding import SeedLike

__all__ = ["PartitionResult", "partition", "PARTITION_METHODS"]

#: Method name -> short description, for the CLI and documentation.
PARTITION_METHODS = {
    "bfs": "Algorithm 1 - exponentially shifted BFS (the paper's algorithm)",
    "exact": "Algorithm 2 - exact shifted shortest paths (Dijkstra reference)",
    "permutation": "Section 5 variant - random-permutation tie-breaks",
    "quantile": "Section 5 variant - shifts from permutation positions",
    "sequential": "baseline - classical sequential ball growing",
    "blelloch": "baseline - Blelloch et al. [9] iterative batched centers",
    "uniform": "ablation - uniform shifts in the Algorithm 1 pipeline",
}


@dataclass(frozen=True, eq=False)
class PartitionResult:
    """A decomposition, how it was computed, and (optionally) its checks."""

    decomposition: Decomposition
    trace: PartitionTrace
    report: VerificationReport | None = None

    def summary(self) -> dict[str, float | str]:
        """Merged one-line summary for logs and benchmark tables."""
        out: dict[str, float | str] = {"method": self.trace.method}
        out.update(self.decomposition.summary())
        out["rounds"] = float(self.trace.rounds)
        out["work"] = float(self.trace.work)
        out["depth"] = float(self.trace.depth)
        return out


def partition(
    graph: CSRGraph,
    beta: float,
    *,
    method: str = "bfs",
    seed: SeedLike = None,
    validate: bool = False,
) -> PartitionResult:
    """Compute a ``(β, O(log n / β))`` low-diameter decomposition.

    Parameters
    ----------
    graph:
        Undirected unweighted graph (weighted graphs: see
        :func:`repro.core.weighted.partition_weighted`).
    beta:
        Target fraction of cut edges, ``0 < β ≤ 1``.
    method:
        One of :data:`PARTITION_METHODS`.
    seed:
        Seed / generator for reproducibility.
    validate:
        Run :func:`verify_decomposition` on the result (deterministic
        invariants raise on failure) and attach the report.

    Examples
    --------
    >>> from repro.graphs import grid_2d
    >>> from repro.core import partition
    >>> res = partition(grid_2d(30, 30), beta=0.1, seed=7)
    >>> res.decomposition.num_pieces > 1
    True
    >>> res.decomposition.cut_fraction() < 0.5
    True
    """
    if method == "bfs":
        decomposition, trace = partition_bfs(graph, beta, seed=seed)
    elif method == "exact":
        decomposition, trace = partition_exact(graph, beta, seed=seed)
    elif method == "permutation":
        decomposition, trace = partition_bfs(
            graph, beta, seed=seed, tie_break="permutation"
        )
    elif method == "quantile":
        decomposition, trace = partition_bfs(
            graph, beta, seed=seed, tie_break="quantile"
        )
    elif method == "sequential":
        decomposition, trace = partition_sequential(graph, beta, seed=seed)
    elif method == "blelloch":
        decomposition, trace = partition_blelloch(graph, beta, seed=seed)
    elif method == "uniform":
        decomposition, trace = partition_uniform(graph, beta, seed=seed)
    else:
        raise ParameterError(
            f"unknown method {method!r}; choices: {sorted(PARTITION_METHODS)}"
        )
    report = None
    if validate:
        delta_max = trace.delta_max if trace.delta_max == trace.delta_max else None
        report = verify_decomposition(
            decomposition, beta=beta, delta_max=delta_max
        )
    return PartitionResult(
        decomposition=decomposition, trace=trace, report=report
    )
