"""Deprecated facade: ``partition()`` forwards to the unified engine.

.. deprecated::
    ``partition(graph, beta, method=...)`` predates the method registry and
    the :func:`~repro.core.engine.decompose` engine; it remains as a thin,
    API-compatible wrapper so existing call sites keep working, but every
    call now emits a :class:`DeprecationWarning` (internal callers are
    migrated).  New code should call
    :func:`~repro.core.engine.decompose` (which also accepts weighted
    graphs and per-method ``**options``) and
    :func:`~repro.core.engine.decompose_many` for batched multi-seed runs.
    See CHANGES.md for the deprecation path.

:data:`PARTITION_METHODS` and :class:`PartitionResult` are re-exported from
their new homes (:mod:`repro.core.registry`, :mod:`repro.core.engine`) so
``from repro.core.partition import ...`` imports stay valid.
"""

from __future__ import annotations

import warnings

from repro.core.engine import PartitionResult, decompose
from repro.core.registry import PARTITION_METHODS
from repro.graphs.csr import CSRGraph
from repro.rng.seeding import SeedLike

__all__ = ["PartitionResult", "partition", "PARTITION_METHODS"]


def partition(
    graph: CSRGraph,
    beta: float,
    *,
    method: str = "bfs",
    seed: SeedLike = None,
    validate: bool = False,
) -> PartitionResult:
    """Compute a ``(β, O(log n / β))`` low-diameter decomposition.

    Deprecated-but-working facade over :func:`repro.core.engine.decompose`
    with the historical signature (no per-method options, defaults to the
    paper's BFS algorithm).

    Examples
    --------
    >>> from repro.graphs import grid_2d
    >>> from repro.core import partition
    >>> res = partition(grid_2d(30, 30), beta=0.1, seed=7)
    >>> res.decomposition.num_pieces > 1
    True
    >>> res.decomposition.cut_fraction() < 0.5
    True
    """
    warnings.warn(
        "partition() is deprecated; call repro.core.engine.decompose() "
        "(same result — partition(g, beta, method=m, seed=s) is "
        "decompose(g, beta, method=m, seed=s)) or decompose_many() for "
        "batches",
        DeprecationWarning,
        stacklevel=2,
    )
    return decompose(
        graph, beta, method=method, seed=seed, validate=validate
    )
