"""Exception hierarchy for :mod:`repro`.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single type at API boundaries.  Subclasses distinguish the broad
failure categories that matter to users: malformed graph inputs, invalid
algorithm parameters, and violated invariants detected by verification.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A graph input is structurally invalid (bad CSR arrays, bad edges...)."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is outside its documented domain."""


class VerificationError(ReproError):
    """A verification routine found a violated invariant.

    Raised by :mod:`repro.core.verify` when a decomposition fails a check that
    should hold deterministically (e.g. the assignment is not a partition).
    Probabilistic guarantees are *reported*, not raised.
    """


class ConvergenceError(ReproError):
    """An iterative method (e.g. PCG) failed to converge within its budget."""


class ServeError(ReproError):
    """A decomposition-service request failed (protocol or server side).

    Raised by :mod:`repro.serve` — on the client for malformed/oversized
    frames, connection loss, and error responses relayed from the server;
    server-side errors carry the original error type name in the message.
    """
