"""Constructors for :class:`~repro.graphs.csr.CSRGraph`.

All builders are fully vectorised: edge lists are symmetrised, deduplicated
and bucketed into CSR with ``argsort``/``bincount`` rather than Python loops,
following the NumPy-first idiom this library uses for every O(m) operation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph

__all__ = [
    "from_edges",
    "from_arcs",
    "from_adjacency",
    "empty_graph",
    "from_networkx",
    "to_networkx",
]


def from_edges(
    num_vertices: int,
    edges: np.ndarray | Sequence[tuple[int, int]],
    *,
    dedup: bool = True,
) -> CSRGraph:
    """Build an undirected graph from an edge list.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; edges must reference ids in ``[0, n)``.
    edges:
        ``(m, 2)`` integer array (or sequence of pairs).  Orientation is
        irrelevant; both arcs are stored.  Self-loops are rejected.
    dedup:
        Remove duplicate edges (the default).  Pass ``False`` only when the
        caller guarantees uniqueness, to skip the dedup pass.
    """
    if num_vertices < 0:
        raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
    arr = np.asarray(edges, dtype=VERTEX_DTYPE)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(f"edges must have shape (m, 2), got {arr.shape}")
    if arr.shape[0]:
        if arr.min() < 0 or arr.max() >= num_vertices:
            raise GraphError("edge endpoints out of range")
        if np.any(arr[:, 0] == arr[:, 1]):
            raise GraphError("self-loops are not allowed")
    # Canonicalise each edge as (min, max) before dedup.
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    if dedup and arr.shape[0]:
        keys = lo * num_vertices + hi
        _, unique_idx = np.unique(keys, return_index=True)
        lo, hi = lo[unique_idx], hi[unique_idx]
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    return _csr_from_arc_arrays(num_vertices, src, dst)


def from_arcs(num_vertices: int, src: np.ndarray, dst: np.ndarray) -> CSRGraph:
    """Build a graph from pre-symmetrised arc arrays (both directions given).

    The arc multiset must already be symmetric; this is validated by the
    :class:`CSRGraph` constructor.  Used by internal transformations that
    already hold both arc directions (e.g. subgraph extraction).
    """
    src = np.asarray(src, dtype=VERTEX_DTYPE)
    dst = np.asarray(dst, dtype=VERTEX_DTYPE)
    if src.shape != dst.shape:
        raise GraphError("src and dst must have equal shapes")
    return _csr_from_arc_arrays(num_vertices, src, dst)


def _csr_from_arc_arrays(
    num_vertices: int, src: np.ndarray, dst: np.ndarray
) -> CSRGraph:
    """Bucket arcs into CSR: counting sort on src, then per-row neighbour sort."""
    counts = np.bincount(src, minlength=num_vertices).astype(VERTEX_DTYPE)
    indptr = np.zeros(num_vertices + 1, dtype=VERTEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    # Lexicographic sort by (src, dst) yields rows in order with sorted
    # neighbour lists — one vectorised pass instead of a per-vertex loop.
    order = np.lexsort((dst, src))
    indices = dst[order]
    return CSRGraph(indptr, indices)


def from_adjacency(adjacency: Sequence[Iterable[int]]) -> CSRGraph:
    """Build a graph from an adjacency-list-of-iterables representation.

    Each ``adjacency[v]`` lists the neighbours of ``v``.  The input may list
    each edge in one or both directions; symmetrisation and dedup are applied.
    """
    n = len(adjacency)
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for v, nbrs in enumerate(adjacency):
        nbr_arr = np.fromiter((int(x) for x in nbrs), dtype=VERTEX_DTYPE)
        if nbr_arr.size:
            src_parts.append(np.full(nbr_arr.shape, v, dtype=VERTEX_DTYPE))
            dst_parts.append(nbr_arr)
    if not src_parts:
        return empty_graph(n)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    edges = np.stack([src, dst], axis=1)
    return from_edges(n, edges)


def empty_graph(num_vertices: int) -> CSRGraph:
    """Graph with ``num_vertices`` vertices and no edges."""
    if num_vertices < 0:
        raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
    return CSRGraph(
        np.zeros(num_vertices + 1, dtype=VERTEX_DTYPE),
        np.zeros(0, dtype=VERTEX_DTYPE),
    )


def from_networkx(nx_graph) -> CSRGraph:  # pragma: no cover - thin adapter
    """Convert a ``networkx.Graph`` with integer-labelled nodes ``0..n-1``.

    Provided for interoperability in tests and examples; the library itself
    never depends on networkx.
    """
    n = nx_graph.number_of_nodes()
    edges = np.array(
        [(int(u), int(v)) for u, v in nx_graph.edges()], dtype=VERTEX_DTYPE
    ).reshape(-1, 2)
    return from_edges(n, edges)


def to_networkx(graph: CSRGraph):  # pragma: no cover - thin adapter
    """Convert to a ``networkx.Graph`` (test/benchmark cross-validation)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(map(tuple, graph.edge_array()))
    return g
