"""Graph serialisation: edge-list text, METIS, and JSON formats.

The formats cover the interchange needs of the benchmark harness (dumping
workloads for inspection), interoperability with standard graph tools
(METIS is the de-facto partitioning interchange format), and the upload
payloads of the decomposition service (:mod:`repro.serve`), which accepts
any of them and sniffs the format when the client does not say.

Every format round-trips both plain :class:`~repro.graphs.csr.CSRGraph`
and :class:`~repro.graphs.weighted.WeightedCSRGraph` instances:

- edge list — ``n m`` header, then ``u v`` (or ``u v w``) per edge; weights
  are written with 17 significant digits so ``float64`` survives the text
  round trip bit-for-bit;
- METIS — 1-indexed adjacency lines; weighted graphs use the standard
  ``fmt=001`` edge-weight code (``nbr w`` pairs per line);
- JSON — ``{"num_vertices", "edges"[, "weights"]}``.

Malformed inputs raise :class:`~repro.errors.GraphError` carrying the
source name and the 1-based line number of the offending token — never a
raw ``ValueError`` from ``int()``/``float()``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import GraphError, ParameterError
from repro.graphs.build import from_edges
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph
from repro.graphs.weighted import WeightedCSRGraph, weighted_from_edges

__all__ = [
    "GRAPH_FORMATS",
    "format_for_path",
    "write_edge_list",
    "read_edge_list",
    "write_metis",
    "read_metis",
    "to_json",
    "from_json",
    "parse_graph",
    "load_graph",
]

#: Format names accepted by :func:`parse_graph` / :func:`load_graph`.
GRAPH_FORMATS = ("edges", "metis", "json")

#: File extensions mapped to formats by ``load_graph(format="auto")``;
#: unknown extensions fall back to content sniffing.
_EXTENSION_FORMATS = {
    ".edges": "edges",
    ".el": "edges",
    ".txt": "edges",
    ".metis": "metis",
    ".graph": "metis",
    ".json": "json",
}

#: Repr that round-trips every float64 exactly through text.
_WEIGHT_FMT = "{:.17g}"

#: Comment marker flagging a weighted edge list with no edges — the one
#: case where no ``u v w`` row exists to carry the weightedness.
_WEIGHTED_MARKER = "# weighted"


def format_for_path(path: str | Path) -> str:
    """The graph format a file extension implies, or ``"auto"``.

    The resolution :func:`load_graph` (and the serve client's
    ``upload_file``) applies before falling back to content sniffing.
    """
    return _EXTENSION_FORMATS.get(Path(path).suffix.lower(), "auto")


def _parse_int(token: str, *, source: str, line_no: int, what: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise GraphError(
            f"{source}:{line_no}: {what} must be an integer, got {token!r}"
        ) from None


def _parse_float(token: str, *, source: str, line_no: int, what: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise GraphError(
            f"{source}:{line_no}: {what} must be a number, got {token!r}"
        ) from None


def _check_header_counts(
    n: int, m: int, *, source: str, line_no: int
) -> None:
    if n < 0:
        raise GraphError(
            f"{source}:{line_no}: vertex count must be >= 0, got {n}"
        )
    if m < 0:
        raise GraphError(
            f"{source}:{line_no}: edge count must be >= 0, got {m}"
        )


def _data_lines(text: str, *, comments: tuple[str, ...]):
    """Yield ``(line_no, tokens)`` for non-blank, non-comment lines."""
    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(comments):
            continue
        yield line_no, stripped.split()


# ---------------------------------------------------------------------------
# edge-list format
# ---------------------------------------------------------------------------
def write_edge_list(graph: CSRGraph, path: str | Path) -> None:
    """Write ``n m`` header plus one ``u v`` (or ``u v w``) line per edge."""
    path = Path(path)
    edges = graph.edge_array()
    weights = (
        graph.edge_weight_array()
        if isinstance(graph, WeightedCSRGraph)
        else None
    )
    with path.open("w") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        if weights is None:
            for u, v in edges:
                fh.write(f"{u} {v}\n")
        elif len(edges) == 0:
            # No `u v w` row will carry the weightedness; mark it.
            fh.write(f"{_WEIGHTED_MARKER}\n")
        else:
            for (u, v), w in zip(edges, weights):
                fh.write(f"{u} {v} {_WEIGHT_FMT.format(w)}\n")


def read_edge_list(path: str | Path) -> CSRGraph:
    """Read the format produced by :func:`write_edge_list`."""
    path = Path(path)
    return _parse_edge_list(path.read_text(), source=str(path))


def _parse_edge_list(text: str, *, source: str) -> CSRGraph:
    lines = _data_lines(text, comments=("#", "%"))
    try:
        header_no, header = next(lines)
    except StopIteration:
        raise GraphError(f"{source}: empty edge-list input") from None
    if len(header) != 2:
        raise GraphError(
            f"{source}:{header_no}: bad edge-list header — expected "
            f"'n m', got {' '.join(header)!r}"
        )
    n = _parse_int(
        header[0], source=source, line_no=header_no, what="vertex count"
    )
    m = _parse_int(
        header[1], source=source, line_no=header_no, what="edge count"
    )
    _check_header_counts(n, m, source=source, line_no=header_no)
    # m edges need m body lines; reject a header promising more than the
    # input can hold *before* sizing the allocation from it.
    max_lines = text.count("\n") + 1
    if m > max_lines:
        raise GraphError(
            f"{source}:{header_no}: header claims {m} edges but the "
            f"input has only {max_lines} lines"
        )
    edges = np.zeros((m, 2), dtype=VERTEX_DTYPE)
    weights = None
    if any(
        line.strip() == _WEIGHTED_MARKER for line in text.splitlines()
    ):
        weights = np.zeros(m, dtype=np.float64)
    count = 0
    for line_no, tokens in lines:
        if count >= m:
            raise GraphError(
                f"{source}:{line_no}: edge count mismatch — header says "
                f"{m}, found more"
            )
        if len(tokens) == 3 and weights is None and count == 0:
            weights = np.zeros(m, dtype=np.float64)
        expected = 2 if weights is None else 3
        if len(tokens) != expected:
            raise GraphError(
                f"{source}:{line_no}: expected {expected} columns "
                f"({'u v w' if expected == 3 else 'u v'}), got {len(tokens)}"
            )
        edges[count, 0] = _parse_int(
            tokens[0], source=source, line_no=line_no, what="edge endpoint"
        )
        edges[count, 1] = _parse_int(
            tokens[1], source=source, line_no=line_no, what="edge endpoint"
        )
        if weights is not None:
            weights[count] = _parse_float(
                tokens[2], source=source, line_no=line_no, what="edge weight"
            )
        count += 1
    if count != m:
        raise GraphError(
            f"{source}: edge count mismatch — header says {m}, "
            f"found {count}"
        )
    try:
        if weights is None:
            return from_edges(n, edges)
        return weighted_from_edges(n, edges, weights)
    except GraphError as exc:
        raise GraphError(f"{source}: {exc}") from None


# ---------------------------------------------------------------------------
# METIS format
# ---------------------------------------------------------------------------
def write_metis(graph: CSRGraph, path: str | Path) -> None:
    """Write METIS adjacency format (1-indexed, one line per vertex).

    Weighted graphs use the standard ``fmt=001`` header code and write
    ``neighbor weight`` pairs on each vertex line.
    """
    path = Path(path)
    weighted = isinstance(graph, WeightedCSRGraph)
    with path.open("w") as fh:
        fmt = " 001" if weighted else ""
        fh.write(f"{graph.num_vertices} {graph.num_edges}{fmt}\n")
        for v in range(graph.num_vertices):
            nbrs = graph.neighbors(v)
            if weighted:
                ws = graph.neighbor_weights(v)
                fh.write(
                    " ".join(
                        f"{int(nbr) + 1} {_WEIGHT_FMT.format(w)}"
                        for nbr, w in zip(nbrs, ws)
                    )
                )
            else:
                fh.write(" ".join(str(int(x) + 1) for x in nbrs))
            fh.write("\n")


def read_metis(path: str | Path) -> CSRGraph:
    """Read the METIS adjacency format (unweighted or ``fmt=001``)."""
    path = Path(path)
    return _parse_metis(path.read_text(), source=str(path))


def _parse_metis(text: str, *, source: str) -> CSRGraph:
    # METIS comments start with '%'.  Unlike the edge-list format, *blank*
    # body lines are meaningful — they are the adjacency of isolated
    # vertices — so the body iterates physical lines.
    physical = [
        (line_no, line.strip())
        for line_no, line in enumerate(text.splitlines(), start=1)
        if not line.strip().startswith("%")
    ]
    header_entry = next(
        ((no, line.split()) for no, line in physical if line), None
    )
    if header_entry is None:
        raise GraphError(f"{source}: empty METIS input")
    header_no, header = header_entry
    if len(header) < 2 or len(header) > 4:
        raise GraphError(
            f"{source}:{header_no}: bad METIS header — expected "
            f"'n m [fmt]', got {' '.join(header)!r}"
        )
    n = _parse_int(
        header[0], source=source, line_no=header_no, what="vertex count"
    )
    m = _parse_int(
        header[1], source=source, line_no=header_no, what="edge count"
    )
    _check_header_counts(n, m, source=source, line_no=header_no)
    fmt = header[2] if len(header) > 2 else "0"
    if fmt.lstrip("0") == "":
        weighted = False
    elif fmt.lstrip("0") == "1":
        weighted = True
    else:
        raise GraphError(
            f"{source}:{header_no}: unsupported METIS fmt code {fmt!r} — "
            "only unweighted (0) and edge-weighted (001) graphs are "
            "supported"
        )
    body = [
        (line_no, line.split())
        for line_no, line in physical
        if line_no > header_no
    ]
    # Trailing blank lines beyond the n vertex lines are tolerated (many
    # writers emit a final newline); non-blank extras are an error.
    while len(body) > n and not body[-1][1]:
        body.pop()
    if len(body) > n:
        raise GraphError(
            f"{source}:{body[n][0]}: more than {n} vertex lines"
        )
    if len(body) < n:
        raise GraphError(
            f"{source}: truncated METIS input — expected {n} vertex "
            f"lines, found {len(body)}"
        )
    src: list[int] = []
    dst: list[int] = []
    wts: list[float] = []
    for v, (line_no, tokens) in enumerate(body):
        if weighted:
            if len(tokens) % 2:
                raise GraphError(
                    f"{source}:{line_no}: weighted METIS vertex line must "
                    "hold (neighbor, weight) pairs — odd token count"
                )
            for i in range(0, len(tokens), 2):
                src.append(v)
                dst.append(
                    _parse_int(
                        tokens[i], source=source, line_no=line_no,
                        what="neighbor id",
                    ) - 1
                )
                wts.append(
                    _parse_float(
                        tokens[i + 1], source=source, line_no=line_no,
                        what="edge weight",
                    )
                )
        else:
            for tok in tokens:
                src.append(v)
                dst.append(
                    _parse_int(
                        tok, source=source, line_no=line_no,
                        what="neighbor id",
                    ) - 1
                )
    return _metis_from_arcs(
        n, m, np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        np.asarray(wts, dtype=np.float64) if weighted else None,
        source=source,
    )


def _metis_from_arcs(
    n: int,
    m: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None,
    *,
    source: str,
) -> CSRGraph:
    """Assemble and cross-check the arc soup a METIS body parses into."""
    if src.size:
        if dst.min() < 0 or dst.max() >= n:
            raise GraphError(
                f"{source}: neighbor id out of range 1..{n}"
            )
    if src.size % 2:
        raise GraphError(
            f"{source}: adjacency is not symmetric — odd arc count"
        )
    keys = np.minimum(src, dst) * n + np.maximum(src, dst)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    if not np.array_equal(sorted_keys[0::2], sorted_keys[1::2]):
        raise GraphError(
            f"{source}: adjacency is not symmetric — some edge is listed "
            "in only one direction"
        )
    if weights is not None:
        w_sorted = weights[order]
        if not np.allclose(w_sorted[0::2], w_sorted[1::2]):
            raise GraphError(
                f"{source}: arc weights are not symmetric"
            )
    keep = src < dst
    edges = np.stack([src[keep], dst[keep]], axis=1)
    try:
        if weights is None:
            graph: CSRGraph = from_edges(n, edges)
        else:
            graph = weighted_from_edges(n, edges, weights[keep])
    except GraphError as exc:
        raise GraphError(f"{source}: {exc}") from None
    if graph.num_edges != m:
        raise GraphError(
            f"{source}: METIS edge count mismatch — header says {m}, "
            f"parsed {graph.num_edges}"
        )
    return graph


# ---------------------------------------------------------------------------
# JSON format
# ---------------------------------------------------------------------------
def to_json(graph: CSRGraph) -> str:
    """Serialise to a compact JSON document (used by the CLI and the
    decomposition service's upload payloads)."""
    doc: dict[str, object] = {
        "num_vertices": graph.num_vertices,
        "edges": graph.edge_array().tolist(),
    }
    if isinstance(graph, WeightedCSRGraph):
        doc["weights"] = graph.edge_weight_array().tolist()
    return json.dumps(doc)


def from_json(doc: str, *, source: str = "<json>") -> CSRGraph:
    """Inverse of :func:`to_json` (weighted when ``"weights"`` is present)."""
    try:
        obj = json.loads(doc)
    except json.JSONDecodeError as exc:
        # The decoder's message carries the line/column of the bad token.
        raise GraphError(f"{source}: invalid JSON — {exc}") from None
    if not isinstance(obj, dict):
        raise GraphError(
            f"{source}: expected a JSON object with 'num_vertices' and "
            f"'edges', got {type(obj).__name__}"
        )
    for key in ("num_vertices", "edges"):
        if key not in obj:
            raise GraphError(f"{source}: missing JSON key {key!r}")
    try:
        n = int(obj["num_vertices"])
        edges = np.asarray(obj["edges"], dtype=VERTEX_DTYPE).reshape(-1, 2)
    except (TypeError, ValueError) as exc:
        raise GraphError(f"{source}: malformed JSON graph — {exc}") from None
    try:
        if "weights" not in obj:
            return from_edges(n, edges)
        weights = np.asarray(obj["weights"], dtype=np.float64)
        return weighted_from_edges(n, edges, weights)
    except (GraphError, TypeError, ValueError) as exc:
        raise GraphError(f"{source}: {exc}") from None


# ---------------------------------------------------------------------------
# unified entry points
# ---------------------------------------------------------------------------
def _graphs_identical(a: CSRGraph, b: CSRGraph) -> bool:
    """Equality including weights (CSRGraph.__eq__ is topology-only)."""
    if type(a) is not type(b) or a != b:
        return False
    if isinstance(a, WeightedCSRGraph):
        return bool(np.array_equal(a.weights, b.weights))
    return True


_PARSERS = {
    "edges": _parse_edge_list,
    "metis": _parse_metis,
    "json": lambda text, source: from_json(text, source=source),
}


def parse_graph(
    text: str, format: str = "auto", *, source: str = "<string>"
) -> CSRGraph:
    """Parse a graph from serialised ``text`` in any supported format.

    ``format="auto"`` sniffs: a document starting with ``{`` is JSON; a
    three-token ``n m fmt`` header is METIS; a two-token header is
    ambiguous — both remaining parsers run, and the call succeeds only
    when exactly one accepts the body (or both yield the *same* graph).
    Text valid as edge list **and** as a different METIS graph raises
    rather than guessing; pass an explicit ``format`` for such files.
    This is the parsing path behind :func:`load_graph` and the
    decomposition service's graph uploads.
    """
    if format != "auto":
        if format not in _PARSERS:
            raise ParameterError(
                f"unknown graph format {format!r}; "
                f"choices: {sorted((*GRAPH_FORMATS, 'auto'))}"
            )
        return _PARSERS[format](text, source=source)
    stripped = text.lstrip()
    if stripped.startswith(("{", "[")):
        return from_json(text, source=source)
    for _, tokens in _data_lines(text, comments=("#", "%")):
        if len(tokens) >= 3:
            return _parse_metis(text, source=source)
        break
    try:
        as_edges: CSRGraph | None = _parse_edge_list(text, source=source)
        edge_exc: GraphError | None = None
    except GraphError as exc:
        as_edges, edge_exc = None, exc
    try:
        as_metis: CSRGraph | None = _parse_metis(text, source=source)
    except GraphError:
        as_metis = None
    if as_edges is not None and as_metis is not None:
        if _graphs_identical(as_edges, as_metis):
            return as_edges
        raise GraphError(
            f"{source}: ambiguous graph text — parses as both an edge "
            "list and a (different) METIS graph; pass format='edges' or "
            "format='metis' explicitly"
        )
    if as_edges is not None:
        return as_edges
    if as_metis is not None:
        return as_metis
    # The edge-list diagnosis names the first offending line; the METIS
    # reparse of a broken edge list rarely adds signal.
    raise GraphError(
        f"{source}: not parsable as any of {list(GRAPH_FORMATS)}; "
        f"edge-list parser said: {edge_exc}"
    ) from None


def load_graph(path: str | Path, format: str = "auto") -> CSRGraph:
    """Load a graph file, dispatching on ``format``, extension, or content.

    ``format="auto"`` first maps the file extension (``.edges``/``.el``/
    ``.txt`` → edge list, ``.metis``/``.graph`` → METIS, ``.json`` → JSON)
    and falls back to :func:`parse_graph`'s content sniffing for anything
    else.  Explicit ``format`` values bypass both.
    """
    path = Path(path)
    if format == "auto":
        format = format_for_path(path)
    elif format not in _PARSERS:
        raise ParameterError(
            f"unknown graph format {format!r}; "
            f"choices: {sorted((*GRAPH_FORMATS, 'auto'))}"
        )
    try:
        text = path.read_text()
    except OSError as exc:
        raise GraphError(f"cannot read graph file {path}: {exc}") from None
    return parse_graph(text, format, source=str(path))
