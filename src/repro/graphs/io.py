"""Graph serialisation: edge-list text, METIS, and JSON formats.

The formats cover the interchange needs of the benchmark harness (dumping
workloads for inspection) and interoperability with standard graph tools
(METIS is the de-facto partitioning interchange format).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import GraphError
from repro.graphs.build import from_adjacency, from_edges
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_metis",
    "read_metis",
    "to_json",
    "from_json",
]


def write_edge_list(graph: CSRGraph, path: str | Path) -> None:
    """Write ``n m`` header plus one ``u v`` line per undirected edge."""
    path = Path(path)
    edges = graph.edge_array()
    with path.open("w") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for u, v in edges:
            fh.write(f"{u} {v}\n")


def read_edge_list(path: str | Path) -> CSRGraph:
    """Read the format produced by :func:`write_edge_list`."""
    path = Path(path)
    with path.open() as fh:
        header = fh.readline().split()
        if len(header) != 2:
            raise GraphError(f"bad edge-list header in {path}")
        n, m = int(header[0]), int(header[1])
        data = np.loadtxt(fh, dtype=VERTEX_DTYPE, ndmin=2) if m else np.zeros(
            (0, 2), dtype=VERTEX_DTYPE
        )
    if data.shape[0] != m:
        raise GraphError(
            f"edge count mismatch in {path}: header says {m}, found "
            f"{data.shape[0]}"
        )
    return from_edges(n, data)


def write_metis(graph: CSRGraph, path: str | Path) -> None:
    """Write METIS adjacency format (1-indexed, one line per vertex)."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for v in range(graph.num_vertices):
            fh.write(" ".join(str(int(x) + 1) for x in graph.neighbors(v)))
            fh.write("\n")


def read_metis(path: str | Path) -> CSRGraph:
    """Read the (unweighted) METIS adjacency format."""
    path = Path(path)
    with path.open() as fh:
        header = fh.readline().split()
        if len(header) < 2:
            raise GraphError(f"bad METIS header in {path}")
        n, m = int(header[0]), int(header[1])
        adjacency: list[list[int]] = []
        for _ in range(n):
            line = fh.readline()
            if line == "":
                raise GraphError(f"truncated METIS file {path}")
            adjacency.append([int(tok) - 1 for tok in line.split()])
    graph = from_adjacency(adjacency)
    if graph.num_edges != m:
        raise GraphError(
            f"METIS edge count mismatch in {path}: header {m}, "
            f"parsed {graph.num_edges}"
        )
    return graph


def to_json(graph: CSRGraph) -> str:
    """Serialise to a compact JSON document (used by the CLI)."""
    return json.dumps(
        {
            "num_vertices": graph.num_vertices,
            "edges": graph.edge_array().tolist(),
        }
    )


def from_json(doc: str) -> CSRGraph:
    """Inverse of :func:`to_json`."""
    obj = json.loads(doc)
    edges = np.asarray(obj["edges"], dtype=VERTEX_DTYPE).reshape(-1, 2)
    return from_edges(int(obj["num_vertices"]), edges)
