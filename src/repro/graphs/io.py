"""Graph serialisation: edge-list text, METIS, and JSON formats.

The formats cover the interchange needs of the benchmark harness (dumping
workloads for inspection), interoperability with standard graph tools
(METIS is the de-facto partitioning interchange format), and the upload
payloads of the decomposition service (:mod:`repro.serve`), which accepts
any of them and sniffs the format when the client does not say.

Every format round-trips both plain :class:`~repro.graphs.csr.CSRGraph`
and :class:`~repro.graphs.weighted.WeightedCSRGraph` instances:

- edge list — ``n m`` header, then ``u v`` (or ``u v w``) per edge; weights
  are written with 17 significant digits so ``float64`` survives the text
  round trip bit-for-bit;
- METIS — 1-indexed adjacency lines; weighted graphs use the standard
  ``fmt=001`` edge-weight code (``nbr w`` pairs per line);
- JSON — ``{"num_vertices", "edges"[, "weights"]}``.

Malformed inputs raise :class:`~repro.errors.GraphError` carrying the
source name and the 1-based line number of the offending token — never a
raw ``ValueError`` from ``int()``/``float()``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.errors import GraphError, ParameterError
from repro.graphs.build import from_edges
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph
from repro.graphs.weighted import WeightedCSRGraph, weighted_from_edges

__all__ = [
    "GRAPH_FORMATS",
    "format_for_path",
    "write_edge_list",
    "read_edge_list",
    "write_metis",
    "read_metis",
    "to_json",
    "from_json",
    "parse_graph",
    "load_graph",
    "stream_graph_to_mmap",
    "stream_edge_list_to_mmap",
    "stream_metis_to_mmap",
]

#: Format names accepted by :func:`parse_graph` / :func:`load_graph`.
GRAPH_FORMATS = ("edges", "metis", "json")

#: File extensions mapped to formats by ``load_graph(format="auto")``;
#: unknown extensions fall back to content sniffing.
_EXTENSION_FORMATS = {
    ".edges": "edges",
    ".el": "edges",
    ".txt": "edges",
    ".metis": "metis",
    ".graph": "metis",
    ".json": "json",
}

#: Repr that round-trips every float64 exactly through text.
_WEIGHT_FMT = "{:.17g}"

#: Comment marker flagging a weighted edge list with no edges — the one
#: case where no ``u v w`` row exists to carry the weightedness.
_WEIGHTED_MARKER = "# weighted"


def format_for_path(path: str | Path) -> str:
    """The graph format a file extension implies, or ``"auto"``.

    The resolution :func:`load_graph` (and the serve client's
    ``upload_file``) applies before falling back to content sniffing.
    """
    return _EXTENSION_FORMATS.get(Path(path).suffix.lower(), "auto")


def _parse_int(token: str, *, source: str, line_no: int, what: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise GraphError(
            f"{source}:{line_no}: {what} must be an integer, got {token!r}"
        ) from None


def _parse_float(token: str, *, source: str, line_no: int, what: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise GraphError(
            f"{source}:{line_no}: {what} must be a number, got {token!r}"
        ) from None


def _check_header_counts(
    n: int, m: int, *, source: str, line_no: int
) -> None:
    if n < 0:
        raise GraphError(
            f"{source}:{line_no}: vertex count must be >= 0, got {n}"
        )
    if m < 0:
        raise GraphError(
            f"{source}:{line_no}: edge count must be >= 0, got {m}"
        )


def _data_lines(text: str, *, comments: tuple[str, ...]):
    """Yield ``(line_no, tokens)`` for non-blank, non-comment lines."""
    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(comments):
            continue
        yield line_no, stripped.split()


# ---------------------------------------------------------------------------
# edge-list format
# ---------------------------------------------------------------------------
def write_edge_list(graph: CSRGraph, path: str | Path) -> None:
    """Write ``n m`` header plus one ``u v`` (or ``u v w``) line per edge."""
    path = Path(path)
    edges = graph.edge_array()
    weights = (
        graph.edge_weight_array()
        if isinstance(graph, WeightedCSRGraph)
        else None
    )
    with path.open("w") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        if weights is None:
            for u, v in edges:
                fh.write(f"{u} {v}\n")
        elif len(edges) == 0:
            # No `u v w` row will carry the weightedness; mark it.
            fh.write(f"{_WEIGHTED_MARKER}\n")
        else:
            for (u, v), w in zip(edges, weights):
                fh.write(f"{u} {v} {_WEIGHT_FMT.format(w)}\n")


def read_edge_list(path: str | Path) -> CSRGraph:
    """Read the format produced by :func:`write_edge_list`."""
    path = Path(path)
    return _parse_edge_list(path.read_text(), source=str(path))


def _parse_edge_list(text: str, *, source: str) -> CSRGraph:
    lines = _data_lines(text, comments=("#", "%"))
    try:
        header_no, header = next(lines)
    except StopIteration:
        raise GraphError(f"{source}: empty edge-list input") from None
    if len(header) != 2:
        raise GraphError(
            f"{source}:{header_no}: bad edge-list header — expected "
            f"'n m', got {' '.join(header)!r}"
        )
    n = _parse_int(
        header[0], source=source, line_no=header_no, what="vertex count"
    )
    m = _parse_int(
        header[1], source=source, line_no=header_no, what="edge count"
    )
    _check_header_counts(n, m, source=source, line_no=header_no)
    # m edges need m body lines; reject a header promising more than the
    # input can hold *before* sizing the allocation from it.
    max_lines = text.count("\n") + 1
    if m > max_lines:
        raise GraphError(
            f"{source}:{header_no}: header claims {m} edges but the "
            f"input has only {max_lines} lines"
        )
    edges = np.zeros((m, 2), dtype=VERTEX_DTYPE)
    weights = None
    if any(
        line.strip() == _WEIGHTED_MARKER for line in text.splitlines()
    ):
        weights = np.zeros(m, dtype=np.float64)
    count = 0
    for line_no, tokens in lines:
        if count >= m:
            raise GraphError(
                f"{source}:{line_no}: edge count mismatch — header says "
                f"{m}, found more"
            )
        if len(tokens) == 3 and weights is None and count == 0:
            weights = np.zeros(m, dtype=np.float64)
        expected = 2 if weights is None else 3
        if len(tokens) != expected:
            raise GraphError(
                f"{source}:{line_no}: expected {expected} columns "
                f"({'u v w' if expected == 3 else 'u v'}), got {len(tokens)}"
            )
        edges[count, 0] = _parse_int(
            tokens[0], source=source, line_no=line_no, what="edge endpoint"
        )
        edges[count, 1] = _parse_int(
            tokens[1], source=source, line_no=line_no, what="edge endpoint"
        )
        if weights is not None:
            weights[count] = _parse_float(
                tokens[2], source=source, line_no=line_no, what="edge weight"
            )
        count += 1
    if count != m:
        raise GraphError(
            f"{source}: edge count mismatch — header says {m}, "
            f"found {count}"
        )
    try:
        if weights is None:
            return from_edges(n, edges)
        return weighted_from_edges(n, edges, weights)
    except GraphError as exc:
        raise GraphError(f"{source}: {exc}") from None


# ---------------------------------------------------------------------------
# METIS format
# ---------------------------------------------------------------------------
def write_metis(graph: CSRGraph, path: str | Path) -> None:
    """Write METIS adjacency format (1-indexed, one line per vertex).

    Weighted graphs use the standard ``fmt=001`` header code and write
    ``neighbor weight`` pairs on each vertex line.
    """
    path = Path(path)
    weighted = isinstance(graph, WeightedCSRGraph)
    with path.open("w") as fh:
        fmt = " 001" if weighted else ""
        fh.write(f"{graph.num_vertices} {graph.num_edges}{fmt}\n")
        for v in range(graph.num_vertices):
            nbrs = graph.neighbors(v)
            if weighted:
                ws = graph.neighbor_weights(v)
                fh.write(
                    " ".join(
                        f"{int(nbr) + 1} {_WEIGHT_FMT.format(w)}"
                        for nbr, w in zip(nbrs, ws)
                    )
                )
            else:
                fh.write(" ".join(str(int(x) + 1) for x in nbrs))
            fh.write("\n")


def read_metis(path: str | Path) -> CSRGraph:
    """Read the METIS adjacency format (unweighted or ``fmt=001``)."""
    path = Path(path)
    return _parse_metis(path.read_text(), source=str(path))


def _parse_metis(text: str, *, source: str) -> CSRGraph:
    # METIS comments start with '%'.  Unlike the edge-list format, *blank*
    # body lines are meaningful — they are the adjacency of isolated
    # vertices — so the body iterates physical lines.
    physical = [
        (line_no, line.strip())
        for line_no, line in enumerate(text.splitlines(), start=1)
        if not line.strip().startswith("%")
    ]
    header_entry = next(
        ((no, line.split()) for no, line in physical if line), None
    )
    if header_entry is None:
        raise GraphError(f"{source}: empty METIS input")
    header_no, header = header_entry
    if len(header) < 2 or len(header) > 4:
        raise GraphError(
            f"{source}:{header_no}: bad METIS header — expected "
            f"'n m [fmt]', got {' '.join(header)!r}"
        )
    n = _parse_int(
        header[0], source=source, line_no=header_no, what="vertex count"
    )
    m = _parse_int(
        header[1], source=source, line_no=header_no, what="edge count"
    )
    _check_header_counts(n, m, source=source, line_no=header_no)
    fmt = header[2] if len(header) > 2 else "0"
    if fmt.lstrip("0") == "":
        weighted = False
    elif fmt.lstrip("0") == "1":
        weighted = True
    else:
        raise GraphError(
            f"{source}:{header_no}: unsupported METIS fmt code {fmt!r} — "
            "only unweighted (0) and edge-weighted (001) graphs are "
            "supported"
        )
    body = [
        (line_no, line.split())
        for line_no, line in physical
        if line_no > header_no
    ]
    # Trailing blank lines beyond the n vertex lines are tolerated (many
    # writers emit a final newline); non-blank extras are an error.
    while len(body) > n and not body[-1][1]:
        body.pop()
    if len(body) > n:
        raise GraphError(
            f"{source}:{body[n][0]}: more than {n} vertex lines"
        )
    if len(body) < n:
        raise GraphError(
            f"{source}: truncated METIS input — expected {n} vertex "
            f"lines, found {len(body)}"
        )
    src: list[int] = []
    dst: list[int] = []
    wts: list[float] = []
    for v, (line_no, tokens) in enumerate(body):
        if weighted:
            if len(tokens) % 2:
                raise GraphError(
                    f"{source}:{line_no}: weighted METIS vertex line must "
                    "hold (neighbor, weight) pairs — odd token count"
                )
            for i in range(0, len(tokens), 2):
                src.append(v)
                dst.append(
                    _parse_int(
                        tokens[i], source=source, line_no=line_no,
                        what="neighbor id",
                    ) - 1
                )
                wts.append(
                    _parse_float(
                        tokens[i + 1], source=source, line_no=line_no,
                        what="edge weight",
                    )
                )
        else:
            for tok in tokens:
                src.append(v)
                dst.append(
                    _parse_int(
                        tok, source=source, line_no=line_no,
                        what="neighbor id",
                    ) - 1
                )
    return _metis_from_arcs(
        n, m, np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        np.asarray(wts, dtype=np.float64) if weighted else None,
        source=source,
    )


def _metis_from_arcs(
    n: int,
    m: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None,
    *,
    source: str,
) -> CSRGraph:
    """Assemble and cross-check the arc soup a METIS body parses into."""
    if src.size:
        if dst.min() < 0 or dst.max() >= n:
            raise GraphError(
                f"{source}: neighbor id out of range 1..{n}"
            )
    if src.size % 2:
        raise GraphError(
            f"{source}: adjacency is not symmetric — odd arc count"
        )
    keys = np.minimum(src, dst) * n + np.maximum(src, dst)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    if not np.array_equal(sorted_keys[0::2], sorted_keys[1::2]):
        raise GraphError(
            f"{source}: adjacency is not symmetric — some edge is listed "
            "in only one direction"
        )
    if weights is not None:
        w_sorted = weights[order]
        if not np.allclose(w_sorted[0::2], w_sorted[1::2]):
            raise GraphError(
                f"{source}: arc weights are not symmetric"
            )
    keep = src < dst
    edges = np.stack([src[keep], dst[keep]], axis=1)
    try:
        if weights is None:
            graph: CSRGraph = from_edges(n, edges)
        else:
            graph = weighted_from_edges(n, edges, weights[keep])
    except GraphError as exc:
        raise GraphError(f"{source}: {exc}") from None
    if graph.num_edges != m:
        raise GraphError(
            f"{source}: METIS edge count mismatch — header says {m}, "
            f"parsed {graph.num_edges}"
        )
    return graph


# ---------------------------------------------------------------------------
# JSON format
# ---------------------------------------------------------------------------
def to_json(graph: CSRGraph) -> str:
    """Serialise to a compact JSON document (used by the CLI and the
    decomposition service's upload payloads)."""
    doc: dict[str, object] = {
        "num_vertices": graph.num_vertices,
        "edges": graph.edge_array().tolist(),
    }
    if isinstance(graph, WeightedCSRGraph):
        doc["weights"] = graph.edge_weight_array().tolist()
    return json.dumps(doc)


def from_json(doc: str, *, source: str = "<json>") -> CSRGraph:
    """Inverse of :func:`to_json` (weighted when ``"weights"`` is present)."""
    try:
        obj = json.loads(doc)
    except json.JSONDecodeError as exc:
        # The decoder's message carries the line/column of the bad token.
        raise GraphError(f"{source}: invalid JSON — {exc}") from None
    if not isinstance(obj, dict):
        raise GraphError(
            f"{source}: expected a JSON object with 'num_vertices' and "
            f"'edges', got {type(obj).__name__}"
        )
    for key in ("num_vertices", "edges"):
        if key not in obj:
            raise GraphError(f"{source}: missing JSON key {key!r}")
    try:
        n = int(obj["num_vertices"])
        edges = np.asarray(obj["edges"], dtype=VERTEX_DTYPE).reshape(-1, 2)
    except (TypeError, ValueError) as exc:
        raise GraphError(f"{source}: malformed JSON graph — {exc}") from None
    try:
        if "weights" not in obj:
            return from_edges(n, edges)
        weights = np.asarray(obj["weights"], dtype=np.float64)
        return weighted_from_edges(n, edges, weights)
    except (GraphError, TypeError, ValueError) as exc:
        raise GraphError(f"{source}: {exc}") from None


# ---------------------------------------------------------------------------
# unified entry points
# ---------------------------------------------------------------------------
def _graphs_identical(a: CSRGraph, b: CSRGraph) -> bool:
    """Equality including weights (CSRGraph.__eq__ is topology-only)."""
    if type(a) is not type(b) or a != b:
        return False
    if isinstance(a, WeightedCSRGraph):
        return bool(np.array_equal(a.weights, b.weights))
    return True


_PARSERS = {
    "edges": _parse_edge_list,
    "metis": _parse_metis,
    "json": lambda text, source: from_json(text, source=source),
}


def parse_graph(
    text: str, format: str = "auto", *, source: str = "<string>"
) -> CSRGraph:
    """Parse a graph from serialised ``text`` in any supported format.

    ``format="auto"`` sniffs: a document starting with ``{`` is JSON; a
    three-token ``n m fmt`` header is METIS; a two-token header is
    ambiguous — both remaining parsers run, and the call succeeds only
    when exactly one accepts the body (or both yield the *same* graph).
    Text valid as edge list **and** as a different METIS graph raises
    rather than guessing; pass an explicit ``format`` for such files.
    This is the parsing path behind :func:`load_graph` and the
    decomposition service's graph uploads.
    """
    if format != "auto":
        if format not in _PARSERS:
            raise ParameterError(
                f"unknown graph format {format!r}; "
                f"choices: {sorted((*GRAPH_FORMATS, 'auto'))}"
            )
        return _PARSERS[format](text, source=source)
    stripped = text.lstrip()
    if stripped.startswith(("{", "[")):
        return from_json(text, source=source)
    for _, tokens in _data_lines(text, comments=("#", "%")):
        if len(tokens) >= 3:
            return _parse_metis(text, source=source)
        break
    try:
        as_edges: CSRGraph | None = _parse_edge_list(text, source=source)
        edge_exc: GraphError | None = None
    except GraphError as exc:
        as_edges, edge_exc = None, exc
    try:
        as_metis: CSRGraph | None = _parse_metis(text, source=source)
    except GraphError:
        as_metis = None
    if as_edges is not None and as_metis is not None:
        if _graphs_identical(as_edges, as_metis):
            return as_edges
        raise GraphError(
            f"{source}: ambiguous graph text — parses as both an edge "
            "list and a (different) METIS graph; pass format='edges' or "
            "format='metis' explicitly"
        )
    if as_edges is not None:
        return as_edges
    if as_metis is not None:
        return as_metis
    # The edge-list diagnosis names the first offending line; the METIS
    # reparse of a broken edge list rarely adds signal.
    raise GraphError(
        f"{source}: not parsable as any of {list(GRAPH_FORMATS)}; "
        f"edge-list parser said: {edge_exc}"
    ) from None


def load_graph(path: str | Path, format: str = "auto") -> CSRGraph:
    """Load a graph file, dispatching on ``format``, extension, or content.

    ``format="auto"`` first maps the file extension (``.edges``/``.el``/
    ``.txt`` → edge list, ``.metis``/``.graph`` → METIS, ``.json`` → JSON)
    and falls back to :func:`parse_graph`'s content sniffing for anything
    else.  Explicit ``format`` values bypass both.
    """
    path = Path(path)
    if format == "auto":
        format = format_for_path(path)
    elif format not in _PARSERS:
        raise ParameterError(
            f"unknown graph format {format!r}; "
            f"choices: {sorted((*GRAPH_FORMATS, 'auto'))}"
        )
    try:
        text = path.read_text()
    except OSError as exc:
        raise GraphError(f"cannot read graph file {path}: {exc}") from None
    return parse_graph(text, format, source=str(path))


# ---------------------------------------------------------------------------
# streaming out-of-core ingest
# ---------------------------------------------------------------------------
# The streaming readers build ``indptr``/``indices`` *directly inside a
# memmap file* (the RGM1 format of :mod:`repro.graphs.mmapcsr`) via chunked
# counting-sort passes, so a graph whose text or CSR form exceeds RAM
# ingests with bounded resident memory:
#
#   edge list — pass A counts degrees per chunk of parsed rows, a chunked
#   cumsum turns them into offsets, pass B re-streams the file and scatters
#   arcs through a per-vertex cursor file, pass C sorts + dedups each row
#   block-wise and compacts in place (write offset never passes the read
#   offset, so no second copy of ``indices`` exists);
#
#   METIS — adjacency rows arrive grouped by vertex, so arcs append in row
#   order in one pass, followed by the same sort/dedup/compact pass and a
#   chunked binary-search symmetry check.
#
# The result is bit-identical to the in-memory parsers (same digest): a
# row-local sort + dedup after a dup-tolerant counting sort yields exactly
# the sorted unique neighbour lists :func:`~repro.graphs.build.from_edges`
# produces.  Weighted inputs are rejected — parse those with
# :func:`load_graph`.

#: Parsed rows per text chunk (bounds Python-object overhead).
_STREAM_CHUNK_LINES = 1 << 18
#: Arcs per in-RAM block in the sort/dedup/compact and cumsum passes.
_STREAM_CHUNK_ARCS = 1 << 22
#: First vertex count that no longer fits the int32 parse scratch.
_INT32_LIMIT = 2**31


def _id_dtype(num_vertices: int, *, limit: int = _INT32_LIMIT):
    """Scratch dtype for parsed vertex ids: int32 until ``n`` forces int64.

    ``limit`` exists for tests to force the promotion path on small
    graphs; the final CSR arrays are always ``VERTEX_DTYPE`` regardless.
    """
    return np.int32 if num_vertices < limit else np.int64


def _streaming_weighted_error(source: str, line_no: int) -> GraphError:
    return GraphError(
        f"{source}:{line_no}: weighted inputs are not supported by the "
        "streaming ingest — parse with load_graph() instead"
    )


def _edge_data_lines(path: str, source: str):
    """Yield ``(line_no, tokens)`` for edge-list data lines, streaming."""
    try:
        fh = open(path, "r")
    except OSError as exc:
        raise GraphError(f"cannot read graph file {path}: {exc}") from None
    with fh:
        for line_no, raw in enumerate(fh, start=1):
            stripped = raw.strip()
            if not stripped:
                continue
            if stripped.startswith(("#", "%")):
                if stripped == _WEIGHTED_MARKER:
                    raise _streaming_weighted_error(source, line_no)
                continue
            yield line_no, stripped.split()


def _ids_from_tokens(
    tokens: list, line_nos, dtype, *, source: str, what: str
) -> np.ndarray:
    """Vectorised ``int(token)`` with a slow path that names the bad line."""
    try:
        return np.array(tokens, dtype=dtype)
    except (ValueError, OverflowError):
        pass
    if dtype is not np.int64:
        # Ids overflowing int32 still parse; the range check rejects them
        # (or accepts them, when the caller's n really is that large).
        try:
            return np.array(tokens, dtype=np.int64)
        except (ValueError, OverflowError):
            pass
    for tok, line_no in zip(tokens, np.asarray(line_nos).tolist()):
        _parse_int(tok, source=source, line_no=int(line_no), what=what)
    raise GraphError(f"{source}: unparseable integer token")  # pragma: no cover


def _check_endpoints(
    u: np.ndarray, v: np.ndarray, line_nos: np.ndarray, n: int, source: str
) -> None:
    bad = (u < 0) | (u >= n) | (v < 0) | (v >= n)
    if bad.any():
        i = int(np.argmax(bad))
        raise GraphError(
            f"{source}:{int(line_nos[i])}: edge endpoint out of range "
            f"0..{n - 1}"
        )
    loops = u == v
    if loops.any():
        i = int(np.argmax(loops))
        raise GraphError(
            f"{source}:{int(line_nos[i])}: self-loops are not allowed"
        )


def _edge_chunks(
    path: str, source: str, n: int, dtype, chunk_lines: int
):
    """Parsed ``(u, v)`` chunks of an edge-list body, validated."""
    lines = _edge_data_lines(path, source)
    next(lines)  # header, already validated by the caller
    us: list = []
    vs: list = []
    lns: list = []

    def _flush():
        line_nos = np.asarray(lns, dtype=np.int64)
        u = _ids_from_tokens(
            us, line_nos, dtype, source=source, what="edge endpoint"
        )
        v = _ids_from_tokens(
            vs, line_nos, dtype, source=source, what="edge endpoint"
        )
        _check_endpoints(u, v, line_nos, n, source)
        return u, v

    for line_no, tokens in lines:
        if len(tokens) != 2:
            if len(tokens) == 3:
                raise _streaming_weighted_error(source, line_no)
            raise GraphError(
                f"{source}:{line_no}: expected 2 columns ('u v'), "
                f"got {len(tokens)}"
            )
        us.append(tokens[0])
        vs.append(tokens[1])
        lns.append(line_no)
        if len(lns) >= chunk_lines:
            yield _flush()
            us, vs, lns = [], [], []
    if lns:
        yield _flush()


def _rebuild_indptr(
    indptr_mm: np.ndarray, deg, n: int, chunk: int
) -> None:
    """Chunked exclusive cumsum of ``deg`` into ``indptr_mm`` (len n+1)."""
    indptr_mm[0] = 0
    running = 0
    for s in range(0, n, chunk):
        e = min(s + chunk, n)
        block = np.cumsum(deg[s:e], dtype=np.int64) + running
        indptr_mm[1 + s : 1 + e] = block
        running = int(block[-1])


def _sort_dedup_compact(
    indptr_mm: np.ndarray,
    indices_mm: np.ndarray,
    new_deg: np.ndarray,
    n: int,
    chunk_arcs: int,
) -> int:
    """Sort + dedup every adjacency row, compacting ``indices`` in place.

    Rows are processed in blocks of at most ``chunk_arcs`` arcs (a single
    over-budget row still forms its own block).  Compaction writes at an
    offset that never exceeds the block's read offset, and each block is
    copied to RAM first, so the pass needs no second ``indices`` file.
    Per-row surviving degrees land in ``new_deg``; returns total kept arcs.
    """
    write_pos = 0
    v0 = 0
    total = int(indptr_mm[n])
    while v0 < n:
        p0 = int(indptr_mm[v0])
        v1 = int(np.searchsorted(indptr_mm, p0 + chunk_arcs, side="right")) - 1
        v1 = min(max(v1, v0 + 1), n)
        p1 = int(indptr_mm[v1])
        block = indices_mm[p0:p1].copy()
        rowdeg = np.diff(indptr_mm[v0 : v1 + 1])
        rows = np.repeat(np.arange(v1 - v0, dtype=np.int64), rowdeg)
        order = np.lexsort((block, rows))
        svals = block[order]
        srows = rows[order]
        if svals.shape[0]:
            keep = np.empty(svals.shape[0], dtype=bool)
            keep[0] = True
            keep[1:] = (srows[1:] != srows[:-1]) | (svals[1:] != svals[:-1])
            svals = svals[keep]
            srows = srows[keep]
        kept = int(svals.shape[0])
        indices_mm[write_pos : write_pos + kept] = svals
        new_deg[v0:v1] = np.bincount(srows, minlength=v1 - v0)
        write_pos += kept
        v0 = v1
    assert write_pos <= total
    return write_pos


def _check_symmetry_mmap(
    indptr_mm: np.ndarray,
    indices_mm: np.ndarray,
    n: int,
    chunk_arcs: int,
    source: str,
) -> None:
    """Chunked symmetry check over sorted adjacency rows.

    For every arc ``v → u`` in a block, a vectorised binary search probes
    row ``u`` for ``v``; only the probed pages fault in, so the resident
    set stays bounded by the block size (plus evictable page cache).
    """
    total = int(indptr_mm[n])
    if total == 0:
        return
    v0 = 0
    while v0 < n:
        p0 = int(indptr_mm[v0])
        v1 = int(np.searchsorted(indptr_mm, p0 + chunk_arcs, side="right")) - 1
        v1 = min(max(v1, v0 + 1), n)
        p1 = int(indptr_mm[v1])
        dst = indices_mm[p0:p1].copy()
        rowdeg = np.diff(indptr_mm[v0 : v1 + 1])
        src = np.repeat(np.arange(v0, v1, dtype=np.int64), rowdeg)
        lo = indptr_mm[dst]
        hi = indptr_mm[dst + 1]
        ends = hi.copy()
        while True:
            active = lo < hi
            if not active.any():
                break
            mid = (lo + hi) >> 1
            vals = indices_mm[np.minimum(mid, total - 1)]
            go_right = active & (vals < src)
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(active & ~go_right, mid, hi)
        found = lo < ends
        probe = indices_mm[np.minimum(lo, total - 1)]
        ok = found & (probe == src)
        if not ok.all():
            raise GraphError(
                f"{source}: adjacency is not symmetric — some edge is "
                "listed in only one direction"
            )
        v0 = v1


def stream_edge_list_to_mmap(
    path: str | Path,
    out_path: str | Path,
    *,
    owns_file: bool = False,
    chunk_lines: int = _STREAM_CHUNK_LINES,
    chunk_arcs: int = _STREAM_CHUNK_ARCS,
    id_limit: int = _INT32_LIMIT,
):
    """Stream an edge-list file into a memmap CSR (``RGM1``) at ``out_path``.

    Returns the opened :class:`~repro.graphs.mmapcsr.MmapCSR`; its graph is
    bit-identical (same :func:`~repro.serve.store.graph_digest`) to
    ``read_edge_list(path)`` without ever materialising the edge list in
    RAM.  Weighted inputs raise — use :func:`load_graph` for those.
    """
    from repro.graphs.mmapcsr import MmapLayout

    source = str(path)
    lines = _edge_data_lines(source, source)
    try:
        header_no, header = next(lines)
    except StopIteration:
        raise GraphError(f"{source}: empty edge-list input") from None
    lines.close()
    if len(header) != 2:
        raise GraphError(
            f"{source}:{header_no}: bad edge-list header — expected "
            f"'n m', got {' '.join(header)!r}"
        )
    n = _parse_int(
        header[0], source=source, line_no=header_no, what="vertex count"
    )
    m = _parse_int(
        header[1], source=source, line_no=header_no, what="edge count"
    )
    _check_header_counts(n, m, source=source, line_no=header_no)
    dtype = _id_dtype(n, limit=id_limit)
    layout = MmapLayout.create(
        str(out_path),
        CSRGraph,
        [("indptr", (n + 1,), VERTEX_DTYPE), ("indices", (2 * m,), VERTEX_DTYPE)],
    )
    cursor_path = f"{out_path}.cursors.tmp"
    try:
        views = layout.views
        indptr_mm = views["indptr"]
        indices_mm = views["indices"]
        # Pass A — count degrees into indptr[1:], then prefix-sum.
        deg = indptr_mm[1:]
        count = 0
        for u, v in _edge_chunks(source, source, n, dtype, chunk_lines):
            np.add.at(deg, u, 1)
            np.add.at(deg, v, 1)
            count += int(u.shape[0])
            if count > m:
                raise GraphError(
                    f"{source}: edge count mismatch — header says {m}, "
                    "found more"
                )
        if count != m:
            raise GraphError(
                f"{source}: edge count mismatch — header says {m}, "
                f"found {count}"
            )
        _rebuild_indptr(indptr_mm, indptr_mm[1:], n, chunk_arcs)
        # Pass B — re-stream and scatter both arc directions through
        # per-vertex cursors kept in a scratch file.
        scratch = np.memmap(
            cursor_path, dtype=np.int64, mode="w+", shape=(max(n, 1),)
        )
        for s in range(0, n, chunk_arcs):
            e = min(s + chunk_arcs, n)
            scratch[s:e] = indptr_mm[s:e]
        for u, v in _edge_chunks(source, source, n, dtype, chunk_lines):
            src = np.concatenate([u, v])
            dst = np.concatenate([v, u])
            order = np.argsort(src, kind="stable")
            ssrc = src[order]
            sdst = dst[order]
            uniq, start, cnt = np.unique(
                ssrc, return_index=True, return_counts=True
            )
            ranks = np.arange(ssrc.shape[0], dtype=np.int64) - np.repeat(
                start, cnt
            )
            indices_mm[scratch[ssrc] + ranks] = sdst
            scratch[uniq] += cnt
        # Pass C — per-row sort + dedup, compact, rebuild offsets.
        kept = _sort_dedup_compact(indptr_mm, indices_mm, scratch, n, chunk_arcs)
        _rebuild_indptr(indptr_mm, scratch, n, chunk_arcs)
        del deg, scratch, views, indptr_mm, indices_mm
        layout.shrink("indices", kept)
    except BaseException:
        layout.close()
        for leftover in (cursor_path, str(out_path)):
            try:
                os.unlink(leftover)
            except OSError:
                pass
        raise
    try:
        os.unlink(cursor_path)
    except OSError:  # pragma: no cover - scratch never created for n=0
        pass
    return layout.open_graph(owns_file=owns_file)


def _metis_physical_lines(path: str, source: str):
    """Yield ``(line_no, stripped_line)`` skipping ``%`` comments only."""
    try:
        fh = open(path, "r")
    except OSError as exc:
        raise GraphError(f"cannot read graph file {path}: {exc}") from None
    with fh:
        for line_no, raw in enumerate(fh, start=1):
            stripped = raw.strip()
            if stripped.startswith("%"):
                continue
            yield line_no, stripped


def stream_metis_to_mmap(
    path: str | Path,
    out_path: str | Path,
    *,
    owns_file: bool = False,
    chunk_lines: int = _STREAM_CHUNK_LINES,
    chunk_arcs: int = _STREAM_CHUNK_ARCS,
    id_limit: int = _INT32_LIMIT,
):
    """Stream a METIS adjacency file into a memmap CSR at ``out_path``.

    Adjacency rows arrive grouped by vertex, so arcs append in row order in
    a single pass; a block-wise sort/dedup pass and a chunked binary-search
    symmetry check replace the in-memory parser's whole-array checks.
    Result digest matches ``read_metis(path)``.  ``fmt=001`` (weighted)
    inputs raise — use :func:`load_graph` for those.
    """
    from repro.graphs.mmapcsr import MmapLayout

    source = str(path)
    lines = _metis_physical_lines(source, source)
    header_entry = next(
        ((no, line.split()) for no, line in lines if line), None
    )
    if header_entry is None:
        raise GraphError(f"{source}: empty METIS input")
    header_no, header = header_entry
    if len(header) < 2 or len(header) > 4:
        raise GraphError(
            f"{source}:{header_no}: bad METIS header — expected "
            f"'n m [fmt]', got {' '.join(header)!r}"
        )
    n = _parse_int(
        header[0], source=source, line_no=header_no, what="vertex count"
    )
    m = _parse_int(
        header[1], source=source, line_no=header_no, what="edge count"
    )
    _check_header_counts(n, m, source=source, line_no=header_no)
    fmt = header[2] if len(header) > 2 else "0"
    if fmt.lstrip("0") == "1":
        raise _streaming_weighted_error(source, header_no)
    if fmt.lstrip("0") != "":
        raise GraphError(
            f"{source}:{header_no}: unsupported METIS fmt code {fmt!r} — "
            "only unweighted (0) and edge-weighted (001) graphs are "
            "supported"
        )
    dtype = _id_dtype(n, limit=id_limit)
    layout = MmapLayout.create(
        str(out_path),
        CSRGraph,
        [("indptr", (n + 1,), VERTEX_DTYPE), ("indices", (2 * m,), VERTEX_DTYPE)],
    )
    scratch_path = f"{out_path}.degrees.tmp"
    try:
        views = layout.views
        indptr_mm = views["indptr"]
        indices_mm = views["indices"]
        arc_cap = 2 * m
        arc_ptr = 0
        vertex = 0
        row_tokens: list = []
        row_counts: list = []
        row_lines: list = []

        def _flush():
            nonlocal arc_ptr, vertex
            if not row_counts:
                return
            counts = np.asarray(row_counts, dtype=np.int64)
            repeated_lines = np.repeat(
                np.asarray(row_lines, dtype=np.int64), counts
            )
            ids = _ids_from_tokens(
                row_tokens, repeated_lines, dtype,
                source=source, what="neighbor id",
            )
            ids = ids - 1  # METIS is 1-indexed
            bad = (ids < 0) | (ids >= n)
            if bad.any():
                i = int(np.argmax(bad))
                raise GraphError(
                    f"{source}:{int(repeated_lines[i])}: neighbor id out "
                    f"of range 1..{n}"
                )
            row_of = np.repeat(
                np.arange(vertex, vertex + counts.shape[0], dtype=np.int64),
                counts,
            )
            loops = ids == row_of
            if loops.any():
                i = int(np.argmax(loops))
                raise GraphError(
                    f"{source}:{int(repeated_lines[i])}: self-loops are "
                    "not allowed"
                )
            if arc_ptr + ids.shape[0] > arc_cap:
                raise GraphError(
                    f"{source}: adjacency lists hold more than the "
                    f"{arc_cap} arcs the header admits"
                )
            indices_mm[arc_ptr : arc_ptr + ids.shape[0]] = ids
            offsets = arc_ptr + np.cumsum(counts)
            indptr_mm[vertex + 1 : vertex + 1 + counts.shape[0]] = offsets
            arc_ptr = int(offsets[-1])
            vertex += int(counts.shape[0])
            row_tokens.clear()
            row_counts.clear()
            row_lines.clear()

        body_rows = 0
        for line_no, stripped in lines:
            if body_rows >= n:
                if not stripped:
                    continue  # trailing blank lines are tolerated
                raise GraphError(
                    f"{source}:{line_no}: more than {n} vertex lines"
                )
            tokens = stripped.split()
            row_tokens.extend(tokens)
            row_counts.append(len(tokens))
            row_lines.append(line_no)
            body_rows += 1
            if len(row_counts) >= chunk_lines or len(row_tokens) >= chunk_lines * 4:
                _flush()
        _flush()
        if body_rows < n:
            raise GraphError(
                f"{source}: truncated METIS input — expected {n} vertex "
                f"lines, found {body_rows}"
            )
        scratch = np.memmap(
            scratch_path, dtype=np.int64, mode="w+", shape=(max(n, 1),)
        )
        kept = _sort_dedup_compact(indptr_mm, indices_mm, scratch, n, chunk_arcs)
        _rebuild_indptr(indptr_mm, scratch, n, chunk_arcs)
        if kept % 2 or kept // 2 != m:
            raise GraphError(
                f"{source}: METIS edge count mismatch — header says {m}, "
                f"parsed {kept // 2 if kept % 2 == 0 else kept / 2}"
            )
        _check_symmetry_mmap(indptr_mm, indices_mm, n, chunk_arcs, source)
        del scratch, views, indptr_mm, indices_mm
        layout.shrink("indices", kept)
    except BaseException:
        layout.close()
        for leftover in (scratch_path, str(out_path)):
            try:
                os.unlink(leftover)
            except OSError:
                pass
        raise
    try:
        os.unlink(scratch_path)
    except OSError:
        pass
    return layout.open_graph(owns_file=owns_file)


def stream_graph_to_mmap(
    path: str | Path,
    out_path: str | Path,
    format: str = "auto",
    *,
    owns_file: bool = False,
    chunk_lines: int = _STREAM_CHUNK_LINES,
    chunk_arcs: int = _STREAM_CHUNK_ARCS,
    id_limit: int = _INT32_LIMIT,
):
    """Stream a graph file into a memmap CSR, dispatching on format.

    The out-of-core counterpart of :func:`load_graph`: only the text
    formats with a streaming reader are supported (``edges``, ``metis``).
    ``format="auto"`` maps the file extension first and then sniffs the
    header: three or more header tokens mean METIS, two mean an edge list
    (files valid as both should pass an explicit ``format``, as the
    two-parser cross-check of :func:`parse_graph` would defeat streaming).
    """
    source = str(path)
    if format == "auto":
        format = format_for_path(path)
    if format == "auto":
        lines = _metis_physical_lines(source, source)
        header_entry = next(
            (
                (no, line.split())
                for no, line in lines
                if line and not line.startswith("#")
            ),
            None,
        )
        lines.close()
        if header_entry is None:
            raise GraphError(f"{source}: empty graph input")
        format = "metis" if len(header_entry[1]) >= 3 else "edges"
    kwargs = dict(
        owns_file=owns_file, chunk_lines=chunk_lines,
        chunk_arcs=chunk_arcs, id_limit=id_limit,
    )
    if format == "edges":
        return stream_edge_list_to_mmap(path, out_path, **kwargs)
    if format == "metis":
        return stream_metis_to_mmap(path, out_path, **kwargs)
    raise ParameterError(
        f"streaming ingest supports formats 'edges' and 'metis', "
        f"got {format!r}"
    )
