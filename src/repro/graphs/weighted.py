"""Weighted CSR graphs — substrate for the paper's Section 6 extension.

The core algorithm targets unweighted graphs; Section 6 observes the analysis
extends to positive edge weights via shifted *Dijkstra* instead of shifted
BFS.  :class:`WeightedCSRGraph` mirrors :class:`~repro.graphs.csr.CSRGraph`
with a parallel ``weights`` array aligned to ``indices``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError, ParameterError
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph

__all__ = [
    "WeightedCSRGraph",
    "weighted_from_edges",
    "uniform_weights",
    "weights_by_name",
    "WEIGHT_SCHEMES",
]


class WeightedCSRGraph(CSRGraph):
    """Undirected graph with positive edge weights in CSR layout.

    ``weights[i]`` is the weight of arc ``indices[i]``; the two arcs of an
    undirected edge must carry equal weight (validated on construction).
    """

    __slots__ = ("_weights",)

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        super().__init__(indptr, indices, validate=validate)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if weights.shape != self.indices.shape:
            raise GraphError("weights must align with indices")
        if validate:
            if weights.size and weights.min() <= 0:
                raise GraphError("edge weights must be strictly positive")
            self._check_symmetric_weights(weights)
        weights.setflags(write=False)
        self._weights = weights

    def _check_symmetric_weights(self, weights: np.ndarray) -> None:
        """Verify both arcs of every edge carry the same weight."""
        n = self.num_vertices
        src = self.arc_sources()
        dst = self.indices
        keys = np.minimum(src, dst) * n + np.maximum(src, dst)
        order = np.argsort(keys, kind="stable")
        w_sorted = weights[order]
        # After sorting by undirected key, arcs pair up adjacently.
        if not np.allclose(w_sorted[0::2], w_sorted[1::2]):
            raise GraphError("arc weights are not symmetric")

    def csr_arrays(self) -> dict[str, np.ndarray]:
        """Defining arrays for shared-memory transport (adds ``weights``)."""
        arrays = super().csr_arrays()
        arrays["weights"] = self._weights
        return arrays

    @property
    def weights(self) -> np.ndarray:
        """Read-only arc weight array aligned to :attr:`indices`."""
        return self._weights

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights of the arcs leaving ``v``, aligned to ``neighbors(v)``."""
        return self._weights[self.indptr[v] : self.indptr[v + 1]]

    def edge_weight_array(self) -> np.ndarray:
        """Weights aligned to :meth:`edge_array` rows."""
        src = self.arc_sources()
        keep = src < self.indices
        edges = np.stack([src[keep], self.indices[keep]], axis=1)
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        return self._weights[keep][order]

    def total_weight(self) -> float:
        """Sum of undirected edge weights."""
        return float(self._weights.sum() / 2.0)

    def unweighted(self) -> CSRGraph:
        """Drop weights (topology only)."""
        return CSRGraph(self.indptr, self.indices, validate=False)

    def __repr__(self) -> str:
        return (
            f"WeightedCSRGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"total_weight={self.total_weight():.6g})"
        )


def weighted_from_edges(
    num_vertices: int,
    edges: np.ndarray,
    weights: np.ndarray,
) -> WeightedCSRGraph:
    """Build a weighted graph from ``(m, 2)`` edges and per-edge weights."""
    edges = np.asarray(edges, dtype=VERTEX_DTYPE).reshape(-1, 2)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape[0] != edges.shape[0]:
        raise GraphError("one weight per edge required")
    if edges.shape[0]:
        if edges.min() < 0 or edges.max() >= num_vertices:
            raise GraphError("edge endpoints out of range")
        if np.any(edges[:, 0] == edges[:, 1]):
            raise GraphError("self-loops are not allowed")
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    keys = lo * num_vertices + hi
    uniq, first = np.unique(keys, return_index=True)
    if uniq.size != keys.size:
        raise GraphError("duplicate edges in weighted edge list")
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    w = np.concatenate([weights, weights])
    counts = np.bincount(src, minlength=num_vertices).astype(VERTEX_DTYPE)
    indptr = np.zeros(num_vertices + 1, dtype=VERTEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    order = np.lexsort((dst, src))
    return WeightedCSRGraph(indptr, dst[order], w[order])


def uniform_weights(graph: CSRGraph, weight: float = 1.0) -> WeightedCSRGraph:
    """Lift an unweighted graph to a weighted one with constant weight."""
    if weight <= 0:
        raise GraphError("weight must be positive")
    return WeightedCSRGraph(
        graph.indptr,
        graph.indices,
        np.full(graph.num_arcs, weight, dtype=np.float64),
        validate=False,
    )


#: Weight-scheme names accepted by :func:`weights_by_name` (CLI ``--weights``).
WEIGHT_SCHEMES = {
    "unit": "constant weight (default 1.0): unit:<w>",
    "uniform": "i.i.d. uniform per edge: uniform:<lo>,<hi>",
    "exp": "i.i.d. exponential per edge: exp:<mean>",
}


def weights_by_name(
    graph: CSRGraph, spec: str, *, seed: int | None = None
) -> WeightedCSRGraph:
    """Lift ``graph`` to a :class:`WeightedCSRGraph` from a spec string.

    Grammar mirrors the generator specs of
    :func:`repro.graphs.generators.by_name`: ``scheme[:arg1[,arg2]]`` with
    the schemes of :data:`WEIGHT_SCHEMES` — e.g. ``unit``, ``unit:2.5``,
    ``uniform:0.5,2.0``, ``exp:1.0``.  Random schemes draw one weight per
    undirected edge, deterministically in ``seed``.
    """
    name, _, argstr = spec.partition(":")
    name = name.strip().lower()
    if name not in WEIGHT_SCHEMES:
        raise ParameterError(
            f"unknown weight scheme {name!r}; choices: {sorted(WEIGHT_SCHEMES)}"
        )
    try:
        args = [float(tok) for tok in argstr.split(",") if tok.strip()]
    except ValueError as exc:
        raise ParameterError(f"bad weight spec {spec!r}: {exc}") from exc
    if name == "unit":
        weight = args[0] if args else 1.0
        return uniform_weights(graph, weight)
    rng = np.random.default_rng(seed)
    m = graph.num_edges
    if name == "uniform":
        if len(args) != 2:
            raise ParameterError(
                f"weight scheme 'uniform' needs lo,hi — got {spec!r}"
            )
        lo, hi = args
        if not 0 < lo <= hi:
            raise ParameterError("need 0 < lo <= hi for uniform weights")
        weights = rng.uniform(lo, hi, size=m)
    else:  # exp
        if len(args) != 1:
            raise ParameterError(
                f"weight scheme 'exp' needs a mean — got {spec!r}"
            )
        (mean,) = args
        if mean <= 0:
            raise ParameterError("need mean > 0 for exponential weights")
        # Shift away from zero: edge weights must be strictly positive.
        weights = rng.exponential(mean, size=m) + 1e-9
    return weighted_from_edges(graph.num_vertices, graph.edge_array(), weights)
