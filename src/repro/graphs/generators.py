"""Synthetic graph families used throughout the benchmarks.

The paper's Figure 1 uses a square grid; its analysis highlights two
adversarial extremes — the path ("the number of pieces ... may be large
(e.g. the line graph)") and the complete graph ("a single piece may contain
the entire graph").  The benchmark harness sweeps these plus standard random
families (Erdős–Rényi, random regular, Barabási–Albert, SBM) to exercise the
cut-fraction and diameter bounds across very different degree and distance
distributions.

All generators are deterministic given ``seed`` and return
:class:`~repro.graphs.csr.CSRGraph`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graphs.build import from_edges
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_2d",
    "torus_2d",
    "grid_3d",
    "binary_tree",
    "caterpillar",
    "hypercube",
    "erdos_renyi",
    "random_regular",
    "barabasi_albert",
    "stochastic_block_model",
    "GENERATORS",
    "by_name",
]


def path_graph(n: int) -> CSRGraph:
    """Path on ``n`` vertices — the worst case for sequential ball growing."""
    _require_positive(n, "n")
    ids = np.arange(n - 1, dtype=VERTEX_DTYPE)
    edges = np.stack([ids, ids + 1], axis=1)
    return from_edges(n, edges, dedup=False)


def cycle_graph(n: int) -> CSRGraph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ParameterError(f"cycle needs n >= 3, got {n}")
    ids = np.arange(n, dtype=VERTEX_DTYPE)
    edges = np.stack([ids, (ids + 1) % n], axis=1)
    return from_edges(n, edges, dedup=False)


def complete_graph(n: int) -> CSRGraph:
    """Complete graph K_n — diameter 1, the single-piece extreme."""
    _require_positive(n, "n")
    iu = np.triu_indices(n, k=1)
    edges = np.stack([iu[0].astype(VERTEX_DTYPE), iu[1].astype(VERTEX_DTYPE)], axis=1)
    return from_edges(n, edges, dedup=False)


def star_graph(n: int) -> CSRGraph:
    """Star: vertex 0 joined to vertices ``1..n-1``."""
    _require_positive(n, "n")
    if n == 1:
        return from_edges(1, np.zeros((0, 2), dtype=VERTEX_DTYPE))
    leaves = np.arange(1, n, dtype=VERTEX_DTYPE)
    edges = np.stack([np.zeros_like(leaves), leaves], axis=1)
    return from_edges(n, edges, dedup=False)


def grid_2d(rows: int, cols: int) -> CSRGraph:
    """``rows × cols`` square grid (4-neighbour) — the Figure 1 workload.

    Vertex ``(r, c)`` has id ``r * cols + c``.
    """
    _require_positive(rows, "rows")
    _require_positive(cols, "cols")
    n = rows * cols
    r, c = np.meshgrid(
        np.arange(rows, dtype=VERTEX_DTYPE),
        np.arange(cols, dtype=VERTEX_DTYPE),
        indexing="ij",
    )
    vid = r * cols + c
    right_src = vid[:, :-1].ravel()
    right_dst = vid[:, 1:].ravel()
    down_src = vid[:-1, :].ravel()
    down_dst = vid[1:, :].ravel()
    edges = np.stack(
        [
            np.concatenate([right_src, down_src]),
            np.concatenate([right_dst, down_dst]),
        ],
        axis=1,
    )
    return from_edges(n, edges, dedup=False)


def torus_2d(rows: int, cols: int) -> CSRGraph:
    """``rows × cols`` grid with wraparound edges (vertex-transitive)."""
    if rows < 3 or cols < 3:
        raise ParameterError("torus needs rows, cols >= 3 to avoid multi-edges")
    n = rows * cols
    r, c = np.meshgrid(
        np.arange(rows, dtype=VERTEX_DTYPE),
        np.arange(cols, dtype=VERTEX_DTYPE),
        indexing="ij",
    )
    vid = (r * cols + c).ravel()
    right = (r * cols + (c + 1) % cols).ravel()
    down = (((r + 1) % rows) * cols + c).ravel()
    edges = np.stack(
        [np.concatenate([vid, vid]), np.concatenate([right, down])], axis=1
    )
    return from_edges(n, edges, dedup=False)


def grid_3d(nx: int, ny: int, nz: int) -> CSRGraph:
    """``nx × ny × nz`` cubic grid (6-neighbour)."""
    for name, v in (("nx", nx), ("ny", ny), ("nz", nz)):
        _require_positive(v, name)
    shape = (nx, ny, nz)
    vid = np.arange(nx * ny * nz, dtype=VERTEX_DTYPE).reshape(shape)
    pairs = []
    for axis in range(3):
        sl_a = [slice(None)] * 3
        sl_b = [slice(None)] * 3
        sl_a[axis] = slice(None, -1)
        sl_b[axis] = slice(1, None)
        pairs.append((vid[tuple(sl_a)].ravel(), vid[tuple(sl_b)].ravel()))
    src = np.concatenate([p[0] for p in pairs])
    dst = np.concatenate([p[1] for p in pairs])
    return from_edges(nx * ny * nz, np.stack([src, dst], axis=1), dedup=False)


def binary_tree(height: int) -> CSRGraph:
    """Complete binary tree of the given height (``2^(h+1) - 1`` vertices)."""
    if height < 0:
        raise ParameterError(f"height must be >= 0, got {height}")
    n = (1 << (height + 1)) - 1
    child = np.arange(1, n, dtype=VERTEX_DTYPE)
    parent = (child - 1) // 2
    return from_edges(n, np.stack([parent, child], axis=1), dedup=False)


def caterpillar(spine: int, legs_per_vertex: int) -> CSRGraph:
    """Caterpillar: a path of ``spine`` vertices, each with pendant leaves.

    A classic stress case for diameter-based decompositions: long backbone
    with high leaf volume.
    """
    _require_positive(spine, "spine")
    if legs_per_vertex < 0:
        raise ParameterError("legs_per_vertex must be >= 0")
    spine_ids = np.arange(spine, dtype=VERTEX_DTYPE)
    edges = [np.stack([spine_ids[:-1], spine_ids[1:]], axis=1)]
    n = spine
    if legs_per_vertex:
        leaf_ids = spine + np.arange(spine * legs_per_vertex, dtype=VERTEX_DTYPE)
        anchors = np.repeat(spine_ids, legs_per_vertex)
        edges.append(np.stack([anchors, leaf_ids], axis=1))
        n += spine * legs_per_vertex
    return from_edges(n, np.concatenate(edges, axis=0), dedup=False)


def hypercube(dim: int) -> CSRGraph:
    """``dim``-dimensional hypercube on ``2^dim`` vertices."""
    if dim < 0:
        raise ParameterError(f"dim must be >= 0, got {dim}")
    n = 1 << dim
    vid = np.arange(n, dtype=VERTEX_DTYPE)
    src_parts = []
    dst_parts = []
    for b in range(dim):
        mask = vid & (1 << b) == 0
        src_parts.append(vid[mask])
        dst_parts.append(vid[mask] | (1 << b))
    if not src_parts:
        return from_edges(n, np.zeros((0, 2), dtype=VERTEX_DTYPE))
    edges = np.stack(
        [np.concatenate(src_parts), np.concatenate(dst_parts)], axis=1
    )
    return from_edges(n, edges, dedup=False)


def erdos_renyi(n: int, p: float, *, seed: int = 0) -> CSRGraph:
    """G(n, p) via vectorised sampling of the upper triangle.

    For ``p > ~0.01`` samples the full triangle mask; for sparse regimes uses
    the geometric skipping method so memory stays ``O(m)``.
    """
    _require_positive(n, "n")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    total_pairs = n * (n - 1) // 2
    if p == 0.0 or total_pairs == 0:
        return from_edges(n, np.zeros((0, 2), dtype=VERTEX_DTYPE))
    if p >= 0.01 and total_pairs <= 50_000_000:
        iu0, iu1 = np.triu_indices(n, k=1)
        mask = rng.random(total_pairs) < p
        edges = np.stack(
            [iu0[mask].astype(VERTEX_DTYPE), iu1[mask].astype(VERTEX_DTYPE)],
            axis=1,
        )
        return from_edges(n, edges, dedup=False)
    # Sparse regime: skip-sampling of linearised pair indices.
    # Gap between successive present pairs is Geometric(p).
    expected = int(total_pairs * p)
    budget = max(16, int(expected + 6 * np.sqrt(expected + 1)) + 16)
    gaps = rng.geometric(p, size=budget)
    positions = np.cumsum(gaps) - 1
    positions = positions[positions < total_pairs]
    while positions.size and positions[-1] < total_pairs - 1:
        # Rarely the budget under-shoots; extend until the triangle is covered.
        extra = rng.geometric(p, size=budget)
        more = positions[-1] + np.cumsum(extra)
        positions = np.concatenate([positions, more[more < total_pairs]])
        if more[-1] >= total_pairs:
            break
    u, v = _linear_to_pair(positions.astype(np.int64), n)
    return from_edges(n, np.stack([u, v], axis=1), dedup=False)


def _linear_to_pair(k: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Map linear indices of the strict upper triangle to (row, col) pairs."""
    # Row r occupies indices [r*n - r(r+1)/2 ... ) ; invert via quadratic.
    kk = k.astype(np.float64)
    r = np.floor((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * kk)) / 2).astype(
        np.int64
    )
    # Guard against float rounding on the row boundary.
    row_start = r * n - r * (r + 1) // 2
    too_big = row_start > k
    r[too_big] -= 1
    row_start = r * n - r * (r + 1) // 2
    c = k - row_start + r + 1
    return r.astype(VERTEX_DTYPE), c.astype(VERTEX_DTYPE)


def random_regular(n: int, d: int, *, seed: int = 0, max_tries: int = 200) -> CSRGraph:
    """Random ``d``-regular graph via the configuration model with retries.

    Retries until a simple matching is found (no self-loops or duplicates),
    which for ``d = O(1)`` succeeds with constant probability per attempt.
    The result is close to uniform over simple d-regular graphs and serves as
    the expander-like family in the benchmarks.
    """
    _require_positive(n, "n")
    _require_positive(d, "d")
    if (n * d) % 2 != 0:
        raise ParameterError("n * d must be even for a d-regular graph")
    if d >= n:
        raise ParameterError("need d < n")
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), d)
    for _ in range(max_tries):
        perm = rng.permutation(stubs)
        u, v = perm[0::2], perm[1::2]
        if np.any(u == v):
            continue
        lo, hi = np.minimum(u, v), np.maximum(u, v)
        keys = lo * n + hi
        if np.unique(keys).size != keys.size:
            continue
        return from_edges(n, np.stack([u, v], axis=1), dedup=False)
    raise ParameterError(
        f"failed to sample a simple {d}-regular graph on {n} vertices "
        f"in {max_tries} tries"
    )


def barabasi_albert(n: int, m_attach: int, *, seed: int = 0) -> CSRGraph:
    """Barabási–Albert preferential attachment (power-law degrees).

    Starts from a clique on ``m_attach + 1`` vertices; each new vertex
    attaches to ``m_attach`` distinct existing vertices chosen proportionally
    to degree (implemented with the repeated-endpoints urn trick).
    """
    _require_positive(n, "n")
    _require_positive(m_attach, "m_attach")
    if n <= m_attach:
        raise ParameterError("need n > m_attach")
    rng = np.random.default_rng(seed)
    urn: list[int] = []
    edges: list[tuple[int, int]] = []
    core = m_attach + 1
    for u in range(core):
        for v in range(u + 1, core):
            edges.append((u, v))
            urn.extend((u, v))
    for new in range(core, n):
        targets: set[int] = set()
        while len(targets) < m_attach:
            pick = urn[rng.integers(len(urn))]
            targets.add(int(pick))
        for t in targets:
            edges.append((new, t))
            urn.extend((new, t))
    return from_edges(n, np.asarray(edges, dtype=VERTEX_DTYPE), dedup=False)


def stochastic_block_model(
    block_sizes: list[int],
    p_in: float,
    p_out: float,
    *,
    seed: int = 0,
) -> CSRGraph:
    """Stochastic block model — planted community structure.

    Benchmarks use it to check that the decomposition's cut fraction tracks
    β rather than the planted structure (the LDD guarantee is worst-case).
    """
    if not block_sizes:
        raise ParameterError("need at least one block")
    for s in block_sizes:
        _require_positive(s, "block size")
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= p <= 1.0:
            raise ParameterError(f"{name} must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    offsets = np.concatenate([[0], np.cumsum(block_sizes)])
    n = int(offsets[-1])
    block_of = np.zeros(n, dtype=VERTEX_DTYPE)
    for b, (lo, hi) in enumerate(zip(offsets[:-1], offsets[1:])):
        block_of[lo:hi] = b
    iu0, iu1 = np.triu_indices(n, k=1)
    same = block_of[iu0] == block_of[iu1]
    prob = np.where(same, p_in, p_out)
    mask = rng.random(iu0.shape[0]) < prob
    edges = np.stack(
        [iu0[mask].astype(VERTEX_DTYPE), iu1[mask].astype(VERTEX_DTYPE)], axis=1
    )
    return from_edges(n, edges, dedup=False)


def _require_positive(value: int, name: str) -> None:
    if value <= 0:
        raise ParameterError(f"{name} must be positive, got {value}")


#: Named constructors used by the CLI and the benchmark sweeps.
GENERATORS = {
    "path": path_graph,
    "cycle": cycle_graph,
    "complete": complete_graph,
    "star": star_graph,
    "grid": grid_2d,
    "torus": torus_2d,
    "grid3d": grid_3d,
    "btree": binary_tree,
    "caterpillar": caterpillar,
    "hypercube": hypercube,
    "er": erdos_renyi,
    "regular": random_regular,
    "ba": barabasi_albert,
    "sbm": stochastic_block_model,
}


def by_name(spec: str, *, seed: int = 0) -> CSRGraph:
    """Parse a generator spec string like ``grid:100x100`` or ``er:500,0.02``.

    Grammar: ``name:arg1,arg2,...`` where grid-like families also accept
    ``AxB`` shorthand.  Used by the CLI and by benchmark parameterisation.
    """
    name, _, argstr = spec.partition(":")
    name = name.strip().lower()
    if name not in GENERATORS:
        raise ParameterError(
            f"unknown generator {name!r}; choices: {sorted(GENERATORS)}"
        )
    fn = GENERATORS[name]
    if not argstr:
        raise ParameterError(f"generator spec {spec!r} is missing arguments")
    argstr = argstr.replace("x", ",")
    args: list[float] = []
    for tok in argstr.split(","):
        tok = tok.strip()
        args.append(float(tok) if ("." in tok or "e" in tok) else int(tok))
    if name == "sbm":
        # sbm:<k>,<size>,<p_in>,<p_out> -> k equal blocks
        k, size, p_in, p_out = args
        return fn([int(size)] * int(k), p_in, p_out, seed=seed)
    try:
        return fn(*args, seed=seed)  # type: ignore[arg-type]
    except TypeError:
        return fn(*(int(a) for a in args))  # deterministic families
