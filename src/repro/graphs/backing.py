"""Registry mapping graph *instances* to their storage backing kind.

A :class:`~repro.graphs.csr.CSRGraph` does not know where its arrays live —
plain RAM, a ``multiprocessing.shared_memory`` segment, or a memory-mapped
file.  The runtime needs to know (the pool picks a zero-copy registration
path for memmap graphs instead of copying them into shared memory, and
``pool.stats()`` / the serve ``hello`` advertise the resident kinds), so
the wrappers that create non-RAM graphs register them here.

Keys are object identities, not graph values: ``CSRGraph.__eq__`` is
content-based, and two equal-but-distinct graphs (one in RAM, one mmapped)
must not alias each other's backing record.  Entries self-evict through a
``weakref`` callback when the graph is collected.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any

__all__ = ["BACKING_KINDS", "register_backing", "backing_kind", "backing_handle"]

#: Every backing kind a graph may advertise, sorted.
BACKING_KINDS = ("mmap", "ram", "shm")

_LOCK = threading.Lock()
#: id(graph) -> (weakref to graph, kind, handle).  The weakref both keeps
#: the entry honest (ids are recycled; the ref must still point at the
#: same object) and evicts it when the graph dies.
_REGISTRY: dict[int, tuple[weakref.ref, str, Any]] = {}


def register_backing(graph, kind: str, handle: Any = None) -> None:
    """Record that ``graph``'s arrays live in a ``kind`` backing.

    ``handle`` optionally carries the owning wrapper (e.g. a
    :class:`~repro.graphs.mmapcsr.MmapCSR`) so the runtime can reach
    lifecycle operations like unlink-on-discard without a parallel map.
    """
    if kind not in BACKING_KINDS:
        raise ValueError(f"unknown backing kind {kind!r}; expected one of {BACKING_KINDS}")
    key = id(graph)

    def _evict(_ref, _key=key, _lock=_LOCK, _registry=_REGISTRY) -> None:
        # default-arg bindings: module globals may already be None when
        # this fires during interpreter shutdown
        with _lock:
            _registry.pop(_key, None)

    with _LOCK:
        _REGISTRY[key] = (weakref.ref(graph, _evict), kind, handle)


def _lookup(graph) -> tuple[str, Any] | None:
    entry = _REGISTRY.get(id(graph))
    if entry is None:
        return None
    ref, kind, handle = entry
    if ref() is not graph:  # stale id reuse — treat as unregistered
        return None
    return kind, handle


def backing_kind(graph) -> str:
    """The backing kind of ``graph``: ``"ram"`` unless registered otherwise."""
    with _LOCK:
        entry = _lookup(graph)
    return entry[0] if entry is not None else "ram"


def backing_handle(graph) -> Any:
    """The wrapper registered alongside ``graph``'s backing, or ``None``."""
    with _LOCK:
        entry = _lookup(graph)
    return entry[1] if entry is not None else None
