"""Immutable CSR (compressed sparse row) graph structure.

The whole library operates on :class:`CSRGraph`: an undirected, unweighted
graph stored as two NumPy arrays, the standard representation used by
shared-memory parallel graph frameworks (Ligra, GBBS) that this reproduction
models.  Both arc directions of every undirected edge are stored, so vertex
``v``'s neighbourhood is the contiguous slice
``indices[indptr[v]:indptr[v + 1]]`` — the layout that makes level-synchronous
frontier expansion a pure gather/scatter.

Construction helpers live in :mod:`repro.graphs.build`; synthetic families in
:mod:`repro.graphs.generators`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphError

__all__ = ["CSRGraph"]

#: dtype used for vertex ids throughout the library.
VERTEX_DTYPE = np.int64


class CSRGraph:
    """An immutable undirected, unweighted graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; the arcs of vertex ``v`` occupy
        ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        ``int64`` array of length ``2m`` holding neighbour ids.  Every
        undirected edge ``{u, v}`` must appear as both arc ``u→v`` and arc
        ``v→u``.
    validate:
        When true (the default) the arrays are checked for structural
        validity; pass ``False`` only from trusted internal constructors.

    Notes
    -----
    Instances are logically immutable: the underlying arrays are marked
    read-only, so accidental mutation raises immediately rather than
    corrupting shared state between algorithm stages.
    """

    # __weakref__ lets caches key metadata (e.g. the pipeline layer's
    # content digests) on graph objects without pinning them in memory.
    __slots__ = ("_indptr", "_indices", "_num_vertices", "_num_edges",
                 "__weakref__")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=VERTEX_DTYPE)
        indices = np.ascontiguousarray(indices, dtype=VERTEX_DTYPE)
        if validate:
            _validate_csr(indptr, indices)
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self._indptr = indptr
        self._indices = indices
        self._num_vertices = int(indptr.shape[0] - 1)
        self._num_edges = int(indices.shape[0] // 2)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def indptr(self) -> np.ndarray:
        """Read-only ``int64`` offsets array of length ``n + 1``."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only ``int64`` neighbour array of length ``2m``."""
        return self._indices

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges ``m`` (half the stored arcs)."""
        return self._num_edges

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs, ``2m``."""
        return int(self._indices.shape[0])

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees(self) -> np.ndarray:
        """Vector of all vertex degrees (length ``n``)."""
        return np.diff(self._indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of ``v``'s neighbour ids."""
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present.

        Uses binary search when the adjacency slice is sorted-compatible;
        CSR graphs built through :mod:`repro.graphs.build` always sort
        neighbour lists.
        """
        if not (0 <= u < self._num_vertices and 0 <= v < self._num_vertices):
            return False
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.shape[0] and nbrs[pos] == v)

    # ------------------------------------------------------------------
    # edge views
    # ------------------------------------------------------------------
    def arc_sources(self) -> np.ndarray:
        """Source vertex of every stored arc (length ``2m``).

        Computed as ``repeat(arange(n), degrees)`` — the inverse of the CSR
        offsets.  Useful for fully vectorised edge-parallel computations.
        """
        return np.repeat(
            np.arange(self._num_vertices, dtype=VERTEX_DTYPE), self.degrees()
        )

    def edge_array(self) -> np.ndarray:
        """``(m, 2)`` array of undirected edges with ``u < v`` in each row.

        Rows are sorted lexicographically, making the output canonical: two
        graphs are equal iff their edge arrays are equal.
        """
        src = self.arc_sources()
        dst = self._indices
        keep = src < dst
        edges = np.stack([src[keep], dst[keep]], axis=1)
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        return edges[order]

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` tuples with ``u < v``."""
        for u, v in self.edge_array():
            yield int(u), int(v)

    # ------------------------------------------------------------------
    # array transport (shared-memory runtime)
    # ------------------------------------------------------------------
    def csr_arrays(self) -> dict[str, np.ndarray]:
        """The defining arrays keyed by constructor parameter name.

        This is the transport contract used by :mod:`repro.runtime.shm` to
        place a graph in shared memory and reattach it zero-copy in worker
        processes; subclasses extend the dict with their extra arrays
        (:class:`~repro.graphs.weighted.WeightedCSRGraph` adds ``weights``).
        """
        return {"indptr": self._indptr, "indices": self._indices}

    @classmethod
    def from_arrays(
        cls, arrays: dict[str, np.ndarray], *, validate: bool = False
    ) -> "CSRGraph":
        """Rebuild a graph from a :meth:`csr_arrays`-shaped dict.

        With ``validate=False`` (the default — the arrays came from a graph
        that was already validated) construction is zero-copy when the
        arrays are contiguous and correctly typed, which is what makes
        shared-memory reattachment free.
        """
        return cls(validate=validate, **arrays)

    # ------------------------------------------------------------------
    # dunder / misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self._num_vertices == other._num_vertices
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash(
            (self._num_vertices, self._num_edges, self._indices[:16].tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"CSRGraph(n={self._num_vertices}, m={self._num_edges})"
        )

    def memory_bytes(self) -> int:
        """Bytes used by the CSR arrays (for benchmark reporting)."""
        return int(self._indptr.nbytes + self._indices.nbytes)


def _validate_csr(indptr: np.ndarray, indices: np.ndarray) -> None:
    """Raise :class:`GraphError` unless the arrays form a valid symmetric CSR."""
    if indptr.ndim != 1 or indices.ndim != 1:
        raise GraphError("indptr and indices must be one-dimensional arrays")
    if indptr.shape[0] < 1:
        raise GraphError("indptr must have length >= 1 (n + 1 entries)")
    if indptr[0] != 0:
        raise GraphError(f"indptr[0] must be 0, got {indptr[0]}")
    if indptr[-1] != indices.shape[0]:
        raise GraphError(
            f"indptr[-1] ({indptr[-1]}) must equal len(indices) "
            f"({indices.shape[0]})"
        )
    if np.any(np.diff(indptr) < 0):
        raise GraphError("indptr must be non-decreasing")
    n = indptr.shape[0] - 1
    if indices.shape[0]:
        if indices.min() < 0 or indices.max() >= n:
            raise GraphError("indices contain out-of-range vertex ids")
    if indices.shape[0] % 2 != 0:
        raise GraphError(
            "odd number of arcs: undirected CSR must store both directions"
        )
    # Symmetry check: the multiset of (src, dst) arcs must equal the multiset
    # of (dst, src) arcs.  Sorting both sides gives a vectorised comparison.
    src = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), np.diff(indptr))
    fwd = np.sort(src * n + indices)
    rev = np.sort(indices * n + src)
    if not np.array_equal(fwd, rev):
        raise GraphError("adjacency is not symmetric (missing reverse arcs)")
    if fwd.shape[0] and np.any(fwd[1:] == fwd[:-1]):
        raise GraphError("parallel edges are not allowed (simple graphs only)")
    if np.any(src == indices):
        raise GraphError("self-loops are not allowed")
