"""Graph transformations and queries on CSR graphs.

These are the structural operations the decomposition pipeline composes:
induced subgraphs (verifying *strong* diameter requires the piece-induced
subgraph), quotient/contraction (AKPW low-stretch trees contract pieces into
supervertices each round), and connected components (validity checks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.build import from_arcs, from_edges
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph

__all__ = [
    "induced_subgraph",
    "SubgraphResult",
    "connected_components",
    "num_components",
    "is_connected",
    "quotient_graph",
    "QuotientResult",
    "cut_edge_mask",
    "count_cut_edges",
    "degree_statistics",
]


@dataclass(frozen=True, eq=False)
class SubgraphResult:
    """An induced subgraph plus the vertex-id mappings in both directions."""

    graph: CSRGraph
    #: original id of each subgraph vertex (length = subgraph n).
    original_ids: np.ndarray
    #: new id for each original vertex, −1 if not in the subgraph (length n).
    new_ids: np.ndarray


def induced_subgraph(graph: CSRGraph, vertices: np.ndarray) -> SubgraphResult:
    """Extract the subgraph induced by ``vertices``.

    Fully vectorised: arcs whose endpoints both lie in the vertex set are
    kept and relabelled through a lookup table.
    """
    vertices = np.unique(np.asarray(vertices, dtype=VERTEX_DTYPE))
    if vertices.size and (
        vertices[0] < 0 or vertices[-1] >= graph.num_vertices
    ):
        raise GraphError("subgraph vertex ids out of range")
    new_ids = np.full(graph.num_vertices, -1, dtype=VERTEX_DTYPE)
    new_ids[vertices] = np.arange(vertices.size, dtype=VERTEX_DTYPE)
    src = graph.arc_sources()
    dst = graph.indices
    keep = (new_ids[src] >= 0) & (new_ids[dst] >= 0)
    sub = from_arcs(vertices.size, new_ids[src[keep]], new_ids[dst[keep]])
    return SubgraphResult(graph=sub, original_ids=vertices, new_ids=new_ids)


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Label vertices by connected component, labels dense in ``0..k−1``.

    Delegates to ``scipy.sparse.csgraph`` (union-find in C): component
    labelling is a substrate operation, not part of the paper's contribution,
    so we use the fastest exact primitive available.  Labels are renumbered
    by smallest contained vertex id so the output is deterministic.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=VERTEX_DTYPE)
    if graph.num_arcs == 0:
        return np.arange(n, dtype=VERTEX_DTYPE)
    from repro.graphs.backing import backing_kind

    if backing_kind(graph) == "mmap":
        # scipy's csr_matrix copies the index arrays (and may downcast
        # them), materialising O(m) in RAM — a BFS sweep streams the
        # adjacency instead and produces the identical labelling
        # (components numbered by smallest contained vertex).
        return _components_bfs(graph)
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components as _scipy_cc

    mat = csr_matrix(
        (
            np.ones(graph.num_arcs, dtype=np.int8),
            graph.indices,
            graph.indptr,
        ),
        shape=(n, n),
    )
    _, raw = _scipy_cc(mat, directed=False)
    # Renumber by first appearance for a canonical labelling.
    _, first = np.unique(raw, return_index=True)
    order = np.argsort(first)
    remap = np.empty_like(order)
    remap[order] = np.arange(order.size)
    return remap[raw].astype(VERTEX_DTYPE)


def _components_bfs(graph: CSRGraph) -> np.ndarray:
    """Component labels via BFS sweeps — O(n) resident, arcs streamed."""
    from repro.bfs.sequential import multi_source_bfs

    n = graph.num_vertices
    labels = np.full(n, -1, dtype=VERTEX_DTYPE)
    next_label = 0
    for root in range(n):
        if labels[root] >= 0:
            continue
        res = multi_source_bfs(graph, np.asarray([root], dtype=np.int64))
        labels[res.dist >= 0] = next_label
        next_label += 1
    return labels


def num_components(graph: CSRGraph) -> int:
    """Number of connected components."""
    if graph.num_vertices == 0:
        return 0
    return int(connected_components(graph).max()) + 1


def is_connected(graph: CSRGraph) -> bool:
    """Whether the graph is connected (empty graph counts as connected)."""
    return graph.num_vertices <= 1 or num_components(graph) == 1


@dataclass(frozen=True, eq=False)
class QuotientResult:
    """Result of contracting clusters into supervertices.

    ``graph`` is simple (parallel edges collapsed, self-loops dropped).
    ``edge_multiplicity[i]`` counts how many original edges the i-th quotient
    edge represents, aligned with ``graph.edge_array()`` order.
    ``representative_edge`` maps each quotient edge to one original endpoint
    pair ``(u, v)`` realising it — needed by spanner construction, which must
    add a concrete original edge per cluster pair.
    """

    graph: CSRGraph
    edge_multiplicity: np.ndarray
    representative_edge: np.ndarray


#: arcs per block when the quotient streams over a memmap graph.
_QUOTIENT_CHUNK_ARCS = 4 * 1024 * 1024


def quotient_graph(
    graph: CSRGraph,
    labels: np.ndarray,
    *,
    chunk_arcs: int | None = None,
) -> QuotientResult:
    """Contract each label class to a supervertex.

    ``labels`` must be dense ``0..k−1`` over all vertices (as produced by the
    decomposition assignment after compaction).

    Memmap-backed graphs (and any call passing ``chunk_arcs``) are
    contracted by a streaming row-block scan that never materialises the
    full edge array — peak memory is one arc block plus the quotient
    itself, not ``O(m)``.  The result is bit-identical to the in-memory
    path: adjacency rows are sorted, so upper-triangle arcs in row-major
    order *are* the canonical ``edge_array()`` order, and per-block
    uniques merge associatively (first representative wins, counts sum).
    """
    labels = np.asarray(labels, dtype=VERTEX_DTYPE)
    if labels.shape[0] != graph.num_vertices:
        raise GraphError("labels length must equal num_vertices")
    k = int(labels.max()) + 1 if labels.size else 0
    if labels.size and labels.min() < 0:
        raise GraphError("labels must be non-negative")
    if graph.num_arcs == 0:
        return QuotientResult(
            graph=from_edges(k, np.zeros((0, 2), dtype=VERTEX_DTYPE)),
            edge_multiplicity=np.zeros(0, dtype=np.int64),
            representative_edge=np.zeros((0, 2), dtype=VERTEX_DTYPE),
        )
    if chunk_arcs is None:
        from repro.graphs.backing import backing_kind

        if backing_kind(graph) == "mmap":
            chunk_arcs = _QUOTIENT_CHUNK_ARCS
    if chunk_arcs is not None:
        return _quotient_streamed(graph, labels, k, int(chunk_arcs))
    edges = graph.edge_array()
    lu = labels[edges[:, 0]]
    lv = labels[edges[:, 1]]
    cross = lu != lv
    lo = np.minimum(lu[cross], lv[cross])
    hi = np.maximum(lu[cross], lv[cross])
    orig = edges[cross]
    keys = lo * k + hi
    uniq_keys, first_idx, counts = np.unique(
        keys, return_index=True, return_counts=True
    )
    return _quotient_result(k, uniq_keys, counts, orig[first_idx])


def _quotient_result(
    k: int, keys: np.ndarray, counts: np.ndarray, reps: np.ndarray
) -> QuotientResult:
    q_edges = np.stack([keys // k, keys % k], axis=1).astype(VERTEX_DTYPE)
    qg = from_edges(k, q_edges, dedup=False)
    # from_edges sorts edges canonically; keys are already sorted by
    # (lo, hi) so multiplicities/representatives align with edge_array order.
    return QuotientResult(
        graph=qg,
        edge_multiplicity=counts.astype(np.int64),
        representative_edge=np.asarray(reps, dtype=VERTEX_DTYPE),
    )


def _quotient_streamed(
    graph: CSRGraph, labels: np.ndarray, k: int, chunk_arcs: int
) -> QuotientResult:
    """Row-block streaming contraction (see :func:`quotient_graph`)."""
    indptr = graph.indptr
    indices = graph.indices
    n = graph.num_vertices
    acc_keys: np.ndarray | None = None
    acc_counts: np.ndarray | None = None
    acc_reps: np.ndarray | None = None
    v0 = 0
    while v0 < n:
        p0 = int(indptr[v0])
        # Largest row range fitting the arc budget — always ≥ 1 row so a
        # single huge row still streams (as one oversized block).
        v1 = int(np.searchsorted(indptr, p0 + chunk_arcs, side="right")) - 1
        v1 = min(n, max(v1, v0 + 1))
        p1 = int(indptr[v1])
        dst = np.asarray(indices[p0:p1])
        deg = np.diff(np.asarray(indptr[v0 : v1 + 1]))
        src = np.repeat(np.arange(v0, v1, dtype=VERTEX_DTYPE), deg)
        keep = src < dst
        src, dst = src[keep], dst[keep]
        lu, lv = labels[src], labels[dst]
        cross = lu != lv
        if cross.any():
            lo = np.minimum(lu[cross], lv[cross])
            hi = np.maximum(lu[cross], lv[cross])
            keys = lo * k + hi
            uniq, first, counts = np.unique(
                keys, return_index=True, return_counts=True
            )
            reps = np.stack([src[cross][first], dst[cross][first]], axis=1)
            if acc_keys is None:
                acc_keys, acc_counts, acc_reps = uniq, counts, reps
            else:
                # Accumulated entries first: np.unique's return_index
                # picks the earliest occurrence, so a key seen in an
                # earlier block keeps its (canonical-order-first)
                # representative while the counts sum.
                all_keys = np.concatenate([acc_keys, uniq])
                merged, first_idx, inverse = np.unique(
                    all_keys, return_index=True, return_inverse=True
                )
                summed = np.zeros(merged.size, dtype=np.int64)
                np.add.at(
                    summed, inverse, np.concatenate([acc_counts, counts])
                )
                acc_keys = merged
                acc_counts = summed
                acc_reps = np.concatenate([acc_reps, reps])[first_idx]
        v0 = v1
    if acc_keys is None:
        return QuotientResult(
            graph=from_edges(k, np.zeros((0, 2), dtype=VERTEX_DTYPE)),
            edge_multiplicity=np.zeros(0, dtype=np.int64),
            representative_edge=np.zeros((0, 2), dtype=VERTEX_DTYPE),
        )
    return _quotient_result(k, acc_keys, acc_counts, acc_reps)


def cut_edge_mask(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    """Boolean mask over ``graph.edge_array()`` rows: True where the edge's
    endpoints carry different labels."""
    labels = np.asarray(labels)
    if labels.shape[0] != graph.num_vertices:
        raise GraphError("labels length must equal num_vertices")
    edges = graph.edge_array()
    return labels[edges[:, 0]] != labels[edges[:, 1]]


def count_cut_edges(graph: CSRGraph, labels: np.ndarray) -> int:
    """Number of edges whose endpoints lie in different label classes."""
    return int(cut_edge_mask(graph, labels).sum())


def degree_statistics(graph: CSRGraph) -> dict[str, float]:
    """Summary degree statistics for benchmark reporting."""
    if graph.num_vertices == 0:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "std": 0.0}
    d = graph.degrees()
    return {
        "min": float(d.min()),
        "max": float(d.max()),
        "mean": float(d.mean()),
        "std": float(d.std()),
    }
