"""Memory-mapped CSR graphs — decompose graphs bigger than RAM.

Mirror of :mod:`repro.runtime.shm`'s trick at file scope: a graph's defining
arrays (the :meth:`~repro.graphs.csr.CSRGraph.csr_arrays` contract) are laid
out back-to-back in one file behind a small self-describing header, and
:class:`MmapCSR` rebuilds a fully functional graph as NumPy views straight
into the mapping.  The kernel pages data in on demand and evicts it under
memory pressure, so peak RSS is bounded by the working set — with the
quotient-level drivers in :mod:`repro.lowstretch.akpw`, that is the cluster
quotient, not the input.

File format (``RGM1``)::

    bytes 0..4    magic  b"RGM1"
    bytes 4..8    little-endian u32: JSON header length
    bytes 8..     JSON header, space-padded to HEADER_RESERVE (4096) bytes
    bytes 4096..  array payload, each array 8-aligned at its header offset

The header reserve is fixed so the payload base never moves when the header
is rewritten — the streaming ingest in :mod:`repro.graphs.io` shrinks the
``indices`` array in place after deduplication, and the chunked-upload spool
in :mod:`repro.serve.server` writes payload bytes before the final header
is known-good.

Lifecycle: ``owns_file=True`` wrappers unlink the backing file on
:meth:`~MmapCSR.close` (server spool files die with their store entry);
wrappers over user-provided files never do.  Unlinking while views are
alive is safe on POSIX — the mapping keeps the inode until the last view
is collected.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError, ParameterError
from repro.graphs.backing import register_backing
from repro.graphs.csr import CSRGraph
from repro.graphs.weighted import WeightedCSRGraph

__all__ = [
    "HEADER_RESERVE",
    "MmapArraySpec",
    "MmapGraphDescriptor",
    "MmapLayout",
    "MmapCSR",
    "attach_mmap",
    "save_mmap_graph",
    "open_mmap_graph",
    "validate_csr_chunked",
]

MAGIC = b"RGM1"
#: Fixed header region; payload offsets are absolute and never move.
HEADER_RESERVE = 4096
_ALIGN = 8

#: Graph classes a memmap file may declare (mirror of the serve upload
#: whitelist — the header names a class, never pickles one).
_GRAPH_CLASSES: dict[str, type] = {
    "CSRGraph": CSRGraph,
    "WeightedCSRGraph": WeightedCSRGraph,
}


@dataclass(frozen=True)
class MmapArraySpec:
    """Placement of one defining array inside the mapped file."""

    name: str
    offset: int
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = int(np.prod(self.shape)) if self.shape else 1
        return count * np.dtype(self.dtype).itemsize

    def view(self, base: np.ndarray) -> np.ndarray:
        """Zero-copy view of this array over the whole-file uint8 mapping."""
        raw = base[self.offset : self.offset + self.nbytes]
        return raw.view(np.dtype(self.dtype)).reshape(self.shape)


@dataclass(frozen=True)
class MmapGraphDescriptor:
    """Picklable reattachment token for a memmap graph (worker side).

    Shape-compatible with :class:`~repro.runtime.shm.SharedGraphDescriptor`
    where the pool cares: ``segment`` identifies the backing for the worker
    cache's staleness check, ``nbytes`` is the payload size, ``graph_type``
    rebuilds the right class.
    """

    path: str
    graph_type: type
    arrays: tuple[MmapArraySpec, ...]
    nbytes: int
    file_bytes: int

    @property
    def segment(self) -> str:
        return f"mmap:{self.path}:{self.file_bytes}"

    @property
    def weighted(self) -> bool:
        return issubclass(self.graph_type, WeightedCSRGraph)


def _encode_header(class_name: str, specs: tuple[MmapArraySpec, ...]) -> bytes:
    doc = {
        "class": class_name,
        "arrays": [
            {
                "name": s.name,
                "offset": s.offset,
                "shape": list(s.shape),
                "dtype": s.dtype,
            }
            for s in specs
        ],
        "nbytes": sum(s.nbytes for s in specs),
    }
    payload = json.dumps(doc, sort_keys=True).encode("utf-8")
    header = MAGIC + struct.pack("<I", len(payload)) + payload
    if len(header) > HEADER_RESERVE:
        raise GraphError(
            f"memmap graph header of {len(header)} bytes exceeds the "
            f"{HEADER_RESERVE}-byte reserve"
        )
    return header + b" " * (HEADER_RESERVE - len(header))


def _decode_header(path: str) -> tuple[type, tuple[MmapArraySpec, ...]]:
    with open(path, "rb") as fh:
        head = fh.read(8)
        if len(head) < 8 or head[:4] != MAGIC:
            raise GraphError(
                f"{path}: not a memmap graph file (bad magic; expected "
                f"{MAGIC!r})"
            )
        (length,) = struct.unpack("<I", head[4:8])
        if length > HEADER_RESERVE - 8:
            raise GraphError(f"{path}: corrupt memmap graph header")
        payload = fh.read(length)
    try:
        doc = json.loads(payload.decode("utf-8"))
    except ValueError as exc:
        raise GraphError(f"{path}: corrupt memmap graph header: {exc}") from None
    class_name = doc.get("class")
    if class_name not in _GRAPH_CLASSES:
        raise GraphError(
            f"{path}: unsupported graph class {class_name!r} in memmap header"
        )
    specs = tuple(
        MmapArraySpec(
            name=a["name"],
            offset=int(a["offset"]),
            shape=tuple(int(d) for d in a["shape"]),
            dtype=str(a["dtype"]),
        )
        for a in doc["arrays"]
    )
    return _GRAPH_CLASSES[class_name], specs


def _layout_specs(
    arrays: list[tuple[str, tuple[int, ...], np.dtype]],
) -> tuple[MmapArraySpec, ...]:
    specs: list[MmapArraySpec] = []
    offset = HEADER_RESERVE
    for name, shape, dtype in arrays:
        dt = np.dtype(dtype).newbyteorder("<")
        if offset % _ALIGN:
            offset += _ALIGN - offset % _ALIGN
        spec = MmapArraySpec(
            name=name, offset=offset, shape=tuple(shape), dtype=dt.str
        )
        specs.append(spec)
        offset += spec.nbytes
    return tuple(specs)


class MmapLayout:
    """A memmap graph file opened for writing (ingest / upload spool).

    :meth:`create` sizes the file for the declared arrays and writes the
    header up front, :attr:`views` hands out writable slices, and
    :meth:`shrink` lets the *last* array lose tail elements (streaming
    ingest over-allocates ``indices`` for duplicate arcs, then compacts).
    Call :meth:`close` when done; reopen read-only with :class:`MmapCSR`.
    """

    def __init__(self, path: str, graph_type: type, specs) -> None:
        self.path = str(path)
        self.graph_type = graph_type
        self.specs = tuple(specs)
        end = self.specs[-1].offset + self.specs[-1].nbytes if self.specs else HEADER_RESERVE
        with open(self.path, "wb") as fh:
            fh.write(_encode_header(graph_type.__name__, self.specs))
            fh.truncate(end)
        self._base: np.ndarray | None = np.memmap(self.path, dtype=np.uint8, mode="r+")

    @classmethod
    def create(
        cls,
        path: str,
        graph_type: type,
        arrays: list[tuple[str, tuple[int, ...], np.dtype]],
    ) -> "MmapLayout":
        if graph_type.__name__ not in _GRAPH_CLASSES:
            raise ParameterError(
                f"memmap layout supports {sorted(_GRAPH_CLASSES)}, got "
                f"{graph_type.__name__}"
            )
        return cls(path, graph_type, _layout_specs(arrays))

    @property
    def views(self) -> dict[str, np.ndarray]:
        """Writable zero-copy views of every declared array."""
        if self._base is None:
            raise ParameterError("memmap layout is closed")
        return {s.name: s.view(self._base) for s in self.specs}

    @property
    def payload_offset(self) -> int:
        """File offset of the first payload byte (fixed at the reserve)."""
        return HEADER_RESERVE

    @property
    def payload_bytes(self) -> int:
        return sum(s.nbytes for s in self.specs)

    def shrink(self, name: str, length: int) -> None:
        """Truncate the trailing 1-D array ``name`` to ``length`` elements."""
        if self._base is None:
            raise ParameterError("memmap layout is closed")
        last = self.specs[-1]
        if last.name != name or len(last.shape) != 1:
            raise ParameterError(
                f"only the trailing 1-D array may shrink, not {name!r}"
            )
        if length > last.shape[0]:
            raise ParameterError(
                f"cannot grow {name!r} from {last.shape[0]} to {length}"
            )
        new_last = MmapArraySpec(
            name=last.name, offset=last.offset, shape=(int(length),),
            dtype=last.dtype,
        )
        self.specs = self.specs[:-1] + (new_last,)
        self.flush()
        self._release()
        with open(self.path, "r+b") as fh:
            fh.write(_encode_header(self.graph_type.__name__, self.specs))
            fh.truncate(new_last.offset + new_last.nbytes)
        self._base = np.memmap(self.path, dtype=np.uint8, mode="r+")

    def flush(self) -> None:
        if self._base is not None:
            self._base.flush()

    def advise_dontneed(self) -> bool:
        """Drop the writer's resident pages; written data stays intact.

        For a shared file mapping the dirty state lives in the page
        cache, not the process, so unmapping loses nothing — streaming
        writers call this between blocks to keep their peak RSS bounded
        by one block instead of the whole file.  Returns whether the
        advice could be issued.
        """
        raw = getattr(self._base, "_mmap", None)
        if raw is None or not hasattr(raw, "madvise"):
            return False
        raw.madvise(mmap.MADV_DONTNEED)
        return True

    def _release(self) -> None:
        self._base = None

    def close(self) -> None:
        self.flush()
        self._release()

    def open_graph(self, *, owns_file: bool = False) -> "MmapCSR":
        """Finish writing and reopen the file as a read-only graph."""
        self.close()
        return MmapCSR.open(self.path, owns_file=owns_file)


class MmapCSR:
    """A CSR graph whose arrays are views into a memory-mapped file.

    Construct with :meth:`open` (parent side, from a file on disk) or
    :meth:`attach` (worker side, from a descriptor); :attr:`graph` is a
    regular :class:`~repro.graphs.csr.CSRGraph` whose arrays the kernel
    pages in on demand, so every algorithm in the library runs on it
    unchanged.
    """

    def __init__(
        self,
        base: np.ndarray,
        descriptor: MmapGraphDescriptor,
        graph: CSRGraph,
        *,
        owns_file: bool,
    ) -> None:
        self._base: np.ndarray | None = base
        self._descriptor = descriptor
        self._graph: CSRGraph | None = graph
        self._owns_file = owns_file

    @classmethod
    def open(cls, path, *, owns_file: bool = False) -> "MmapCSR":
        """Map ``path`` read-only and rebuild its graph zero-copy."""
        path = str(path)
        graph_type, specs = _decode_header(path)
        file_bytes = os.path.getsize(path)
        end = max((s.offset + s.nbytes for s in specs), default=HEADER_RESERVE)
        if file_bytes < end:
            raise GraphError(
                f"{path}: file holds {file_bytes} bytes but the header "
                f"declares arrays through byte {end}"
            )
        descriptor = MmapGraphDescriptor(
            path=path,
            graph_type=graph_type,
            arrays=specs,
            nbytes=sum(s.nbytes for s in specs),
            file_bytes=file_bytes,
        )
        return cls._map(descriptor, owns_file=owns_file)

    @classmethod
    def attach(cls, descriptor: MmapGraphDescriptor) -> "MmapCSR":
        """Worker-side reattachment; never takes file ownership."""
        try:
            file_bytes = os.path.getsize(descriptor.path)
        except OSError:
            raise ParameterError(
                f"memmap graph file {descriptor.path!r} does not exist "
                "(was the owning MmapCSR closed?)"
            ) from None
        if file_bytes < descriptor.file_bytes:
            raise ParameterError(
                f"memmap graph file {descriptor.path!r} holds {file_bytes} "
                f"bytes but the descriptor expects {descriptor.file_bytes}"
            )
        return cls._map(descriptor, owns_file=False)

    @classmethod
    def _map(
        cls, descriptor: MmapGraphDescriptor, *, owns_file: bool
    ) -> "MmapCSR":
        base = np.memmap(descriptor.path, dtype=np.uint8, mode="r")
        views = {s.name: s.view(base) for s in descriptor.arrays}
        graph = descriptor.graph_type.from_arrays(views, validate=False)
        wrapper = cls(base, descriptor, graph, owns_file=owns_file)
        register_backing(graph, "mmap", wrapper)
        return wrapper

    @classmethod
    def from_graph(
        cls, graph: CSRGraph, path, *, owns_file: bool = False
    ) -> "MmapCSR":
        """Write an in-RAM graph's arrays to ``path`` and map them back."""
        if type(graph).__name__ not in _GRAPH_CLASSES:
            raise ParameterError(
                f"memmap backing supports {sorted(_GRAPH_CLASSES)}, got "
                f"{type(graph).__name__}"
            )
        arrays = graph.csr_arrays()
        layout = MmapLayout.create(
            str(path),
            type(graph),
            [
                (name, tuple(arr.shape), arr.dtype)
                for name, arr in arrays.items()
            ],
        )
        views = layout.views
        for name, arr in arrays.items():
            views[name][...] = arr
        del views
        return layout.open_graph(owns_file=owns_file)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        if self._graph is None:
            raise ParameterError("memmap graph is closed")
        return self._graph

    @property
    def descriptor(self) -> MmapGraphDescriptor:
        return self._descriptor

    @property
    def path(self) -> str:
        return self._descriptor.path

    @property
    def owns_file(self) -> bool:
        """Whether :meth:`close` unlinks the backing file."""
        return self._owns_file

    @property
    def closed(self) -> bool:
        return self._graph is None

    def nbytes(self) -> int:
        """Bytes of graph data resident in the file (payload only)."""
        return self._descriptor.nbytes

    def advise_dontneed(self) -> bool:
        """Ask the kernel to drop resident pages of the mapping.

        Returns whether the advice could be issued (``madvise`` may be
        missing on exotic platforms).  Used by the out-of-core benchmark's
        residency governor; purely advisory, never required for
        correctness.
        """
        base = self._base
        raw = getattr(base, "_mmap", None)
        if raw is None or not hasattr(raw, "madvise"):
            return False
        raw.madvise(mmap.MADV_DONTNEED)
        return True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this wrapper's references; file owners unlink the file.

        Idempotent.  Views handed out earlier (including the wrapper's
        graph, if still referenced) stay valid even after an unlink: the
        mapping pins the inode until the last view is collected.
        """
        if self._graph is None and self._base is None:
            return
        self._graph = None
        self._base = None
        if self._owns_file:
            try:
                os.unlink(self._descriptor.path)
            except FileNotFoundError:
                pass

    def unlink(self) -> None:
        """Owner-side close-and-destroy (alias for :meth:`close`)."""
        if not self._owns_file:
            raise ParameterError(
                "only a file-owning MmapCSR may unlink its backing file"
            )
        self.close()

    def __enter__(self) -> "MmapCSR":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"path={self._descriptor.path!r}"
        role = "file-owner" if self._owns_file else "reader"
        return (
            f"MmapCSR({state}, {role}, nbytes={self._descriptor.nbytes})"
        )


def validate_csr_chunked(
    graph: CSRGraph, *, chunk_arcs: int = 4 * 1024 * 1024,
    source: str = "memmap graph",
) -> None:
    """Structural CSR validation in bounded windows (out-of-core safe).

    Covers the same invariants as the in-RAM constructor's validator —
    offsets well-formed, ids in range, neighbour lists strictly increasing
    (sorted, simple), no self-loops, adjacency symmetric — but scans the
    arrays block-wise, so peak RSS stays bounded by ``chunk_arcs`` rather
    than O(m).  Blocks split at row boundaries, which is what makes the
    within-row monotonicity check local.
    """
    indptr = graph.indptr
    indices = graph.indices
    n = graph.num_vertices
    if int(indptr[0]) != 0:
        raise GraphError(f"{source}: indptr[0] must be 0, got {int(indptr[0])}")
    total = int(indptr[-1])
    if total != indices.shape[0]:
        raise GraphError(
            f"{source}: indptr[-1] ({total}) must equal len(indices) "
            f"({indices.shape[0]})"
        )
    if total % 2:
        raise GraphError(
            f"{source}: odd number of arcs: undirected CSR must store "
            "both directions"
        )
    v0 = 0
    while v0 < n:
        p0 = int(indptr[v0])
        v1 = int(np.searchsorted(indptr, p0 + chunk_arcs, side="right")) - 1
        v1 = min(max(v1, v0 + 1), n)
        p1 = int(indptr[v1])
        rowdeg = np.diff(indptr[v0 : v1 + 1])
        if (rowdeg < 0).any():
            raise GraphError(f"{source}: indptr must be non-decreasing")
        block = indices[p0:p1]
        if block.shape[0]:
            if int(block.min()) < 0 or int(block.max()) >= n:
                raise GraphError(
                    f"{source}: indices contain out-of-range vertex ids"
                )
            rows = np.repeat(
                np.arange(v0, v1, dtype=np.int64), rowdeg
            )
            if (block == rows).any():
                raise GraphError(f"{source}: self-loops are not allowed")
            same_row = rows[1:] == rows[:-1]
            if np.any(same_row & (np.asarray(block[1:]) <= block[:-1])):
                raise GraphError(
                    f"{source}: neighbour lists must be strictly "
                    "increasing (sorted, no parallel edges)"
                )
        v0 = v1
    from repro.graphs.io import _check_symmetry_mmap

    _check_symmetry_mmap(indptr, indices, n, chunk_arcs, source)


def attach_mmap(descriptor: MmapGraphDescriptor) -> MmapCSR:
    """Attach to a memmap graph from its descriptor (worker side)."""
    return MmapCSR.attach(descriptor)


def save_mmap_graph(graph: CSRGraph, path) -> MmapCSR:
    """Write ``graph`` to ``path`` in ``RGM1`` format and map it back."""
    return MmapCSR.from_graph(graph, path, owns_file=False)


def open_mmap_graph(path) -> CSRGraph:
    """Open a memmap graph file and return the graph itself.

    The returned graph keeps the mapping alive through its array views;
    use :meth:`MmapCSR.open` directly when lifecycle control is needed.
    """
    return MmapCSR.open(path, owns_file=False).graph
