"""Decomposition providers — one seam between applications and backends.

Every application in this library (spanners, AKPW low-stretch trees, HST
hierarchies, distance oracles, the solver's tree preconditioners) consumes
the paper's primitive the same way: *decompose this graph with this β,
method and seed*.  A :class:`DecompositionProvider` is that contract made
explicit, with three interchangeable transports:

- :class:`EngineProvider` — in-process serial
  :func:`repro.core.engine.decompose`;
- :class:`PoolProvider` — the shared-memory batch runtime
  (:class:`repro.runtime.pool.DecompositionPool`): graphs are registered in
  shared memory under their content digest, requests cross the process
  boundary slim;
- :class:`ServeProvider` — a :class:`repro.serve.client.ServeClient`
  speaking to a running decomposition server: graphs are uploaded once by
  digest, results come back over the wire.

Because decompositions are derandomized (pure functions of
``(graph bytes, beta, method, seed, options)`` — the conformance suite pins
this), *which* provider executes a request never changes its result:
application outputs are bit-identical across all three.  That same purity
licenses the built-in **memo layer**: every provider carries a byte-budgeted
:class:`~repro.serve.cache.ResultCache` keyed by the canonical request
tuple, so multi-level consumers (AKPW's quotient recursion, hierarchy
refinement) and repeated application builds reuse decompositions instead of
recomputing them.

Providers require **integer seeds** — the explicit seed is what makes a
request executable on any backend and memoizable; applications normalise
their ``SeedLike`` inputs with :func:`repro.rng.seeding.ensure_int_seed`
and derive per-level sub-seeds with :func:`~repro.rng.seeding.derive_seed`.

Multi-level applications whose pieces within a level are independent
(AKPW's per-component decompositions, the hierarchy's per-piece
refinements) submit a whole level at once through
:meth:`DecompositionProvider.decompose_batch`: a list of
:class:`DecomposeRequest` values, answered in request order.  The base
implementation is serial; :class:`PoolProvider` fans a batch into the
shared-memory pool from a worker-bounded scheduler, and
:class:`ServeProvider`/``ClusterProvider`` drive the pipelined
:class:`~repro.serve.aio_client.AsyncServeClient` so independent pieces
are in flight simultaneously (across shards, behind a router).  Because
every request carries its own explicit seed, *batching never changes
results* — outputs are bit-identical to the serial loop at any
``max_concurrent``, and requests with equal canonical keys are deduped
into one backend execution.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from collections import OrderedDict
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.engine import PartitionResult, _resolve, decompose
from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.serve.cache import ResultCache
from repro.serve.protocol import canonical_cache_key
from repro.serve.store import graph_digest

__all__ = [
    "DecomposeRequest",
    "DecompositionProvider",
    "EngineProvider",
    "PoolProvider",
    "ServeProvider",
    "default_provider",
    "provider_from_spec",
    "resolve_provider",
]

#: Default memo budget per provider: enough for a few thousand result
#: arrays of mid-sized graphs without surprising a laptop.
DEFAULT_MEMO_BYTES = 64 * 1024 * 1024

#: Graphs with at most this many edges run on the in-process engine even
#: under remote backends — a pool/serve round trip costs more than a tiny
#: decomposition.  Results are identical either way (derandomization), so
#: this is purely a transport choice.  0 = never inline, keeping backend
#: semantics pure by default; the serve layer's app provider raises it.
DEFAULT_INLINE_CUTOFF = 0


@dataclass(frozen=True)
class DecomposeRequest:
    """One decomposition request for :meth:`decompose_batch`.

    The fields mirror :meth:`DecompositionProvider.decompose`'s signature;
    ``seed`` must already be a plain integer (normalise ``SeedLike`` values
    with :func:`repro.rng.seeding.ensure_int_seed`).
    """

    graph: CSRGraph
    beta: float
    method: str = "auto"
    seed: int = 0
    validate: bool = False
    options: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class _Prepared:
    """A validated batch request plus its routing identity."""

    index: int
    request: DecomposeRequest
    #: resolved (non-``"auto"``) method name.
    method: str
    #: content digest of the request's graph.
    digest: str
    #: canonical memo key — equal keys are one backend execution.
    key: object


class DecompositionProvider:
    """Routes decomposition requests to a backend, memoizing results.

    Subclasses implement :meth:`_decompose_impl`; everything else —
    request validation, digest computation, the memo layer, slim-result
    rehydration — is shared.  Providers are context managers; closing one
    releases whatever backend resources it owns.

    Parameters
    ----------
    memo_bytes:
        Byte budget of the provider's memo cache (0 disables memoization).
    memo:
        An externally owned :class:`~repro.serve.cache.ResultCache` to use
        instead of creating one — the serve layer passes its own cache so
        application decompositions and client requests share one budget and
        one set of counters.  Overrides ``memo_bytes``.
    inline_cutoff:
        Graphs with ``num_edges`` at or below this run on the in-process
        engine instead of the backend (0 = always use the backend).
    """

    #: short backend label used in stats and reprs.
    backend = "abstract"

    def __init__(
        self,
        *,
        memo_bytes: int = DEFAULT_MEMO_BYTES,
        memo: ResultCache | None = None,
        inline_cutoff: int = DEFAULT_INLINE_CUTOFF,
    ) -> None:
        self._memo = memo if memo is not None else ResultCache(int(memo_bytes))
        self._inline_cutoff = int(inline_cutoff)
        self._digest_lock = threading.Lock()
        # id(graph) -> (weakref(graph), digest): graphs are immutable, so
        # a digest is computed once per live object.  Weak references keep
        # the cache from pinning graphs the caller has dropped (important
        # for the process-wide default provider); a dead or recycled id is
        # detected by the identity check on lookup.  Bounded below.
        self._digest_cache: OrderedDict[
            int, tuple[weakref.ref, str]
        ] = OrderedDict()
        self._requests = 0
        self._memo_hits = 0
        self._inline_runs = 0
        self._closed = False

    # ------------------------------------------------------------------
    # the contract
    # ------------------------------------------------------------------
    def decompose(
        self,
        graph: CSRGraph,
        beta: float,
        *,
        method: str = "auto",
        seed: int = 0,
        validate: bool = False,
        **options: object,
    ) -> PartitionResult:
        """Compute (or recall) one decomposition through the backend.

        ``seed`` must be a plain integer — the explicit seed is the
        reproducibility and cache identity of the request (normalise
        ``SeedLike`` values with
        :func:`repro.rng.seeding.ensure_int_seed` first).
        """
        if self._closed:
            raise ParameterError(f"{type(self).__name__} is closed")
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ParameterError(
                f"providers require an explicit integer seed, got "
                f"{type(seed).__name__} (normalise with ensure_int_seed)"
            )
        spec = _resolve(graph, method)
        bound = spec.bind(options)
        digest = self.graph_key(graph)
        key = canonical_cache_key(
            digest, float(beta), spec.name, seed, bound,
            validate=validate, op="pipeline",
        )
        self._requests += 1
        slim = self._memo.get(key)
        if slim is not None:
            self._memo_hits += 1
            return _rehydrate(graph, slim)
        if graph.num_edges <= self._inline_cutoff and not isinstance(
            self, EngineProvider
        ):
            self._inline_runs += 1
            result = decompose(
                graph, beta, method=spec.name, seed=seed,
                validate=validate, **options,
            )
        else:
            result = self._decompose_impl(
                graph, digest, beta, spec.name, seed, validate, dict(options)
            )
        slim = _slim(result)
        self._memo.put(key, slim, _slim_nbytes(slim))
        return result

    def _decompose_impl(
        self,
        graph: CSRGraph,
        digest: str,
        beta: float,
        method: str,
        seed: int,
        validate: bool,
        options: dict,
    ) -> PartitionResult:
        raise NotImplementedError

    def decompose_batch(
        self,
        requests: Iterable[DecomposeRequest] | Sequence[DecomposeRequest],
        *,
        max_concurrent: int | None = None,
    ) -> list[PartitionResult]:
        """Compute (or recall) many independent decompositions at once.

        Results come back in request order and are bit-identical to issuing
        the same requests one at a time through :meth:`decompose` — batching
        is a transport optimisation, never a semantic one.  Requests whose
        canonical keys are equal (same graph bytes, β, method, seed,
        options) are deduped into a single backend execution; memo hits are
        answered without touching the backend at all.

        ``max_concurrent`` bounds how many requests a concurrent backend
        keeps in flight (``None`` = the backend's own bound: the pool's
        worker count, the serve client's pipeline).  ``max_concurrent=1``
        forces the serial reference path on every backend.

        Failure is all-or-nothing and loud: if any dispatched request fails
        (timeout, dead shard, worker error), sibling in-flight requests are
        drained, every resource pin is released, and the batch raises —
        the provider stays usable and its memo holds only results that
        completed successfully.
        """
        requests = list(requests)
        if self._closed:
            raise ParameterError(f"{type(self).__name__} is closed")
        if max_concurrent is not None and (
            isinstance(max_concurrent, bool)
            or not isinstance(max_concurrent, int)
            or max_concurrent < 1
        ):
            raise ParameterError(
                f"max_concurrent must be a positive integer or None, got "
                f"{max_concurrent!r}"
            )
        prepared: list[_Prepared] = []
        for index, request in enumerate(requests):
            if not isinstance(request, DecomposeRequest):
                raise ParameterError(
                    f"decompose_batch takes DecomposeRequest values, got "
                    f"{type(request).__name__} at index {index}"
                )
            if isinstance(request.seed, bool) or not isinstance(
                request.seed, int
            ):
                raise ParameterError(
                    f"providers require an explicit integer seed, got "
                    f"{type(request.seed).__name__} at index {index} "
                    f"(normalise with ensure_int_seed)"
                )
            spec = _resolve(request.graph, request.method)
            bound = spec.bind(dict(request.options))
            digest = self.graph_key(request.graph)
            key = canonical_cache_key(
                digest, float(request.beta), spec.name, request.seed, bound,
                validate=request.validate, op="pipeline",
            )
            prepared.append(_Prepared(index, request, spec.name, digest, key))
        self._requests += len(prepared)

        results: list[PartitionResult | None] = [None] * len(prepared)
        #: canonical key -> every prepared request sharing it (dedup).
        misses: OrderedDict[object, list[_Prepared]] = OrderedDict()
        for item in prepared:
            slim = self._memo.get(item.key)
            if slim is not None:
                self._memo_hits += 1
                results[item.index] = _rehydrate(item.request.graph, slim)
            elif item.key in misses:
                misses[item.key].append(item)
            else:
                misses[item.key] = [item]

        # Tiny graphs run inline on the engine, exactly as in decompose().
        dispatch: list[_Prepared] = []
        inline_done: list[tuple[_Prepared, PartitionResult]] = []
        for group in misses.values():
            item = group[0]
            if item.request.graph.num_edges <= self._inline_cutoff and not (
                isinstance(self, EngineProvider)
            ):
                self._inline_runs += 1
                inline_done.append((item, decompose(
                    item.request.graph, item.request.beta, method=item.method,
                    seed=item.request.seed, validate=item.request.validate,
                    **dict(item.request.options),
                )))
            else:
                dispatch.append(item)

        if dispatch:
            if max_concurrent == 1:
                # The serial reference path, whatever the backend.
                outcomes = DecompositionProvider._decompose_batch_impl(
                    self, dispatch, max_concurrent
                )
            else:
                outcomes = self._decompose_batch_impl(dispatch, max_concurrent)
        else:
            outcomes = []

        for item, result in list(zip(dispatch, outcomes)) + inline_done:
            slim = _slim(result)
            self._memo.put(item.key, slim, _slim_nbytes(slim))
            for member in misses[item.key]:
                results[member.index] = _rehydrate(member.request.graph, slim)
        return results  # type: ignore[return-value]

    def _decompose_batch_impl(
        self,
        prepared: "list[_Prepared]",
        max_concurrent: int | None,
    ) -> list[PartitionResult]:
        """Serial reference dispatch; concurrent backends override this."""
        return [
            self._decompose_impl(
                item.request.graph, item.digest, item.request.beta,
                item.method, item.request.seed, item.request.validate,
                dict(item.request.options),
            )
            for item in prepared
        ]

    # ------------------------------------------------------------------
    # identity and introspection
    # ------------------------------------------------------------------
    def graph_key(self, graph: CSRGraph) -> str:
        """The content digest keying ``graph`` across every backend.

        Cached per graph object (graphs are immutable); the digest is the
        same :func:`repro.serve.store.graph_digest` the serve layer's
        content-addressed store uses, so a provider-side key and a
        server-side upload agree byte for byte.
        """
        with self._digest_lock:
            hit = self._digest_cache.get(id(graph))
            if hit is not None and hit[0]() is graph:
                self._digest_cache.move_to_end(id(graph))
                return hit[1]
        digest = graph_digest(graph)
        with self._digest_lock:
            self._digest_cache[id(graph)] = (weakref.ref(graph), digest)
            # Drop dead entries first, then bound the live ones.
            for key in [
                k for k, (ref, _) in self._digest_cache.items()
                if ref() is None
            ]:
                del self._digest_cache[key]
            while len(self._digest_cache) > 256:
                self._digest_cache.popitem(last=False)
        return digest

    def stats(self) -> dict:
        """Request/memo counters plus the backend's own numbers."""
        return {
            "backend": self.backend,
            "requests": self._requests,
            "memo_hits": self._memo_hits,
            "inline_runs": self._inline_runs,
            "memo": self._memo.stats(),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (idempotent)."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self._requests} request(s)"
        return f"{type(self).__name__}({state})"


class EngineProvider(DecompositionProvider):
    """Serial in-process backend: every request is a direct engine call."""

    backend = "engine"

    def _decompose_impl(
        self, graph, digest, beta, method, seed, validate, options
    ) -> PartitionResult:
        return decompose(
            graph, beta, method=method, seed=seed, validate=validate,
            **options,
        )


class PoolProvider(DecompositionProvider):
    """Shared-memory batch-runtime backend.

    Wraps a :class:`~repro.runtime.pool.DecompositionPool` — either an
    externally owned one (the serve layer passes the server's pool) or one
    the provider creates and owns.  Graphs the provider registers itself
    live under a *provider-private key namespace* (``pipelineN:<digest>``),
    so they can never collide with — or be evicted out from under — keys
    owned by others sharing the pool (the serve layer's graph store
    registers raw digests); a graph already resident under its raw digest
    is used in place.  The provider keeps at most ``max_resident_graphs``
    of its own registrations alive (LRU, in-flight-aware), so a deep
    quotient recursion cannot exhaust shared memory.
    """

    backend = "pool"

    #: distinguishes the key namespaces of providers sharing one pool.
    _ids = itertools.count()

    def __init__(
        self,
        pool=None,
        *,
        max_workers: int | None = None,
        start_method: str | None = None,
        max_resident_graphs: int = 32,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if max_resident_graphs < 1:
            raise ParameterError(
                f"max_resident_graphs must be >= 1, got {max_resident_graphs}"
            )
        if pool is None:
            from repro.runtime.pool import DecompositionPool

            pool = DecompositionPool(
                max_workers=max_workers, start_method=start_method
            )
            self._owns_pool = True
        else:
            self._owns_pool = False
        self._pool = pool
        self._max_resident = int(max_resident_graphs)
        self._namespace = f"pipeline{next(self._ids)}"
        self._resident_lock = threading.Lock()
        #: pool keys THIS provider registered, in LRU order.
        self._resident: OrderedDict[str, None] = OrderedDict()
        #: pool key -> number of requests currently executing against it;
        #: eviction skips these (unlinking a segment under an in-flight
        #: request could fault a worker that has not attached yet).
        self._inflight: dict[str, int] = {}

    @property
    def pool(self):
        """The underlying :class:`DecompositionPool`."""
        return self._pool

    def _pin_graph(self, graph: CSRGraph, digest: str) -> tuple[str, str]:
        """Register ``graph`` (if needed) and pin it against eviction.

        Returns ``(own_key, pool_key)``; every call must be paired with
        :meth:`_unpin_graph(own_key) <_unpin_graph>`.
        """
        own_key = f"{self._namespace}:{digest}"
        pool_key = own_key
        with self._resident_lock:
            # Mark the request in flight *before* any eviction can run
            # — including the one below, which must not evict the key
            # it just registered.  The pin is what makes submitting
            # outside the lock safe: eviction skips pinned keys.
            self._inflight[own_key] = self._inflight.get(own_key, 0) + 1
            if own_key in self._resident:
                self._resident.move_to_end(own_key)
            elif digest in self._pool.graph_keys:
                # Already resident under its raw digest (registered by
                # another owner, e.g. the serve layer's store): use it
                # in place, never evict it.
                pool_key = digest
            else:
                self._pool.register_graph(own_key, graph)
                self._resident[own_key] = None
                self._evict_over_budget_locked()
        return own_key, pool_key

    def _unpin_graph(self, own_key: str) -> None:
        with self._resident_lock:
            remaining = self._inflight.get(own_key, 1) - 1
            if remaining:
                self._inflight[own_key] = remaining
            else:
                self._inflight.pop(own_key, None)
            # A batch window wider than the residency budget pins more
            # graphs than registration-time eviction may remove; shrink
            # back as pins release so the bound holds at rest.
            self._evict_over_budget_locked()

    def _evict_over_budget_locked(self) -> None:
        """Evict unpinned LRU registrations past the residency budget."""
        for candidate in list(self._resident):
            if len(self._resident) <= self._max_resident:
                break
            if self._inflight.get(candidate):
                continue  # a request is executing against it
            del self._resident[candidate]
            self._pool.unregister_graph(candidate)

    def _decompose_impl(
        self, graph, digest, beta, method, seed, validate, options
    ) -> PartitionResult:
        own_key, pool_key = self._pin_graph(graph, digest)
        try:
            result = self._pool.submit(
                pool_key, beta, method=method, seed=seed, validate=validate,
                **options,
            ).result()
        finally:
            self._unpin_graph(own_key)
        # Rebind to the caller's graph object: the pool rehydrates against
        # its own registered parent graph (an equal-content object),
        # while the provider contract hands back the caller's.
        return _rehydrate(graph, _slim(result))

    def _decompose_batch_impl(
        self, prepared, max_concurrent
    ) -> list[PartitionResult]:
        """Rolling-window fan-in: keep the pool's workers saturated.

        At most ``max_concurrent`` (default ``2 × max_workers`` — enough
        to hide submit latency without pinning a whole level's graphs in
        shared memory at once) requests are in flight; each holds a
        residency pin for exactly its own lifetime.  On the first failure
        no new work is submitted, the in-flight remainder is drained, and
        the first error is re-raised — completed siblings were already
        computed but the batch reports no partial results.
        """
        import concurrent.futures

        limit = (
            int(max_concurrent)
            if max_concurrent is not None
            else max(1, 2 * self._pool.max_workers)
        )
        results: list[PartitionResult | None] = [None] * len(prepared)
        pending: dict[object, tuple[int, str]] = {}
        first_error: BaseException | None = None
        position = 0
        try:
            while pending or (position < len(prepared) and first_error is None):
                while (
                    position < len(prepared)
                    and len(pending) < limit
                    and first_error is None
                ):
                    item = prepared[position]
                    request = item.request
                    own_key, pool_key = self._pin_graph(
                        request.graph, item.digest
                    )
                    try:
                        future = self._pool.submit(
                            pool_key, request.beta, method=item.method,
                            seed=request.seed, validate=request.validate,
                            **dict(request.options),
                        )
                    except BaseException:
                        self._unpin_graph(own_key)
                        raise
                    pending[future] = (position, own_key)
                    position += 1
                if not pending:
                    break
                done, _ = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED
                )
                for future in done:
                    slot, own_key = pending.pop(future)
                    self._unpin_graph(own_key)
                    error = future.exception()
                    if error is not None:
                        if first_error is None:
                            first_error = error
                        continue
                    results[slot] = _rehydrate(
                        prepared[slot].request.graph, _slim(future.result())
                    )
        finally:
            # An unexpected raise above (submit failure, interrupt) must
            # not leave residency pins armed for abandoned futures.
            for _, own_key in pending.values():
                self._unpin_graph(own_key)
        if first_error is not None:
            raise first_error
        return results  # type: ignore[return-value]

    def stats(self) -> dict:
        out = super().stats()
        out["pool"] = self._pool.stats()
        with self._resident_lock:
            out["resident_graphs"] = len(self._resident)
        return out

    def close(self) -> None:
        if self.closed:
            return
        super().close()
        with self._resident_lock:
            resident, self._resident = list(self._resident), OrderedDict()
        if self._owns_pool:
            self._pool.shutdown()
        else:
            for digest in resident:
                try:
                    self._pool.unregister_graph(digest)
                except ParameterError:
                    pass  # pool already shut down or key re-owned


class ServeProvider(DecompositionProvider):
    """Remote backend: a :class:`ServeClient` against a running server.

    Graphs are uploaded once (content-addressed: identical re-uploads
    dedup server-side) and referenced by digest thereafter.  The provider
    either wraps an externally owned client or connects itself from
    ``address``.  Remote results come back as assignment arrays and a
    summary; the provider rebuilds a full :class:`PartitionResult` against
    the local graph object, so applications cannot tell the backends
    apart.  Note ``validate=True`` runs server-side; the returned result
    carries ``report=None`` locally (the summary's ``invariants_ok`` field
    is the witness).

    Uploads the provider *originated* (the server did not already hold the
    content) are bounded: at most ``max_uploaded_graphs`` stay resident
    server-side, evicted LRU via the ``discard`` op — so a deep quotient
    recursion cannot exhaust the server's shared memory.  Graphs the
    server already knew (preloads, other clients' uploads) are never
    discarded here.
    """

    backend = "serve"

    def __init__(
        self,
        client=None,
        *,
        address: tuple[str, int] | None = None,
        timeout: float = 60.0,
        max_uploaded_graphs: int = 32,
        batch_pool_size: int = 4,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if max_uploaded_graphs < 1:
            raise ParameterError(
                f"max_uploaded_graphs must be >= 1, got {max_uploaded_graphs}"
            )
        if batch_pool_size < 1:
            raise ParameterError(
                f"batch_pool_size must be >= 1, got {batch_pool_size}"
            )
        self._timeout = float(timeout)
        self._batch_pool_size = int(batch_pool_size)
        if client is None:
            if address is None:
                raise ParameterError(
                    "ServeProvider needs a ServeClient or an (host, port) "
                    "address"
                )
            from repro.serve.client import ServeClient

            client = ServeClient(*address, timeout=timeout)
            self._owns_client = True
        else:
            self._owns_client = False
        self._client = client
        self._max_uploaded = int(max_uploaded_graphs)
        self._uploaded_lock = threading.Lock()
        #: digests known resident server-side that this provider does NOT
        #: own (server had the content already) — never discarded here.
        self._shared_digests: set[str] = set()
        #: digests this provider's uploads created, LRU order, evictable.
        self._own_uploads: OrderedDict[str, None] = OrderedDict()
        #: digest -> in-flight request count (eviction skips these).
        self._upload_inflight: dict[str, int] = {}

    @property
    def client(self):
        """The underlying :class:`ServeClient`."""
        return self._client

    def _ensure_uploaded(self, graph: CSRGraph, digest: str) -> None:
        """Upload ``graph`` if needed and pin it for the current request.

        Must be paired with :meth:`_release_upload`.
        """
        with self._uploaded_lock:
            self._upload_inflight[digest] = (
                self._upload_inflight.get(digest, 0) + 1
            )
            if digest in self._shared_digests or digest in self._own_uploads:
                if digest in self._own_uploads:
                    self._own_uploads.move_to_end(digest)
                return
        try:
            # Binary arrays against a v2 server/router, JSON text against
            # v1 — the client negotiated; the digest is format-neutral.
            response = self._client.upload_graph(graph)
        except BaseException:
            self._release_upload(digest)
            raise
        remote = response["digest"]
        if remote != digest:
            self._release_upload(digest)
            raise ParameterError(
                f"server digest {remote[:12]}… does not match local digest "
                f"{digest[:12]}… — client/server serialisation drift"
            )
        to_discard: list[str] = []
        with self._uploaded_lock:
            if response.get("known"):
                # The server held this content before we uploaded — some
                # other owner's graph; not ours to discard.
                self._shared_digests.add(digest)
            else:
                self._own_uploads[digest] = None
                self._own_uploads.move_to_end(digest)
                for candidate in list(self._own_uploads):
                    if len(self._own_uploads) <= self._max_uploaded:
                        break
                    if self._upload_inflight.get(candidate):
                        continue
                    del self._own_uploads[candidate]
                    to_discard.append(candidate)
        from repro.errors import ServeError

        for stale in to_discard:
            try:
                self._client.discard(stale)
            except ServeError:
                pass  # someone else discarded it already; budget restored

    def _release_upload(self, digest: str) -> None:
        with self._uploaded_lock:
            remaining = self._upload_inflight.get(digest, 1) - 1
            if remaining:
                self._upload_inflight[digest] = remaining
            else:
                self._upload_inflight.pop(digest, None)

    def _decompose_impl(
        self, graph, digest, beta, method, seed, validate, options
    ) -> PartitionResult:
        from repro.errors import ServeError

        served = None
        for attempt in (0, 1):
            self._ensure_uploaded(graph, digest)
            try:
                served = self._client.decompose(
                    digest, beta, method=method, seed=seed,
                    validate=validate, **options,
                )
                break
            except ServeError as exc:
                # Self-heal when the digest was discarded out from under
                # us (another provider's eviction, a server restart):
                # forget it and re-upload once.
                if attempt or "unknown graph digest" not in str(exc):
                    raise
                with self._uploaded_lock:
                    self._own_uploads.pop(digest, None)
                    self._shared_digests.discard(digest)
            finally:
                self._release_upload(digest)
        return _result_from_served(graph, served, beta, method)

    def _batch_address(self) -> tuple[str, int]:
        address = getattr(self._client, "address", None)
        if address is None:
            from repro.errors import ServeError

            raise ServeError(
                f"{type(self._client).__name__} exposes no address; "
                "decompose_batch needs one to open its pipelined client"
            )
        return address

    def _decompose_batch_impl(
        self, prepared, max_concurrent
    ) -> list[PartitionResult]:
        """Pipeline a level through an :class:`AsyncServeClient`.

        Every request's graph is uploaded (once per digest) and pinned,
        then all requests go out concurrently over a small connection
        pool against the same endpoint as the blocking client — behind a
        cluster router that fans independent pieces across shards.  A
        failed request (timeout, dead shard, worker error) fails the
        whole batch loudly: :meth:`AsyncServeClient.aclose` discards late
        responses by id, sibling results are dropped, and the first error
        propagates — the provider itself stays usable.  The one retried
        failure is ``unknown graph digest`` on every failed request
        (content discarded out from under us): forget, re-upload, once.
        """
        import asyncio

        from repro.errors import ServeError
        from repro.serve.aio_client import AsyncServeClient

        host, port = self._batch_address()

        async def drive() -> list:
            client = AsyncServeClient(
                host, port, timeout=self._timeout,
                pool_size=min(self._batch_pool_size, len(prepared)),
            )
            gate = (
                asyncio.Semaphore(int(max_concurrent))
                if max_concurrent is not None
                else None
            )

            async def one(item: _Prepared):
                if gate is None:
                    return await client.decompose(
                        item.digest, item.request.beta, method=item.method,
                        seed=item.request.seed,
                        validate=item.request.validate,
                        **dict(item.request.options),
                    )
                async with gate:
                    return await client.decompose(
                        item.digest, item.request.beta, method=item.method,
                        seed=item.request.seed,
                        validate=item.request.validate,
                        **dict(item.request.options),
                    )

            try:
                return await asyncio.gather(
                    *(one(item) for item in prepared),
                    return_exceptions=True,
                )
            finally:
                await client.aclose()

        for attempt in (0, 1):
            for item in prepared:
                self._ensure_uploaded(item.request.graph, item.digest)
            try:
                outcomes = asyncio.run(drive())
            finally:
                for item in prepared:
                    self._release_upload(item.digest)
            failures = [
                (item, out)
                for item, out in zip(prepared, outcomes)
                if isinstance(out, BaseException)
            ]
            if not failures:
                return [
                    _result_from_served(
                        item.request.graph, served, item.request.beta,
                        item.method,
                    )
                    for item, served in zip(prepared, outcomes)
                ]
            stale = [
                item
                for item, out in failures
                if isinstance(out, ServeError)
                and "unknown graph digest" in str(out)
            ]
            if attempt == 0 and len(stale) == len(failures):
                # Self-heal exactly as the serial path does: the content
                # was discarded out from under us — forget and re-upload.
                with self._uploaded_lock:
                    for item in stale:
                        self._own_uploads.pop(item.digest, None)
                        self._shared_digests.discard(item.digest)
                continue
            first = failures[0][1]
            raise ServeError(
                f"batch decompose failed for {len(failures)} of "
                f"{len(prepared)} request(s); first error: {first}"
            ) from first

    def close(self) -> None:
        if self.closed:
            return
        super().close()
        if self._owns_client:
            self._client.close()


# ---------------------------------------------------------------------------
# defaults and resolution
# ---------------------------------------------------------------------------
_DEFAULT_LOCK = threading.Lock()
_DEFAULT: EngineProvider | None = None


def default_provider() -> EngineProvider:
    """The process-wide default :class:`EngineProvider`.

    Applications called without an explicit ``provider=`` share this one,
    so their decompositions memoize across calls (two solver builds on the
    same graph reuse every AKPW level, for instance).
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None or _DEFAULT.closed:
            _DEFAULT = EngineProvider()
        return _DEFAULT


def provider_from_spec(spec: str) -> DecompositionProvider:
    """Build a provider from a backend spec string.

    Accepted forms::

        engine                  in-process serial engine
        pool                    owned DecompositionPool (CPU-count workers)
        pool:WORKERS            owned pool with an explicit width
        serve:HOST:PORT         ServeClient against a running server
        cluster:HOST:PORT       ServeClient against a running ClusterRouter

    The returned provider owns whatever backend the spec names — close it
    (or use it as a context manager) when done.  Specs are how configs and
    CLIs choose a transport without importing backend classes; code that
    already holds a provider object passes it directly.
    """
    kind, _, rest = spec.partition(":")
    if kind == "engine":
        if rest:
            raise ParameterError(
                f"the engine spec takes no arguments, got {spec!r}"
            )
        return EngineProvider()
    if kind == "pool":
        if not rest:
            return PoolProvider()
        try:
            workers = int(rest)
        except ValueError:
            raise ParameterError(
                f"pool spec expects 'pool' or 'pool:WORKERS', got {spec!r}"
            ) from None
        return PoolProvider(max_workers=workers)
    if kind in ("serve", "cluster"):
        host, sep, port_text = rest.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            port = -1
        if not sep or not host or port < 0:
            raise ParameterError(
                f"{kind} spec expects '{kind}:HOST:PORT', got {spec!r}"
            )
        if kind == "cluster":
            from repro.cluster.provider import ClusterProvider

            return ClusterProvider(address=(host, port))
        return ServeProvider(address=(host, port))
    raise ParameterError(
        f"unknown provider spec {spec!r}; expected engine, pool[:WORKERS], "
        f"serve:HOST:PORT, or cluster:HOST:PORT"
    )


def resolve_provider(
    provider: "DecompositionProvider | str | None",
) -> DecompositionProvider:
    """``provider`` itself, the shared default when ``None``, or a new
    provider built from a spec string (see :func:`provider_from_spec` —
    string-resolved providers are owned by the caller)."""
    if provider is None:
        return default_provider()
    if isinstance(provider, str):
        return provider_from_spec(provider)
    if not isinstance(provider, DecompositionProvider):
        raise ParameterError(
            f"provider must be a DecompositionProvider, a spec string, or "
            f"None, got {type(provider).__name__}"
        )
    return provider


# ---------------------------------------------------------------------------
# slim transport (memo storage format)
# ---------------------------------------------------------------------------
def _slim(result: PartitionResult) -> tuple:
    """Graph-free memo payload; mirrors the pool's slim-result format."""
    from repro.runtime.pool import _slim_result

    return _slim_result(result)


def _rehydrate(graph: CSRGraph, slim: tuple) -> PartitionResult:
    from repro.runtime.pool import _rehydrate_result

    return _rehydrate_result(graph, slim)


def _slim_nbytes(slim: tuple) -> int:
    _kind, center, per_vertex = slim[0]
    return int(center.nbytes + per_vertex.nbytes)


def _result_from_served(
    graph: CSRGraph, served, beta: float, method: str
) -> PartitionResult:
    """Rebuild a local :class:`PartitionResult` from a serve-op result.

    The server returns assignment arrays plus a summary; the caller's
    graph object becomes the decomposition's graph, so applications
    cannot tell the backends apart.  ``validate=True`` ran server-side;
    ``report`` is ``None`` locally (the summary's ``invariants_ok`` field
    is the witness).
    """
    import numpy as np

    from repro.core.decomposition import Decomposition, PartitionTrace
    from repro.core.weighted import WeightedDecomposition

    if served.kind == "weighted":
        decomposition = WeightedDecomposition(
            graph=graph,
            center=np.ascontiguousarray(served.center),
            radius=np.ascontiguousarray(served.per_vertex),
        )
    else:
        decomposition = Decomposition(
            graph=graph,
            center=np.ascontiguousarray(served.center),
            hops=np.ascontiguousarray(served.per_vertex),
        )
    summary = served.summary
    delta_max = summary.get("delta_max")
    trace = PartitionTrace(
        method=str(summary.get("method", method)),
        beta=float(beta),
        rounds=int(float(summary.get("rounds", 0))),
        work=int(float(summary.get("work", 0))),
        depth=int(float(summary.get("depth", 0))),
        delta_max=(
            float("nan") if delta_max is None else float(delta_max)
        ),
        wall_time_s=float(summary.get("wall_time_s", 0.0)),
    )
    return PartitionResult(
        decomposition=decomposition, trace=trace, report=None
    )
