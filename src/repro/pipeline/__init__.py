"""Pipeline layer: applications × interchangeable decomposition backends.

The paper's decomposition is the substrate for its applications — spanners,
low-stretch trees, hierarchies, oracles.  This package routes every
application through one :class:`DecompositionProvider` seam so the same
application code runs against the serial engine, the shared-memory batch
runtime, or a remote decomposition server, with bit-identical outputs
(pinned by ``tests/test_pipeline.py``) and a per-provider memo layer that
reuses decompositions across recursion levels and repeated builds::

    from repro.graphs import grid_2d
    from repro.pipeline import PoolProvider
    from repro.spanners import ldd_spanner

    with PoolProvider(max_workers=4) as provider:
        res = ldd_spanner(grid_2d(100, 100), 0.1, seed=0, provider=provider)

See DESIGN.md §8 for the architecture.
"""

from repro.pipeline.providers import (
    DecomposeRequest,
    DecompositionProvider,
    EngineProvider,
    PoolProvider,
    ServeProvider,
    default_provider,
    provider_from_spec,
    resolve_provider,
)

__all__ = [
    "DecomposeRequest",
    "DecompositionProvider",
    "EngineProvider",
    "PoolProvider",
    "ServeProvider",
    "default_provider",
    "provider_from_spec",
    "resolve_provider",
]
