"""Graph spanners built from shifted decompositions."""

from repro.spanners.cluster_spanner import (
    SpannerResult,
    ldd_spanner,
    spanner_from_decomposition,
)
from repro.spanners.stretch import SpannerStretchReport, measure_spanner_stretch

__all__ = [
    "SpannerResult",
    "ldd_spanner",
    "spanner_from_decomposition",
    "SpannerStretchReport",
    "measure_spanner_stretch",
]
