"""Graph spanners from shifted decompositions (application of [12]).

Construction: decompose with parameter ``β``; keep

- every piece's BFS tree (connects each vertex to its center in ≤ r hops,
  where ``r`` is the piece radius), and
- **one** representative original edge per pair of adjacent pieces.

Stretch guarantee, per original edge ``(u, v)``:

- same piece: the tree detour through the center is ≤ ``2r``;
- different pieces: route ``u → center(u) → (tree) → a → b → (tree) →
  center(v) → v`` through the representative edge ``(a, b)`` of the piece
  pair, length ≤ ``r + r + 1 + r + r = 4r + 1``.

So the result is a ``(4r + 1)``-spanner with ``(n − k) + (#adjacent piece
pairs)`` edges, where ``r ≤ δ_max = O(log n / β)`` w.h.p.  Choosing
``β = ln n / k`` yields the classic O(k)-stretch regime.  The benchmark
measures actual stretch (far below the worst case) against the bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.decomposition import Decomposition
from repro.errors import GraphError
from repro.graphs.build import from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.ops import quotient_graph
from repro.pipeline import resolve_provider
from repro.rng.seeding import SeedLike, ensure_int_seed
from repro.trees.structure import bfs_forest_from_decomposition

__all__ = ["SpannerResult", "ldd_spanner", "spanner_from_decomposition"]


@dataclass(frozen=True, eq=False)
class SpannerResult:
    """A spanner subgraph plus its construction certificate."""

    spanner: CSRGraph
    decomposition: Decomposition
    #: guaranteed multiplicative stretch: 4·max_radius + 1.
    stretch_bound: int
    #: edges contributed by piece BFS trees / by inter-piece representatives.
    num_tree_edges: int
    num_bridge_edges: int

    @property
    def num_edges(self) -> int:
        return self.spanner.num_edges

    def size_ratio(self) -> float:
        """Spanner edges over original edges."""
        m = self.decomposition.graph.num_edges
        return self.num_edges / m if m else 0.0


def ldd_spanner(
    graph: CSRGraph,
    beta: float,
    *,
    seed: SeedLike = None,
    method: str = "auto",
    provider=None,
    **options: object,
) -> SpannerResult:
    """Decompose and build the cluster spanner in one call.

    The decomposition runs through the pipeline layer: ``provider`` is any
    :class:`~repro.pipeline.DecompositionProvider` (``None`` uses the
    shared in-process engine provider) and ``method``/``**options`` select
    any registered unweighted method.  Outputs are bit-identical across
    providers.
    """
    provider = resolve_provider(provider)
    result = provider.decompose(
        graph, beta, method=method, seed=ensure_int_seed(seed), **options
    )
    return spanner_from_decomposition(result.decomposition)


def spanner_from_decomposition(decomposition: Decomposition) -> SpannerResult:
    """Build the spanner for an existing decomposition."""
    graph = decomposition.graph
    n = graph.num_vertices
    forest = bfs_forest_from_decomposition(decomposition)
    child = np.flatnonzero(forest.parent != -1)
    tree_edges = np.stack([child, forest.parent[child]], axis=1)

    quotient = quotient_graph(graph, decomposition.labels)
    bridge_edges = quotient.representative_edge
    all_edges = (
        np.concatenate([tree_edges, bridge_edges], axis=0)
        if tree_edges.size or bridge_edges.size
        else np.zeros((0, 2), dtype=np.int64)
    )
    spanner = from_edges(n, all_edges, dedup=True)
    if spanner.num_edges != tree_edges.shape[0] + bridge_edges.shape[0]:
        # Tree and bridge sets are disjoint by construction (tree edges stay
        # inside pieces, bridges cross); overlap means an upstream bug.
        raise GraphError("spanner edge sets unexpectedly overlap")
    return SpannerResult(
        spanner=spanner,
        decomposition=decomposition,
        stretch_bound=4 * decomposition.max_radius() + 1,
        num_tree_edges=int(tree_edges.shape[0]),
        num_bridge_edges=int(bridge_edges.shape[0]),
    )
