"""Spanner stretch measurement.

A subgraph ``H ⊆ G`` is a *t-spanner* iff for every edge ``(u, v) ∈ G``,
``dist_H(u, v) ≤ t`` — checking edges suffices (path concatenation extends
the bound to all pairs).  Exact all-edge verification runs one BFS in ``H``
per distinct edge endpoint, which is fine at test sizes; the sampled variant
keeps benchmark sweeps linear.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.sequential import multi_source_bfs
from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.rng.seeding import SeedLike, make_generator

__all__ = ["SpannerStretchReport", "measure_spanner_stretch"]


@dataclass(frozen=True)
class SpannerStretchReport:
    """Observed per-edge stretch statistics (exact over checked edges)."""

    num_edges_checked: int
    mean: float
    max: float
    #: fraction of checked edges kept in the spanner (stretch exactly 1).
    kept_fraction: float


def measure_spanner_stretch(
    graph: CSRGraph,
    spanner: CSRGraph,
    *,
    max_sources: int | None = None,
    seed: SeedLike = None,
) -> SpannerStretchReport:
    """Measure ``dist_spanner(u, v)`` over graph edges ``(u, v)``.

    With ``max_sources=None`` every distinct edge source is BFS'd (exact,
    all edges).  Otherwise a uniform sample of that many source vertices is
    used and only their incident edges are checked — still exact per checked
    edge.  Raises if the spanner disconnects any checked edge's endpoints
    (then it is not a spanner at all).
    """
    if spanner.num_vertices != graph.num_vertices:
        raise GraphError("spanner must share the graph's vertex set")
    sources = np.unique(graph.edge_array()[:, 0])
    if max_sources is not None and sources.size > max_sources:
        rng = make_generator(seed)
        sources = rng.choice(sources, size=max_sources, replace=False)
        sources = np.unique(sources)
    stretches: list[np.ndarray] = []
    for s in sources:
        dist = multi_source_bfs(spanner, np.asarray([s], dtype=np.int64)).dist
        nbrs = graph.neighbors(int(s))
        d = dist[nbrs]
        if np.any(d < 0):
            raise GraphError(
                f"spanner disconnects vertex {int(s)} from a neighbour"
            )
        stretches.append(d.astype(np.float64))
    if not stretches:
        return SpannerStretchReport(
            num_edges_checked=0, mean=0.0, max=0.0, kept_fraction=1.0
        )
    # An edge whose endpoints are both sampled is counted once per endpoint,
    # which is harmless for mean/max reporting.
    all_s = np.concatenate(stretches)
    return SpannerStretchReport(
        num_edges_checked=int(all_s.size),
        mean=float(all_s.mean()),
        max=float(all_s.max()),
        kept_fraction=float((all_s == 1.0).mean()),
    )
