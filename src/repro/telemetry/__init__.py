"""Observability for the whole stack: metrics, tracing, and the enable flag.

Two halves (see DESIGN.md §11):

- :mod:`repro.telemetry.metrics` — a zero-dependency process-local
  :class:`MetricsRegistry` (counters, gauges, fixed-bucket histograms)
  whose snapshots are JSON-safe and mergeable across processes; the serve
  ``metrics`` op exposes it, the cluster router merges it shard-wide.
- :mod:`repro.telemetry.trace` — spans with cross-process context
  propagation over the serve protocol's JSON control headers; spans ride
  responses back to the client's JSON-lines sink.

:func:`enabled` gates the *deep* instrumentation — per-round BFS phase
timing and the per-decomposition histogram observations — which is the
only telemetry with measurable hot-loop cost (experiment OBS pins it ≤ 5%
enabled, ~0 disabled).  Serve-layer request counters/latency histograms
are always on: one dict update per request is free at protocol timescales.
Set ``REPRO_TELEMETRY=1`` (inherited by pool workers) or call
:func:`set_enabled`.
"""

from __future__ import annotations

import os

from repro.telemetry import metrics, trace
from repro.telemetry.metrics import (
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    render_prometheus,
)
from repro.telemetry.trace import (
    Span,
    adopt_context,
    collect_spans,
    current_context,
    disable_tracing,
    emit_spans,
    enable_tracing,
    format_trace_tree,
    read_spans,
    span,
    tracing_active,
)

__all__ = [
    "metrics",
    "trace",
    "MetricsRegistry",
    "get_registry",
    "merge_snapshots",
    "render_prometheus",
    "Span",
    "adopt_context",
    "collect_spans",
    "current_context",
    "disable_tracing",
    "emit_spans",
    "enable_tracing",
    "format_trace_tree",
    "read_spans",
    "span",
    "tracing_active",
    "enabled",
    "set_enabled",
]

_TRUTHY = {"1", "true", "yes", "on"}

_ENABLED = os.environ.get("REPRO_TELEMETRY", "").strip().lower() in _TRUTHY


def enabled() -> bool:
    """Whether deep (per-phase) instrumentation records anything."""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Runtime override of ``REPRO_TELEMETRY`` for this process only."""
    global _ENABLED
    _ENABLED = bool(flag)
