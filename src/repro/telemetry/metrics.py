"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

Zero-dependency by design — the registry is a locked dict of plain floats
and bucket arrays, so it can live in every process of the stack (client,
router, serve shard, pool worker) without dragging anything onto the hot
path beyond a dict update.  Three properties the serving layer relies on:

- **snapshot-able** — :meth:`MetricsRegistry.snapshot` returns a plain JSON
  tree (no numpy, no custom classes), so a snapshot can ride a serve frame
  header unchanged;
- **mergeable** — :func:`merge_snapshots` sums counters, gauges and
  histograms bucket-by-bucket across snapshots taken in *different
  processes*, which is exactly what the cluster router's ``metrics`` op
  does with its shards' answers.  Histogram merges require identical bucket
  edges; every series created from the same code path has them by
  construction, and a mismatch raises rather than silently mis-binning;
- **renderable** — :func:`render_prometheus` emits the Prometheus text
  exposition format (``_bucket``/``_sum``/``_count`` triplets with ``le``
  labels), so the snapshot is scrapeable without any new dependency.

Labelled series are stored flat under ``name{k="v",...}`` keys with sorted
label names, making equality of a series across processes a string match.

Gauges merge by summation — right for the occupancy-style gauges used here
(in-flight requests, resident graphs), where the cluster-wide value *is*
the sum over shards.  Do not put min/max-style gauges through a merge.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "COUNT_BUCKETS",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "gauge",
    "observe",
    "snapshot",
    "merge_snapshots",
    "render_prometheus",
]

#: Default histogram edges for latencies, in seconds (upper bounds; an
#: implicit +Inf overflow bucket is always appended).
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Power-of-two edges for count-valued observations (BFS rounds, work).
COUNT_BUCKETS = tuple(float(2 ** k) for k in range(0, 21))


def series_key(name: str, labels: dict | None) -> str:
    """Canonical flat key for a (name, labels) series: ``name{k="v",...}``."""
    if not labels:
        return name
    if len(labels) == 1:  # the common hot-path shape; skip the sort
        ((key, value),) = labels.items()
        return f'{name}{{{key}="{value}"}}'
    inner = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def split_series_key(key: str) -> tuple[str, str]:
    """Inverse-ish of :func:`series_key`: ``(base name, label body or "")``."""
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace + 1:-1]


class MetricsRegistry:
    """One process's metric store.  Thread-safe; cheap enough for hot paths.

    Normally used through the module-level global (:func:`get_registry` and
    the :func:`counter`/:func:`gauge`/:func:`observe` conveniences); tests
    construct private instances.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # key -> [edges tuple, counts list (len(edges)+1), sum, count]
        self._histograms: dict[str, list] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` (default 1) to a monotonically increasing counter."""
        key = series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a point-in-time value (last write wins within the process)."""
        key = series_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        *,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels,
    ) -> None:
        """Record ``value`` into a fixed-bucket histogram.

        The first observation of a series fixes its bucket edges; later
        observations ignore ``buckets`` (edges never change once created,
        which is what keeps cross-process merges well defined).
        """
        key = series_key(name, labels)
        value = float(value)
        with self._lock:
            series = self._histograms.get(key)
            if series is None:
                edges = tuple(float(b) for b in buckets)
                series = [edges, [0] * (len(edges) + 1), 0.0, 0]
                self._histograms[key] = series
            # First index whose edge >= value — the "le" bucket; past the
            # last edge lands in the +Inf overflow slot.  bisect runs in C,
            # keeping one observation in the low microseconds.
            series[1][bisect_left(series[0], value)] += 1
            series[2] += value
            series[3] += 1

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-safe copy of every series (see module docstring)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: {
                        "buckets": list(edges),
                        "counts": list(counts),
                        "sum": total,
                        "count": count,
                    }
                    for key, (edges, counts, total, count)
                    in self._histograms.items()
                },
            }

    def merge(self, snap: dict) -> None:
        """Fold a snapshot (possibly from another process) into this registry."""
        counters = snap.get("counters") or {}
        gauges = snap.get("gauges") or {}
        histograms = snap.get("histograms") or {}
        with self._lock:
            for key, value in counters.items():
                self._counters[key] = self._counters.get(key, 0.0) + value
            for key, value in gauges.items():
                self._gauges[key] = self._gauges.get(key, 0.0) + value
            for key, hist in histograms.items():
                edges = tuple(float(b) for b in hist["buckets"])
                series = self._histograms.get(key)
                if series is None:
                    series = [edges, [0] * (len(edges) + 1), 0.0, 0]
                    self._histograms[key] = series
                elif series[0] != edges:
                    raise ValueError(
                        f"histogram {key!r} bucket edges differ between "
                        "merge sources; refusing to mis-bin"
                    )
                for i, c in enumerate(hist["counts"]):
                    series[1][i] += c
                series[2] += hist["sum"]
                series[3] += hist["count"]

    def reset(self) -> None:
        """Drop every series (tests; never called in serving code)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Sum a list of snapshots into one (the cluster ``metrics`` merge)."""
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge(snap)
    return merged.snapshot()


def render_prometheus(snap: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()

    def _type_line(key: str, kind: str) -> str:
        base, _ = split_series_key(key)
        if base in typed:
            return ""
        typed.add(base)
        return f"# TYPE {base} {kind}\n"

    for key in sorted(snap.get("counters") or {}):
        lines.append(_type_line(key, "counter"))
        lines.append(f"{key} {_fmt(snap['counters'][key])}\n")
    for key in sorted(snap.get("gauges") or {}):
        lines.append(_type_line(key, "gauge"))
        lines.append(f"{key} {_fmt(snap['gauges'][key])}\n")
    for key in sorted(snap.get("histograms") or {}):
        hist = snap["histograms"][key]
        base, label_body = split_series_key(key)
        lines.append(_type_line(key, "histogram"))
        cumulative = 0
        for edge, count in zip(
            list(hist["buckets"]) + ["+Inf"], hist["counts"]
        ):
            cumulative += count
            le = edge if edge == "+Inf" else _fmt(edge)
            labels = f'{label_body},le="{le}"' if label_body else f'le="{le}"'
            lines.append(f"{base}_bucket{{{labels}}} {cumulative}\n")
        suffix = f"{{{label_body}}}" if label_body else ""
        lines.append(f"{base}_sum{suffix} {_fmt(hist['sum'])}\n")
        lines.append(f"{base}_count{suffix} {hist['count']}\n")
    return "".join(lines)


def _fmt(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


# ---------------------------------------------------------------------------
# the process-global registry
# ---------------------------------------------------------------------------
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry every instrumented module records into."""
    return _REGISTRY


def counter(name: str, value: float = 1.0, **labels) -> None:
    _REGISTRY.counter(name, value, **labels)


def gauge(name: str, value: float, **labels) -> None:
    _REGISTRY.gauge(name, value, **labels)


def observe(
    name: str,
    value: float,
    *,
    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    **labels,
) -> None:
    _REGISTRY.observe(name, value, buckets=buckets, **labels)


def snapshot() -> dict:
    return _REGISTRY.snapshot()
