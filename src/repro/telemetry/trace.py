"""Distributed tracing spans with end-to-end context propagation.

A *span* is one timed operation: ``{trace_id, span_id, parent_id, name,
ts, dur_ms, proc, pid, attrs}``.  Durations come from ``perf_counter`` (a
monotonic clock — wall-clock steps cannot produce negative spans); ``ts``
is wall-clock epoch seconds, used only to order siblings when printing.

The API is ``NullHandler``-shaped: :func:`span` is a context manager that,
when tracing is *inactive*, yields a shared no-op object without touching
contextvars or clocks — the disabled cost is two contextvar reads.  Tracing
is active when either

- a **sink** is installed (:func:`enable_tracing` — a JSON-lines file path
  or a callable), the client-side mode: every finished span is written as
  one JSON line; or
- a **collector** is active (:func:`collect_spans`), the server/worker-side
  mode: finished spans are appended to a per-request list that the serving
  layer attaches to its response frame.

Propagation works *backwards*: the request carries only the tiny context
(``{"trace_id", "span_id"}`` in the frame's JSON control header, adopted
remotely via :func:`adopt_context`), while the spans themselves ride the
**response** — pool workers return theirs inside the slim result, shard
servers attach theirs as a ``spans`` header field, the cluster router
appends its relay span during the header-only restamp, and the client
finally re-emits everything (:func:`emit_spans`) into its local sink.  One
JSON-lines file therefore holds the complete multi-process tree, which
``repro trace <file>`` pretty-prints via :func:`format_trace_tree`.

Parent/child linking within a process is a contextvar, so concurrent
asyncio requests and threads each see their own current span.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "Span",
    "span",
    "current_context",
    "adopt_context",
    "collect_spans",
    "emit_span",
    "emit_spans",
    "enable_tracing",
    "disable_tracing",
    "tracing_active",
    "new_trace_id",
    "new_span_id",
    "read_spans",
    "format_trace_tree",
]

#: (trace_id, span_id) of the innermost live (or adopted) span, per context.
_CTX: ContextVar[tuple[str, str] | None] = ContextVar(
    "repro_trace_ctx", default=None
)
#: Active per-request collector list, per context.
_COLLECT: ContextVar[list | None] = ContextVar(
    "repro_trace_collect", default=None
)

_sink = None          # callable(record) or None
_sink_file = None     # owned file object, when the sink is a path


def new_trace_id() -> str:
    return os.urandom(16).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


def tracing_active() -> bool:
    """True when a sink or a collector would receive a finished span."""
    return _sink is not None or _COLLECT.get() is not None


class Span:
    """A live span; annotate attributes via :meth:`annotate`.

    The module-level ``_NOOP`` instance is yielded when tracing is
    inactive: its ids are ``None`` and :meth:`annotate` does nothing, so
    instrumented code needs no enabled-checks of its own.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "attrs")

    def __init__(self, trace_id, span_id, parent_id, name) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs: dict = {}

    def annotate(self, **attrs) -> None:
        """Attach key/value attributes to the span record."""
        if self.span_id is not None:
            self.attrs.update(attrs)

    def context(self) -> dict | None:
        """The ``{"trace_id", "span_id"}`` dict a request header carries."""
        if self.span_id is None:
            return None
        return {"trace_id": self.trace_id, "span_id": self.span_id}


_NOOP = Span(None, None, None, None)


@contextmanager
def span(name: str, **attrs):
    """Time a block as one span; no-op (yields ``_NOOP``) when inactive."""
    if not tracing_active():
        yield _NOOP
        return
    ctx = _CTX.get()
    if ctx is not None:
        trace_id, parent_id = ctx
    else:
        trace_id, parent_id = new_trace_id(), None
    live = Span(trace_id, new_span_id(), parent_id, name)
    if attrs:
        live.attrs.update(attrs)
    token = _CTX.set((trace_id, live.span_id))
    wall = time.time()
    start = time.perf_counter()
    try:
        yield live
    finally:
        dur_ms = (time.perf_counter() - start) * 1e3
        _CTX.reset(token)
        emit_span({
            "trace_id": live.trace_id,
            "span_id": live.span_id,
            "parent_id": live.parent_id,
            "name": live.name,
            "ts": wall,
            "dur_ms": dur_ms,
            "pid": os.getpid(),
            "attrs": live.attrs,
        })


def current_context() -> dict | None:
    """``{"trace_id", "span_id"}`` of the innermost span, or ``None``."""
    ctx = _CTX.get()
    if ctx is None:
        return None
    return {"trace_id": ctx[0], "span_id": ctx[1]}


@contextmanager
def adopt_context(trace_id: str, span_id: str | None):
    """Make a remote span the current parent (server/worker side)."""
    token = _CTX.set((trace_id, span_id))
    try:
        yield
    finally:
        _CTX.reset(token)


@contextmanager
def collect_spans():
    """Collect every span finished inside the block into the yielded list."""
    spans: list[dict] = []
    token = _COLLECT.set(spans)
    try:
        yield spans
    finally:
        _COLLECT.reset(token)


def emit_span(record: dict) -> None:
    """Deliver one finished span to the active collector, else the sink.

    The collector takes precedence: a span collected server-side is going
    to ride the response home and be re-emitted by the requester, so also
    writing it to a same-process sink (the loopback topology of tests and
    ``serve_background``) would record it twice.
    """
    collected = _COLLECT.get()
    if collected is not None:
        collected.append(record)
        return
    sink = _sink
    if sink is not None:
        sink(record)


def emit_spans(records) -> None:
    """Re-emit remote span records (from a response frame) locally."""
    for record in records:
        if isinstance(record, dict):
            emit_span(record)


def enable_tracing(target) -> None:
    """Install the process sink: a JSON-lines path or a ``dict -> None``
    callable.  Replaces any previous sink (closing an owned file)."""
    global _sink, _sink_file
    disable_tracing()
    if callable(target):
        _sink = target
        return
    handle = open(target, "a", encoding="utf-8")

    def _write(record: dict) -> None:
        handle.write(json.dumps(record, default=str) + "\n")
        handle.flush()

    _sink_file = handle
    _sink = _write


def disable_tracing() -> None:
    """Remove the sink (collector-based tracing is unaffected)."""
    global _sink, _sink_file
    _sink = None
    handle, _sink_file = _sink_file, None
    if handle is not None:
        handle.close()


# ---------------------------------------------------------------------------
# reading and pretty-printing (the `repro trace` subcommand)
# ---------------------------------------------------------------------------
def read_spans(path) -> list[dict]:
    """Parse a JSON-lines trace file, skipping non-span lines."""
    spans: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "span_id" in record:
                spans.append(record)
    return spans


def format_trace_tree(spans: list[dict]) -> str:
    """Render spans as per-trace ASCII trees, siblings ordered by start."""
    by_trace: dict[str, list[dict]] = {}
    for record in spans:
        by_trace.setdefault(str(record.get("trace_id")), []).append(record)
    blocks: list[str] = []
    for trace_id in sorted(by_trace):
        members = by_trace[trace_id]
        ids = {record.get("span_id") for record in members}
        children: dict[object, list[dict]] = {}
        roots: list[dict] = []
        for record in members:
            parent = record.get("parent_id")
            if parent in ids:
                children.setdefault(parent, []).append(record)
            else:
                roots.append(record)  # orphan parents print as roots
        for bucket in children.values():
            bucket.sort(key=lambda r: r.get("ts") or 0)
        roots.sort(key=lambda r: r.get("ts") or 0)
        total_ms = sum(r.get("dur_ms") or 0 for r in roots)
        lines = [
            f"trace {trace_id}  ({len(members)} span(s), "
            f"{total_ms:.2f} ms at root)"
        ]

        def _emit(record: dict, prefix: str, last: bool) -> None:
            connector = "└─ " if last else "├─ "
            attrs = record.get("attrs") or {}
            attr_text = "".join(
                f" {key}={attrs[key]}" for key in sorted(attrs)
            )
            lines.append(
                f"{prefix}{connector}{record.get('name')}  "
                f"{record.get('dur_ms', 0):.2f} ms"
                f"  [pid {record.get('pid', '?')}]{attr_text}"
            )
            kids = children.get(record.get("span_id"), [])
            extension = "   " if last else "│  "
            for i, kid in enumerate(kids):
                _emit(kid, prefix + extension, i == len(kids) - 1)

        for i, root in enumerate(roots):
            _emit(root, "", i == len(roots) - 1)
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
