"""Stretch measurement for spanning trees.

The quality measure of the low-stretch application: the *stretch* of edge
``(u, v)`` with respect to tree ``T`` is ``dist_T(u, v) / w(u, v)``
(``dist_T(u, v)`` for unweighted graphs).  Average stretch over all edges is
the quantity the solver condition-number bound depends on (the total stretch
bounds the preconditioned system's condition number), so the solver benchmark
reports it alongside PCG iteration counts.

All-edge evaluation is exact and vectorised through the LCA index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.weighted import WeightedCSRGraph
from repro.trees.lca import LCAIndex
from repro.trees.structure import RootedForest

__all__ = ["StretchReport", "edge_stretches", "stretch_report"]


@dataclass(frozen=True)
class StretchReport:
    """Summary statistics of per-edge stretches."""

    num_edges: int
    mean: float
    max: float
    median: float
    total: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"stretch(mean={self.mean:.3f}, median={self.median:.3f}, "
            f"max={self.max:.1f}, total={self.total:.1f}, m={self.num_edges})"
        )


def edge_stretches(
    graph: CSRGraph,
    forest: RootedForest,
    *,
    lca: LCAIndex | None = None,
) -> np.ndarray:
    """Per-edge stretch of every graph edge w.r.t. the forest.

    The forest must span each connected component of the graph (an edge whose
    endpoints sit in different trees has no tree path — that is an upstream
    bug, so it raises).  For weighted graphs the tree path length uses the
    forest's edge weights and divides by the graph edge's weight.
    """
    if forest.num_vertices != graph.num_vertices:
        raise GraphError("forest and graph must share the vertex set")
    edges = graph.edge_array()
    if edges.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    index = lca if lca is not None else LCAIndex(forest)
    weighted = isinstance(graph, WeightedCSRGraph)
    tree_dist = index.tree_distance(
        edges[:, 0], edges[:, 1], weighted=weighted
    )
    if np.any(~np.isfinite(tree_dist)):
        raise GraphError("forest does not span a component containing an edge")
    if weighted:
        return tree_dist / graph.edge_weight_array()
    return tree_dist


def stretch_report(
    graph: CSRGraph,
    forest: RootedForest,
    *,
    lca: LCAIndex | None = None,
) -> StretchReport:
    """Exact all-edges stretch summary."""
    s = edge_stretches(graph, forest, lca=lca)
    if s.size == 0:
        return StretchReport(num_edges=0, mean=0.0, max=0.0, median=0.0, total=0.0)
    return StretchReport(
        num_edges=int(s.size),
        mean=float(s.mean()),
        max=float(s.max()),
        median=float(np.median(s)),
        total=float(s.sum()),
    )
