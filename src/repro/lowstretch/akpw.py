"""AKPW-style low-stretch spanning trees via iterated decomposition.

The application the paper most directly targets (its Section 1: the LDD "can
be used in place of Partition from [9] to give a faster algorithm for
solving SDD linear systems", whose core is a low-stretch spanning tree).
The Alon–Karp–Peleg–West construction [3], specialised to unweighted graphs:

1. decompose the current (multi)graph with the shifted partition;
2. add every piece's BFS tree (in *original* edge form) to the forest;
3. contract the pieces and repeat on the quotient until no edges remain.

Each level's pieces have ``O(log n / β)`` diameter and cut an expected
``β``-fraction of edges, so the number of levels is ``O(log m / log(1/β))``
and the stretch of an edge is geometric in the level at which it is finally
contracted — the classic AKPW trade-off, measured in
``benchmarks/bench_lowstretch.py`` against the BFS-tree baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.sequential import multi_source_bfs
from repro.core.decomposition import Decomposition
from repro.errors import GraphError, ParameterError
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph
from repro.graphs.ops import (
    connected_components,
    induced_subgraph,
    quotient_graph,
)
from repro.pipeline import DecomposeRequest, resolve_provider
from repro.rng.seeding import (
    SeedLike,
    derive_seed,
    ensure_int_seed,
    make_generator,
)
from repro.trees.structure import RootedForest, bfs_forest_from_decomposition

__all__ = ["AKPWResult", "akpw_spanning_tree", "bfs_spanning_tree"]


@dataclass(frozen=True, eq=False)
class AKPWResult:
    """Spanning forest plus the per-level record of the construction."""

    forest: RootedForest
    #: (num supernodes, num edges) of the contracted graph entering level i.
    level_sizes: list[tuple[int, int]]
    #: β used at each level (the guard may halve it to force progress).
    level_betas: list[float]

    @property
    def num_levels(self) -> int:
        return len(self.level_sizes)


def akpw_spanning_tree(
    graph: CSRGraph,
    *,
    beta: float = 0.5,
    seed: SeedLike = None,
    max_levels: int = 64,
    method: str = "auto",
    provider=None,
    max_concurrent: int | None = None,
    **options: object,
) -> AKPWResult:
    """Build a spanning forest of ``graph`` by iterated LDD + contraction.

    ``beta`` controls the per-level decomposition (larger β → more, smaller
    pieces per level → more levels → higher stretch but shallower trees).
    Works on disconnected graphs (yields one tree per component).

    Per-level decompositions run through the pipeline layer (``provider``,
    ``method``, ``**options`` — see :mod:`repro.pipeline`).  A level's
    connected components are independent, so they are submitted together
    through :meth:`~repro.pipeline.DecompositionProvider.decompose_batch`
    (``max_concurrent`` bounds the in-flight window; ``None`` = the
    backend's own bound).  Each piece's sub-seed is derived from the root
    seed and the piece's *content digest*, so results are independent of
    submission order and concurrency — bit-identical on every backend at
    any ``max_concurrent`` — and identical pieces dedup into one
    execution.  Single-vertex components never leave the process: they
    are assigned their trivial one-cluster decomposition locally.
    """
    if not 0 < beta < 1:
        raise ParameterError(f"beta must be in (0, 1), got {beta}")
    n = graph.num_vertices
    if n == 0:
        raise GraphError("cannot build a tree on the empty graph")
    provider = resolve_provider(provider)
    root_seed = ensure_int_seed(seed)

    # Current contracted graph; cur_orig_edges[i] is the original-graph edge
    # realising the i-th current edge (aligned with edge_array() rows).
    # ``None`` means the identity map — level 0 never materialises the
    # O(m) canonical edge table, which is what lets a memmap-backed graph
    # run with peak RSS bounded by the first quotient, not the input.
    cur = graph
    cur_orig_edges: np.ndarray | None = None
    tree_edges: list[np.ndarray] = []
    level_sizes: list[tuple[int, int]] = []
    level_betas: list[float] = []
    level_beta = beta

    for level in range(max_levels):
        if cur.num_edges == 0:
            break
        level_sizes.append((cur.num_vertices, cur.num_edges))
        level_betas.append(level_beta)
        decomposition = _decompose_level(
            cur,
            level_beta,
            provider=provider,
            method=method,
            root_seed=root_seed,
            options=options,
            max_concurrent=max_concurrent,
        )
        piece_forest = bfs_forest_from_decomposition(decomposition)
        child = np.flatnonzero(piece_forest.parent != -1)
        if child.size:
            level_edges = np.stack(
                [child, piece_forest.parent[child]], axis=1
            )
            tree_edges.append(
                _map_to_original(cur, cur_orig_edges, level_edges)
            )
        if decomposition.num_pieces == cur.num_vertices:
            # No contraction happened; force larger pieces next level.
            level_beta = max(level_beta / 2.0, 1e-6)
            continue
        quotient = quotient_graph(cur, decomposition.labels)
        rep = quotient.representative_edge  # current-level endpoint pairs
        cur_orig_edges = _map_to_original(cur, cur_orig_edges, rep)
        cur = quotient.graph
    else:
        if cur.num_edges:
            raise GraphError(
                f"AKPW did not terminate within {max_levels} levels"
            )

    all_edges = (
        np.concatenate(tree_edges, axis=0)
        if tree_edges
        else np.zeros((0, 2), dtype=np.int64)
    )
    forest = _forest_from_edge_set(graph.num_vertices, all_edges)
    return AKPWResult(
        forest=forest, level_sizes=level_sizes, level_betas=level_betas
    )


def _decompose_level(
    cur: CSRGraph,
    beta: float,
    *,
    provider,
    method: str,
    root_seed: int,
    options: dict,
    max_concurrent: int | None,
) -> Decomposition:
    """Decompose one AKPW level, batching its independent components.

    The level's connected components are decomposed independently (one
    :class:`DecomposeRequest` per non-trivial component, seeded by the
    component's content digest) and stitched back into one global
    :class:`Decomposition` on ``cur``.  Decomposing a component of its
    containing graph is exact — no shift sequence ever crosses a component
    boundary — so the stitched result equals a whole-graph decomposition
    with per-component seeding, on any backend, in any completion order.
    """
    labels = connected_components(cur)
    num_components = int(labels.max()) + 1 if labels.size else 0
    if num_components <= 1:
        request = DecomposeRequest(
            cur,
            beta,
            method=method,
            seed=derive_seed(root_seed, "akpw", provider.graph_key(cur)),
            options=options,
        )
        outcome = provider.decompose_batch(
            [request], max_concurrent=max_concurrent
        )
        return outcome[0].decomposition
    # Trivial default: every vertex its own piece — correct as-is for
    # single-vertex components, overwritten for the decomposed ones.
    center = np.arange(cur.num_vertices, dtype=np.int64)
    hops = np.zeros(cur.num_vertices, dtype=np.int64)
    requests: list[DecomposeRequest] = []
    piece_members: list[np.ndarray] = []
    order = np.argsort(labels, kind="stable")
    bounds = np.searchsorted(labels[order], np.arange(num_components + 1))
    for component in range(num_components):
        members = order[bounds[component]:bounds[component + 1]]
        if members.size <= 1:
            continue
        sub = induced_subgraph(cur, members)
        requests.append(
            DecomposeRequest(
                sub.graph,
                beta,
                method=method,
                seed=derive_seed(
                    root_seed, "akpw", provider.graph_key(sub.graph)
                ),
                options=options,
            )
        )
        piece_members.append(members)
    results = provider.decompose_batch(
        requests, max_concurrent=max_concurrent
    )
    for members, result in zip(piece_members, results):
        sub_dec = result.decomposition
        center[members] = members[sub_dec.center]
        hops[members] = sub_dec.hops
    return Decomposition(graph=cur, center=center, hops=hops)


def _map_to_original(
    cur: CSRGraph,
    cur_orig_edges: np.ndarray | None,
    level_edges: np.ndarray,
) -> np.ndarray:
    """Translate current-level endpoint pairs to original-graph edges.

    ``cur_orig_edges`` is aligned with ``cur.edge_array()``, whose rows are
    sorted by the canonical key ``lo·n + hi`` — so a vectorised
    ``searchsorted`` finds each queried edge's row.  ``None`` is the
    level-0 identity map: the queried pairs (BFS tree edges, quotient
    representatives) are guaranteed edges of ``cur``, which *is* the
    original graph, so they map to themselves without touching the edge
    table at all.
    """
    lo = np.minimum(level_edges[:, 0], level_edges[:, 1])
    hi = np.maximum(level_edges[:, 0], level_edges[:, 1])
    if cur_orig_edges is None:
        return np.stack([lo, hi], axis=1).astype(np.int64)
    n = cur.num_vertices
    canon = cur.edge_array()
    keys = canon[:, 0] * n + canon[:, 1]
    q = lo * n + hi
    pos = np.searchsorted(keys, q)
    if np.any(pos >= keys.shape[0]) or np.any(keys[pos] != q):
        raise GraphError("tree edge not present in current graph")
    return cur_orig_edges[pos]


def _forest_from_edge_set(
    num_vertices: int, edges: np.ndarray
) -> RootedForest:
    """Orient an acyclic edge set into a rooted forest via BFS.

    Roots are the smallest vertex of each component; a cycle in the edge set
    (which would indicate an algorithmic bug upstream) is detected by the
    edge count exceeding ``n − #components``.
    """
    from repro.graphs.build import from_edges

    skeleton = from_edges(num_vertices, edges, dedup=True)
    if skeleton.num_edges != edges.shape[0]:
        raise GraphError("duplicate edges in spanning forest")
    parent = np.full(num_vertices, -1, dtype=np.int64)
    visited = np.zeros(num_vertices, dtype=bool)
    num_components = 0
    for root in range(num_vertices):
        if visited[root]:
            continue
        num_components += 1
        res = multi_source_bfs(skeleton, np.asarray([root], dtype=np.int64))
        comp = res.dist >= 0
        visited |= comp
        parent[comp] = res.parent[comp]
        parent[root] = -1
    if skeleton.num_edges != num_vertices - num_components:
        raise GraphError("edge set is not a spanning forest (cycle present)")
    return RootedForest.from_parents(parent)


def bfs_spanning_tree(
    graph: CSRGraph, *, root: int | None = None, seed: SeedLike = None
) -> RootedForest:
    """Baseline: BFS spanning forest from a (random) root per component.

    The comparison point for the low-stretch benchmark — BFS trees have
    low diameter but Ω(n)-stretch worst cases (e.g. cycles).
    """
    n = graph.num_vertices
    if n == 0:
        raise GraphError("cannot build a tree on the empty graph")
    rng = make_generator(seed)
    parent = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    preferred = int(rng.integers(n)) if root is None else int(root)
    order = [preferred] + [v for v in range(n) if v != preferred]
    for r in order:
        if visited[r]:
            continue
        res = multi_source_bfs(graph, np.asarray([r], dtype=np.int64))
        comp = res.dist >= 0
        visited |= comp
        parent[comp] = res.parent[comp]
        parent[r] = -1
    return RootedForest.from_parents(parent)
