"""Low-stretch spanning trees via iterated shifted decompositions (AKPW)."""

from repro.lowstretch.akpw import AKPWResult, akpw_spanning_tree, bfs_spanning_tree
from repro.lowstretch.stretch import StretchReport, edge_stretches, stretch_report

__all__ = [
    "AKPWResult",
    "akpw_spanning_tree",
    "bfs_spanning_tree",
    "StretchReport",
    "edge_stretches",
    "stretch_report",
]
