"""Rooted forests, Euler-tour LCA, and tree-distance queries."""

from repro.trees.lca import LCAIndex
from repro.trees.structure import RootedForest, bfs_forest_from_decomposition

__all__ = ["LCAIndex", "RootedForest", "bfs_forest_from_decomposition"]
