"""Lowest common ancestors via Euler tour + sparse-table RMQ.

Computing the *stretch* of a spanning tree (every application benchmark
needs it) requires tree distances for up to ``m`` vertex pairs; per-pair
walking would be ``O(m · depth)``.  The classical reduction — LCA equals the
range-minimum of depths over the Euler tour segment between two first visits
— answers each pair in O(1) after ``O(n log n)`` preprocessing, making exact
all-edges stretch evaluation cheap.

The sparse table is built with vectorised NumPy mins per level, and batch
queries are vectorised over pair arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError, ParameterError
from repro.trees.structure import RootedForest

__all__ = ["LCAIndex"]


class LCAIndex:
    """Constant-time LCA and tree-distance queries over a rooted forest."""

    def __init__(self, forest: RootedForest) -> None:
        self._forest = forest
        n = forest.num_vertices
        if n == 0:
            raise ParameterError("cannot index an empty forest")
        tour, first, tour_depth = _euler_tour(forest)
        self._first = first
        self._tour = tour
        self._component = _component_of(forest)
        self._table, self._arg = _build_sparse_table(tour_depth)
        self._hop_depth = forest.depth.astype(np.int64)
        self._weighted_depth = forest.weighted_depth()

    # ------------------------------------------------------------------
    def lca(self, u: np.ndarray | int, v: np.ndarray | int) -> np.ndarray:
        """Lowest common ancestor(s); −1 for pairs in different trees.

        Accepts scalars or equal-length arrays (vectorised batch mode).
        """
        u_arr = np.atleast_1d(np.asarray(u, dtype=np.int64))
        v_arr = np.atleast_1d(np.asarray(v, dtype=np.int64))
        if u_arr.shape != v_arr.shape:
            raise ParameterError("u and v must have matching shapes")
        n = self._forest.num_vertices
        if u_arr.size and (
            min(u_arr.min(), v_arr.min()) < 0
            or max(u_arr.max(), v_arr.max()) >= n
        ):
            raise ParameterError("vertex ids out of range")
        lo = np.minimum(self._first[u_arr], self._first[v_arr])
        hi = np.maximum(self._first[u_arr], self._first[v_arr])
        pos = _query_argmin(self._table, self._arg, lo, hi)
        out = self._tour[pos]
        cross = self._component[u_arr] != self._component[v_arr]
        return np.where(cross, -1, out)

    def tree_distance(
        self, u: np.ndarray | int, v: np.ndarray | int, *, weighted: bool = False
    ) -> np.ndarray:
        """Hop (or weighted) distance between ``u`` and ``v`` in the forest.

        Pairs in different trees get ``inf``.
        """
        u_arr = np.atleast_1d(np.asarray(u, dtype=np.int64))
        v_arr = np.atleast_1d(np.asarray(v, dtype=np.int64))
        anc = self.lca(u_arr, v_arr)
        depth = self._weighted_depth if weighted else self._hop_depth
        ok = anc != -1
        safe_anc = np.where(ok, anc, 0)
        dist = (
            depth[u_arr] + depth[v_arr] - 2.0 * depth[safe_anc]
        ).astype(np.float64)
        dist[~ok] = np.inf
        return dist


def _euler_tour(
    forest: RootedForest,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Euler tour of every tree in the forest (concatenated).

    Returns ``(tour vertices, first-visit index per vertex, tour depths)``.
    Iterative DFS; children are visited in ascending id order so the tour is
    deterministic.
    """
    n = forest.num_vertices
    parent = forest.parent
    # Build children lists via counting sort on parent.
    has_parent = parent != -1
    child = np.flatnonzero(has_parent)
    order = np.argsort(parent[child], kind="stable")
    child_sorted = child[order]
    counts = np.bincount(parent[child], minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])

    tour: list[int] = []
    tour_depth: list[int] = []
    first = np.full(n, -1, dtype=np.int64)
    depth = forest.depth
    for root in forest.roots():
        # Stack holds (vertex, next-child cursor).
        stack: list[list[int]] = [[int(root), 0]]
        first[root] = len(tour)
        tour.append(int(root))
        tour_depth.append(int(depth[root]))
        while stack:
            v, cursor = stack[-1]
            lo, hi = offsets[v], offsets[v + 1]
            if cursor < hi - lo:
                stack[-1][1] += 1
                c = int(child_sorted[lo + cursor])
                first[c] = len(tour)
                tour.append(c)
                tour_depth.append(int(depth[c]))
                stack.append([c, 0])
            else:
                stack.pop()
                if stack:
                    tour.append(stack[-1][0])
                    tour_depth.append(int(depth[stack[-1][0]]))
    if np.any(first == -1):
        raise GraphError("forest traversal missed vertices (corrupt parents)")
    return (
        np.asarray(tour, dtype=np.int64),
        first,
        np.asarray(tour_depth, dtype=np.int64),
    )


def _component_of(forest: RootedForest) -> np.ndarray:
    """Root id of each vertex (tree identity), via pointer jumping."""
    n = forest.num_vertices
    root = np.where(forest.parent == -1, np.arange(n), forest.parent)
    for _ in range(int(np.ceil(np.log2(n + 1))) + 2):
        nxt = root[root]
        if np.array_equal(nxt, root):
            break
        root = nxt
    return root


def _build_sparse_table(
    values: np.ndarray,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Sparse table of (min value, argmin position) over all power-of-two
    windows.  ``table[k][i]`` = min over ``values[i : i + 2^k]``."""
    m = int(values.shape[0])
    levels = max(1, m.bit_length())
    table = [values.astype(np.int64)]
    arg = [np.arange(m, dtype=np.int64)]
    for k in range(1, levels):
        half = 1 << (k - 1)
        span = m - (1 << k) + 1
        if span <= 0:
            break
        left = table[k - 1][:span]
        right = table[k - 1][half : half + span]
        take_right = right < left
        table.append(np.where(take_right, right, left))
        arg.append(
            np.where(take_right, arg[k - 1][half : half + span], arg[k - 1][:span])
        )
    return table, arg


def _query_argmin(
    table: list[np.ndarray],
    arg: list[np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Vectorised RMQ argmin over inclusive ranges ``[lo, hi]``."""
    length = hi - lo + 1
    # floor(log2(length)) per entry; lengths are >= 1 by construction.
    k = np.frompyfunc(lambda x: int(x).bit_length() - 1, 1, 1)(length).astype(
        np.int64
    )
    out = np.empty(lo.shape[0], dtype=np.int64)
    for level in np.unique(k):
        mask = k == level
        span = 1 << int(level)
        l_idx = lo[mask]
        r_idx = hi[mask] - span + 1
        t = table[int(level)]
        a = arg[int(level)]
        left_min = t[l_idx]
        right_min = t[r_idx]
        take_right = right_min < left_min
        out[mask] = np.where(take_right, a[r_idx], a[l_idx])
    return out
