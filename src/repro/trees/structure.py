"""Rooted forests — the substrate for trees built from decompositions.

Every application that consumes the LDD produces trees: BFS trees of pieces
(spanners, low-stretch trees), hierarchy trees (embeddings), spanning trees
(solver preconditioners).  :class:`RootedForest` stores them in parent-array
form with per-vertex depths, provides validation, traversal orders, and
conversion to an (undirected) edge list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph
from repro.graphs.build import from_edges

__all__ = ["RootedForest", "bfs_forest_from_decomposition"]


@dataclass(frozen=True, eq=False)
class RootedForest:
    """A forest over vertices ``0..n−1`` in parent-array form.

    ``parent[v] == −1`` marks roots.  ``edge_weight[v]`` is the weight of the
    edge ``(v, parent[v])`` (ignored at roots); defaults to 1.
    """

    parent: np.ndarray
    edge_weight: np.ndarray

    def __post_init__(self) -> None:
        parent = np.ascontiguousarray(self.parent, dtype=np.int64)
        weight = np.ascontiguousarray(self.edge_weight, dtype=np.float64)
        if parent.shape != weight.shape:
            raise GraphError("parent and edge_weight must align")
        n = parent.shape[0]
        if n and (parent.min() < -1 or parent.max() >= n):
            raise GraphError("parent ids out of range")
        if np.any(parent == np.arange(n)):
            raise GraphError("self-parent is not allowed (use -1 for roots)")
        object.__setattr__(self, "parent", parent)
        object.__setattr__(self, "edge_weight", weight)
        # Acyclicity check doubles as depth computation; raises on cycles.
        object.__setattr__(self, "_depth", _compute_depths(parent))

    @classmethod
    def from_parents(
        cls, parent: np.ndarray, edge_weight: np.ndarray | None = None
    ) -> "RootedForest":
        """Build from a parent array, defaulting to unit edge weights."""
        parent = np.asarray(parent, dtype=np.int64)
        if edge_weight is None:
            edge_weight = np.ones(parent.shape[0], dtype=np.float64)
        return cls(parent=parent, edge_weight=edge_weight)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return int(self.parent.shape[0])

    @property
    def depth(self) -> np.ndarray:
        """Hop depth of each vertex below its root."""
        return self._depth  # type: ignore[attr-defined]

    def roots(self) -> np.ndarray:
        """All root vertices."""
        return np.flatnonzero(self.parent == -1)

    def is_tree(self) -> bool:
        """True when the forest has exactly one root (a spanning tree)."""
        return self.num_vertices > 0 and self.roots().shape[0] == 1

    def num_edges(self) -> int:
        return int((self.parent != -1).sum())

    def weighted_depth(self) -> np.ndarray:
        """Sum of edge weights from each vertex to its root."""
        n = self.num_vertices
        out = np.zeros(n, dtype=np.float64)
        order = self.topological_order()
        for v in order:
            p = self.parent[v]
            if p != -1:
                out[v] = out[p] + self.edge_weight[v]
        return out

    def topological_order(self) -> np.ndarray:
        """Vertices ordered root-first (parents before children).

        Sorting by depth gives a valid order in one vectorised pass.
        """
        return np.argsort(self.depth, kind="stable")

    def to_graph(self, num_vertices: int | None = None) -> CSRGraph:
        """Undirected CSR graph of the forest's edges."""
        n = num_vertices if num_vertices is not None else self.num_vertices
        child = np.flatnonzero(self.parent != -1)
        edges = np.stack(
            [child.astype(VERTEX_DTYPE), self.parent[child]], axis=1
        )
        return from_edges(n, edges, dedup=False)

    def path_to_root(self, v: int) -> list[int]:
        """Vertices on the path from ``v`` to its root, inclusive."""
        path = [int(v)]
        while self.parent[path[-1]] != -1:
            path.append(int(self.parent[path[-1]]))
        return path


def _compute_depths(parent: np.ndarray) -> np.ndarray:
    """Depths via pointer jumping; raises :class:`GraphError` on cycles.

    Invariant: ``hops[v]`` is the edge count from ``v`` to ``jump[v]`` (or to
    its root once ``jump[v] == −1``).  Each pass doubles every unresolved
    pointer's reach, so ``⌈log₂ n⌉ + 1`` passes resolve any forest; anything
    still unresolved afterwards is a cycle.
    """
    n = int(parent.shape[0])
    jump = parent.copy()
    hops = np.where(parent == -1, 0, 1).astype(np.int64)
    for _ in range(int(np.ceil(np.log2(n + 1))) + 2):
        active = jump != -1
        if not active.any():
            return hops
        targets = jump[active]
        # Fancy-indexed RHS are gathered before assignment, so both updates
        # read the pre-pass state — the simultaneous PRAM semantics.
        hops[active] = hops[active] + hops[targets]
        jump[active] = jump[targets]
    if (jump != -1).any():
        raise GraphError("parent array contains a cycle")
    return hops


def bfs_forest_from_decomposition(decomposition) -> RootedForest:
    """BFS forest of a decomposition: each piece's shortest-path tree.

    The parent of ``v`` is any neighbour inside the same piece one hop closer
    to the center (Lemma 4.1 guarantees one exists); centers are roots.
    Fully vectorised over arcs.
    """
    graph = decomposition.graph
    n = graph.num_vertices
    src = graph.arc_sources()
    dst = graph.indices
    same = decomposition.center[src] == decomposition.center[dst]
    closer = decomposition.hops[dst] == decomposition.hops[src] - 1
    good = same & closer
    parent = np.full(n, -1, dtype=np.int64)
    # Last write wins; any qualifying neighbour is a valid BFS parent.
    parent[src[good]] = dst[good]
    is_center = decomposition.center == np.arange(n)
    parent[is_center] = -1
    missing = (parent == -1) & ~is_center
    if missing.any():
        raise GraphError(
            "decomposition violates Lemma 4.1: vertex without in-piece parent"
        )
    return RootedForest.from_parents(parent)
