"""Approximate distance oracles from shifted decompositions."""

from repro.oracles.cluster_oracle import (
    ClusterDistanceOracle,
    OracleErrorReport,
    build_oracle,
)

__all__ = ["ClusterDistanceOracle", "OracleErrorReport", "build_oracle"]
