"""Approximate distance oracles from shifted decompositions.

Motivated by Cohen's polylog-time approximate shortest paths [13] (the
decomposition the paper's predecessor [9] was itself modelled on): cluster
the graph, precompute (a) every vertex's distance to its center and (b)
all-pairs distances between *centers* on the cluster quotient graph, then
answer queries by routing through centers:

    ``est(u, v) = hops(u) + quotient_path_weight(center_u, center_v) + hops(v)``

where each quotient edge is weighted by an upper bound on the detour it
represents (``radius(A) + 1 + radius(B)`` for adjacent pieces A, B).  The
estimate never underestimates the true distance, and overestimates by a
factor governed by the piece radii — ``O(log n / β)`` multiplicative in the
worst case, far better on average (measured by ``bench_oracle``).

Preprocessing is ``O(m + k³)`` for ``k`` pieces (Floyd–Warshall on the
quotient), queries are O(1) — the classic oracle trade-off driven by β.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.sequential import multi_source_bfs
from repro.core.decomposition import Decomposition
from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.graphs.ops import quotient_graph
from repro.pipeline import resolve_provider
from repro.rng.seeding import SeedLike, ensure_int_seed, make_generator

__all__ = ["ClusterDistanceOracle", "OracleErrorReport", "build_oracle"]


@dataclass(frozen=True)
class OracleErrorReport:
    """Observed oracle quality over exact sampled distances."""

    num_pairs: int
    mean_ratio: float
    max_ratio: float
    #: fraction of evaluated pairs where the estimate is below the true
    #: distance (must be 0 — the estimate is an upper bound; tested).
    underestimate_fraction: float


class ClusterDistanceOracle:
    """O(1)-query upper-bound distance oracle over a decomposition."""

    def __init__(self, decomposition: Decomposition) -> None:
        self._decomposition = decomposition
        graph = decomposition.graph
        labels = decomposition.labels
        k = decomposition.num_pieces
        radii = decomposition.radii().astype(np.float64)

        quotient = quotient_graph(graph, labels)
        # Quotient edge (A, B) certifies a path of length ≤ r_A + 1 + r_B
        # between ANY u ∈ A, v ∈ B through centers and the representative
        # edge; as a center-to-center bound it is r_A + 1 + r_B as well.
        q_edges = quotient.graph.edge_array()
        dist = np.full((k, k), np.inf, dtype=np.float64)
        np.fill_diagonal(dist, 0.0)
        for a, b in q_edges:
            w = radii[a] + 1.0 + radii[b]
            dist[a, b] = min(dist[a, b], w)
            dist[b, a] = dist[a, b]
        # Floyd–Warshall, vectorised over the inner two dimensions.
        for mid in range(k):
            np.minimum(
                dist,
                dist[:, mid : mid + 1] + dist[mid : mid + 1, :],
                out=dist,
            )
        self._center_dist = dist
        self._labels = labels
        self._hops = decomposition.hops.astype(np.float64)

    @property
    def num_pieces(self) -> int:
        return int(self._center_dist.shape[0])

    def estimate(
        self, u: np.ndarray | int, v: np.ndarray | int
    ) -> np.ndarray:
        """Upper-bound distance estimate(s); ``inf`` across components."""
        u_arr = np.atleast_1d(np.asarray(u, dtype=np.int64))
        v_arr = np.atleast_1d(np.asarray(v, dtype=np.int64))
        if u_arr.shape != v_arr.shape:
            raise ParameterError("u and v must have matching shapes")
        lu, lv = self._labels[u_arr], self._labels[v_arr]
        est = self._hops[u_arr] + self._center_dist[lu, lv] + self._hops[v_arr]
        # Same-piece queries: route through the shared center.
        same = lu == lv
        est[same] = self._hops[u_arr[same]] + self._hops[v_arr[same]]
        est[u_arr == v_arr] = 0.0
        return est

    def evaluate(
        self,
        *,
        num_sources: int = 8,
        seed: SeedLike = None,
    ) -> OracleErrorReport:
        """Compare estimates against exact BFS distances from a sample."""
        graph = self._decomposition.graph
        n = graph.num_vertices
        rng = make_generator(seed)
        sources = rng.choice(n, size=min(num_sources, n), replace=False)
        ratios: list[np.ndarray] = []
        under = 0
        total = 0
        for s in sources:
            exact = multi_source_bfs(
                graph, np.asarray([s], dtype=np.int64)
            ).dist
            others = np.flatnonzero(exact > 0)
            if others.size == 0:
                continue
            est = self.estimate(np.full(others.shape[0], s), others)
            d = exact[others].astype(np.float64)
            ratios.append(est / d)
            under += int((est < d - 1e-9).sum())
            total += int(d.size)
        if not ratios:
            return OracleErrorReport(
                num_pairs=0,
                mean_ratio=1.0,
                max_ratio=1.0,
                underestimate_fraction=0.0,
            )
        r = np.concatenate(ratios)
        return OracleErrorReport(
            num_pairs=int(r.size),
            mean_ratio=float(r.mean()),
            max_ratio=float(r.max()),
            underestimate_fraction=under / total if total else 0.0,
        )


def build_oracle(
    graph: CSRGraph,
    beta: float,
    *,
    seed: SeedLike = None,
    method: str = "auto",
    provider=None,
    **options: object,
) -> ClusterDistanceOracle:
    """Decompose and build the oracle in one call.

    The decomposition runs through the pipeline layer (``provider``,
    ``method``, ``**options`` — see :mod:`repro.pipeline`); the oracle is
    identical no matter which backend executed it.
    """
    provider = resolve_provider(provider)
    result = provider.decompose(
        graph, beta, method=method, seed=ensure_int_seed(seed), **options
    )
    return ClusterDistanceOracle(result.decomposition)
