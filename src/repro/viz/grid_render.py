"""Rendering grid decompositions — the Figure 1 artifact.

The paper's only figure shows a 1000×1000 grid decomposed at six values of
β, clusters coloured distinctly.  :func:`render_grid_ppm` reproduces it as a
binary PPM (P6) image — viewable everywhere, zero dependencies — and
:func:`render_grid_ascii` gives a terminal-sized thumbnail for quick looks
and doctests.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ParameterError
from repro.viz.palette import distinct_colors

__all__ = ["labels_to_image", "render_grid_ppm", "render_grid_ascii"]

_ASCII_GLYPHS = ".#o+x*%@=-:~^&"


def labels_to_image(
    labels: np.ndarray, rows: int, cols: int, *, seed: int = 0
) -> np.ndarray:
    """Map per-vertex labels of a ``rows × cols`` grid to an RGB image.

    Vertex ``(r, c)`` must have id ``r · cols + c`` (the
    :func:`repro.graphs.generators.grid_2d` convention).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape[0] != rows * cols:
        raise ParameterError(
            f"labels length {labels.shape[0]} != rows*cols {rows * cols}"
        )
    k = int(labels.max()) + 1 if labels.size else 0
    colors = distinct_colors(k, seed=seed)
    return colors[labels].reshape(rows, cols, 3)


def render_grid_ppm(
    labels: np.ndarray,
    rows: int,
    cols: int,
    path: str | Path,
    *,
    seed: int = 0,
    scale: int = 1,
) -> Path:
    """Write the coloured decomposition as a binary PPM; returns the path.

    ``scale`` up-samples each cell to a ``scale × scale`` block so small
    grids remain legible.
    """
    if scale < 1:
        raise ParameterError("scale must be >= 1")
    img = labels_to_image(labels, rows, cols, seed=seed)
    if scale > 1:
        img = np.repeat(np.repeat(img, scale, axis=0), scale, axis=1)
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(f"P6\n{img.shape[1]} {img.shape[0]}\n255\n".encode())
        fh.write(img.tobytes())
    return path


def render_grid_ascii(
    labels: np.ndarray,
    rows: int,
    cols: int,
    *,
    max_size: int = 60,
) -> str:
    """Terminal thumbnail: one glyph per (down-sampled) cell.

    Glyphs repeat after 14 clusters — adjacent clusters still almost always
    differ, which is all a thumbnail needs.
    """
    labels = np.asarray(labels, dtype=np.int64).reshape(rows, cols)
    step_r = max(1, rows // max_size)
    step_c = max(1, cols // max_size)
    sampled = labels[::step_r, ::step_c]
    glyphs = np.array(list(_ASCII_GLYPHS))
    lines = ["".join(row) for row in glyphs[sampled % len(_ASCII_GLYPHS)]]
    return "\n".join(lines)
