"""Rendering utilities (Figure 1 reproduction)."""

from repro.viz.grid_render import (
    labels_to_image,
    render_grid_ascii,
    render_grid_ppm,
)
from repro.viz.palette import distinct_colors, hsv_to_rgb

__all__ = [
    "labels_to_image",
    "render_grid_ascii",
    "render_grid_ppm",
    "distinct_colors",
    "hsv_to_rgb",
]
