"""Deterministic colour palettes for cluster rendering.

Figure 1 colours clusters arbitrarily; what matters is that adjacent
clusters get visually distinct colours.  A golden-ratio hue walk over HSV
gives unbounded, well-separated, deterministic colours without external
dependencies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = ["distinct_colors", "hsv_to_rgb"]

#: Golden-ratio conjugate: successive hues land maximally apart.
_GOLDEN = 0.6180339887498949


def hsv_to_rgb(h: np.ndarray, s: float, v: float) -> np.ndarray:
    """Vectorised HSV→RGB for hue array ``h ∈ [0, 1)``; returns uint8 (k, 3)."""
    h = np.asarray(h, dtype=np.float64) % 1.0
    i = np.floor(h * 6.0).astype(np.int64) % 6
    f = h * 6.0 - np.floor(h * 6.0)
    p = v * (1.0 - s)
    q = v * (1.0 - f * s)
    t = v * (1.0 - (1.0 - f) * s)
    ones = np.full_like(f, v)
    p_arr = np.full_like(f, p)
    channels = [
        (ones, t, p_arr),
        (q, ones, p_arr),
        (p_arr, ones, t),
        (p_arr, q, ones),
        (t, p_arr, ones),
        (ones, p_arr, q),
    ]
    rgb = np.empty((h.shape[0], 3), dtype=np.float64)
    for sector, (r, g, b) in enumerate(channels):
        mask = i == sector
        rgb[mask, 0] = r[mask]
        rgb[mask, 1] = g[mask]
        rgb[mask, 2] = b[mask]
    return np.clip(rgb * 255.0, 0, 255).astype(np.uint8)


def distinct_colors(k: int, *, seed: int = 0) -> np.ndarray:
    """``(k, 3)`` uint8 RGB colours, deterministic and well separated."""
    if k < 0:
        raise ParameterError("k must be >= 0")
    if k == 0:
        return np.zeros((0, 3), dtype=np.uint8)
    start = (seed * _GOLDEN) % 1.0
    hues = (start + _GOLDEN * np.arange(k)) % 1.0
    # Alternate saturation/value slightly so same-hue collisions at large k
    # still differ.
    colors = hsv_to_rgb(hues, 0.62, 0.95)
    dim = (np.arange(k) % 3) == 2
    colors[dim] = (colors[dim] * 0.75).astype(np.uint8)
    return colors
