"""Randomness substrate: exponential shifts, order statistics, permutations."""

from repro.rng.exponential import (
    exponential_cdf,
    exponential_pdf,
    exponential_tail,
    sample_exponential,
    sample_exponential_inverse_cdf,
    validate_beta,
)
from repro.rng.order_stats import (
    expected_maximum,
    expected_order_statistic,
    harmonic_number,
    high_probability_shift_bound,
    maximum_tail_bound,
    sample_order_statistics_via_spacings,
    sample_spacings,
    spacing_rates,
)
from repro.rng.permutation import (
    is_permutation,
    permutation_keys,
    random_permutation,
    ranks_from_keys,
)
from repro.rng.seeding import SeedLike, make_generator, spawn_generators

__all__ = [
    "SeedLike",
    "make_generator",
    "spawn_generators",
    "exponential_cdf",
    "exponential_pdf",
    "exponential_tail",
    "sample_exponential",
    "sample_exponential_inverse_cdf",
    "validate_beta",
    "expected_maximum",
    "expected_order_statistic",
    "harmonic_number",
    "high_probability_shift_bound",
    "maximum_tail_bound",
    "sample_order_statistics_via_spacings",
    "sample_spacings",
    "spacing_rates",
    "is_permutation",
    "permutation_keys",
    "random_permutation",
    "ranks_from_keys",
]
