"""Reproducible random streams.

Every randomised routine in the library accepts either an integer seed, a
``numpy.random.Generator`` or ``None`` and normalises it through
:func:`make_generator`.  Independent parallel streams — needed when the
multiprocessing backend samples shifts worker-locally — are derived with
:func:`spawn_generators`, which uses ``SeedSequence.spawn`` so streams are
statistically independent regardless of worker count.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_generator", "spawn_generators", "SeedLike"]

#: Accepted seed types throughout the public API.
SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def make_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalise any accepted seed type into a ``numpy.random.Generator``.

    Passing an existing generator returns it unchanged (shared stream), so
    sequential composition of randomised stages consumes one stream
    deterministically.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one root seed.

    Independence holds even when ``seed`` is itself a generator: we draw a
    fresh entropy integer from it to found the spawn tree.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(2**63)))
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]
