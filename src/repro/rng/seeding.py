"""Reproducible random streams.

Every randomised routine in the library accepts either an integer seed, a
``numpy.random.Generator`` or ``None`` and normalises it through
:func:`make_generator`.  Independent parallel streams — needed when the
multiprocessing backend samples shifts worker-locally — are derived with
:func:`spawn_generators`, which uses ``SeedSequence.spawn`` so streams are
statistically independent regardless of worker count.

The pipeline layer (:mod:`repro.pipeline`) keys every decomposition on an
*explicit integer seed* — that is what makes a request executable on any
backend (serial, pool, serve) and memoizable.  Multi-level consumers
normalise their root seed with :func:`ensure_int_seed` and derive one
integer sub-seed per internal decomposition with :func:`derive_seed`, so
the whole recursion is a pure function of the root integer.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "make_generator",
    "spawn_generators",
    "ensure_int_seed",
    "derive_seed",
    "SeedLike",
]

#: Accepted seed types throughout the public API.
SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def make_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalise any accepted seed type into a ``numpy.random.Generator``.

    Passing an existing generator returns it unchanged (shared stream), so
    sequential composition of randomised stages consumes one stream
    deterministically.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one root seed.

    Independence holds even when ``seed`` is itself a generator: we draw a
    fresh entropy integer from it to found the spawn tree.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(2**63)))
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def ensure_int_seed(seed: SeedLike = None) -> int:
    """Normalise any accepted seed into one concrete integer seed.

    Integers pass through unchanged (so caller-supplied seeds key caches
    verbatim); a generator contributes one draw from its stream; ``None``
    draws a fresh random seed.  The result is always a plain non-negative
    ``int`` suitable for :func:`derive_seed` and for shipping to remote
    decomposition backends.  Negative integers are rejected here — they
    would only fail later, deep inside a backend, as SeedSequence's
    entropy error.
    """
    if isinstance(seed, (bool, np.bool_)):
        raise TypeError("bool is not a valid seed")
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {int(seed)}")
        return int(seed)
    return int(make_generator(seed).integers(2**63))


def derive_seed(root: int, *tokens: object) -> int:
    """Deterministic 63-bit child seed from an integer root plus tokens.

    Hash-based (SHA-256 over the decimal root and the ``str`` of each
    token), so the derivation is stable across processes, platforms, and
    library versions — unlike drawing from a shared generator stream, whose
    value depends on every draw made before it.  Multi-level consumers use
    it to give each internal decomposition its own reproducible integer
    seed: ``derive_seed(root, "akpw", level)``.  Including a content token
    (a graph digest, say) makes equal subproblems map to equal seeds, which
    is what lets provider memo layers reuse decompositions across levels.
    """
    sha = hashlib.sha256(str(int(root)).encode("ascii"))
    for token in tokens:
        sha.update(b"\x1f")
        sha.update(str(token).encode("utf-8"))
    return int.from_bytes(sha.digest()[:8], "little") & (2**63 - 1)
