"""Permutation-based tie-breaking (paper §5).

Section 5 observes that because shifts are i.i.d. and the exponential is
memoryless, the *fractional parts* of the shifts behave as a uniformly random
lexicographic ordering of the vertices, so implementations may replace them
with an explicit random permutation: vertex ``u``'s tie-break key becomes its
rank.  This module generates such keys and converts between representations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.rng.seeding import SeedLike, make_generator

__all__ = [
    "random_permutation",
    "permutation_keys",
    "ranks_from_keys",
    "is_permutation",
]


def random_permutation(n: int, *, seed: SeedLike = None) -> np.ndarray:
    """Uniformly random permutation of ``0..n−1`` (Fisher–Yates via NumPy)."""
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    rng = make_generator(seed)
    return rng.permutation(n).astype(np.int64)


def permutation_keys(n: int, *, seed: SeedLike = None) -> np.ndarray:
    """Tie-break keys in ``[0, 1)``: vertex ``u`` gets ``rank(u)/n``.

    Keys are distinct, uniformly ordered, and drop into the frontier engine
    exactly where fractional shift parts would go — the §5 substitution.
    """
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    perm = random_permutation(n, seed=seed)
    ranks = np.empty(n, dtype=np.float64)
    ranks[perm] = np.arange(n, dtype=np.float64)
    return ranks / n


def ranks_from_keys(keys: np.ndarray) -> np.ndarray:
    """Rank vector of arbitrary distinct keys (0 = smallest)."""
    keys = np.asarray(keys)
    order = np.argsort(keys, kind="stable")
    ranks = np.empty(keys.shape[0], dtype=np.int64)
    ranks[order] = np.arange(keys.shape[0])
    return ranks


def is_permutation(arr: np.ndarray) -> bool:
    """Whether ``arr`` is a permutation of ``0..len(arr)−1``."""
    arr = np.asarray(arr)
    n = arr.shape[0]
    if n == 0:
        return True
    if arr.min() != 0 or arr.max() != n - 1:
        return False
    return bool(np.unique(arr).size == n)
