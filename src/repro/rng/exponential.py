"""Exponential shift sampling — the randomness at the heart of the paper.

The algorithm draws one shift per vertex from ``Exp(β)`` (density
``β·exp(−βx)``, mean ``1/β``).  Two samplers are provided:

- :func:`sample_exponential` — NumPy's ziggurat-based ``Generator.exponential``
  (the production path), and
- :func:`sample_exponential_inverse_cdf` — explicit inverse-CDF transform
  ``−ln(U)/β``, retained because the equivalence of the two is itself a test
  (both must drive identical decomposition *statistics*).

Also provides the distribution's cdf/pdf and the memorylessness helpers the
analysis (Lemmas 4.2/4.4) relies on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.rng.seeding import SeedLike, make_generator

__all__ = [
    "validate_beta",
    "sample_exponential",
    "sample_exponential_inverse_cdf",
    "exponential_cdf",
    "exponential_pdf",
    "exponential_tail",
]


def validate_beta(beta: float, *, upper: float = 1.0) -> float:
    """Check the decomposition parameter ``β ∈ (0, upper]``.

    Theorem 1.2 assumes ``β ≤ 1/2``; the implementation remains correct for
    any ``β ∈ (0, 1)`` (the guarantees simply degrade), so callers choose the
    bound they need.
    """
    beta = float(beta)
    if not (0.0 < beta <= upper):
        raise ParameterError(f"beta must be in (0, {upper}], got {beta}")
    return beta


def sample_exponential(
    beta: float, size: int, *, seed: SeedLike = None
) -> np.ndarray:
    """Draw ``size`` i.i.d. samples from ``Exp(β)`` (mean ``1/β``)."""
    beta = validate_beta(beta, upper=np.inf)
    rng = make_generator(seed)
    return rng.exponential(scale=1.0 / beta, size=size)


def sample_exponential_inverse_cdf(
    beta: float, size: int, *, seed: SeedLike = None
) -> np.ndarray:
    """Inverse-CDF sampler: ``−ln(1 − U)/β`` with ``U ~ Uniform[0, 1)``.

    Kept as an independently-implemented cross-check of the production
    sampler; property tests verify both produce the same distribution.
    """
    beta = validate_beta(beta, upper=np.inf)
    rng = make_generator(seed)
    u = rng.random(size)
    return -np.log1p(-u) / beta


def exponential_cdf(x: np.ndarray | float, beta: float) -> np.ndarray | float:
    """``F(x) = 1 − exp(−βx)`` for ``x ≥ 0``, 0 otherwise (paper §3)."""
    x = np.asarray(x, dtype=np.float64)
    out = np.where(x >= 0, -np.expm1(-beta * x), 0.0)
    return out if out.ndim else float(out)


def exponential_pdf(x: np.ndarray | float, beta: float) -> np.ndarray | float:
    """``f(x) = β·exp(−βx)`` for ``x ≥ 0``, 0 otherwise (paper §3)."""
    x = np.asarray(x, dtype=np.float64)
    out = np.where(x >= 0, beta * np.exp(-beta * x), 0.0)
    return out if out.ndim else float(out)


def exponential_tail(x: np.ndarray | float, beta: float) -> np.ndarray | float:
    """``Pr[Exp(β) > x] = exp(−βx)`` for ``x ≥ 0`` — the memoryless tail."""
    x = np.asarray(x, dtype=np.float64)
    out = np.where(x >= 0, np.exp(-beta * x), 1.0)
    return out if out.ndim else float(out)
