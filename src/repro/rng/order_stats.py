"""Order statistics of exponential variables (paper §3, Fact 3.1).

The analysis of the algorithm rests on two classical facts about ``n`` i.i.d.
``Exp(β)`` variables ``X_(1) ≤ … ≤ X_(n)``:

- **Fact 3.1 (Rényi representation):** the spacings
  ``X_(1), X_(2) − X_(1), …, X_(n) − X_(n−1)`` are independent, and the k-th
  spacing is distributed ``Exp((n − k + 1)·β)``.
- **Lemma 4.2:** ``E[X_(n)] = H_n/β`` and ``Pr[X_(n) > (d+1)·ln n / β] ≤ n^{−d}``.

This module provides exact formulas, samplers built *from* the Rényi
representation (used to cross-check NumPy's sampler), and the tail bounds —
all of which the benchmark L42 regenerates against simulation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.rng.seeding import SeedLike, make_generator

__all__ = [
    "harmonic_number",
    "expected_maximum",
    "expected_order_statistic",
    "maximum_tail_bound",
    "high_probability_shift_bound",
    "sample_spacings",
    "sample_order_statistics_via_spacings",
    "spacing_rates",
]


def harmonic_number(n: int) -> float:
    """``H_n = 1 + 1/2 + … + 1/n`` (``H_0 = 0``), exact summation."""
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    # Direct summation is exact to float precision and cheap for any n the
    # library encounters; avoids the asymptotic-expansion error analysis.
    return float(np.sum(1.0 / np.arange(1, n + 1)))


def expected_maximum(n: int, beta: float) -> float:
    """``E[max of n Exp(β) draws] = H_n / β`` (Lemma 4.2)."""
    if beta <= 0:
        raise ParameterError("beta must be positive")
    return harmonic_number(n) / beta


def expected_order_statistic(n: int, k: int, beta: float) -> float:
    """``E[X_(k)] = (H_n − H_{n−k}) / β`` — summing Fact 3.1 spacings."""
    if not 1 <= k <= n:
        raise ParameterError(f"need 1 <= k <= n, got k={k}, n={n}")
    if beta <= 0:
        raise ParameterError("beta must be positive")
    return (harmonic_number(n) - harmonic_number(n - k)) / beta


def maximum_tail_bound(n: int, beta: float, threshold: float) -> float:
    """Union bound: ``Pr[X_(n) > t] ≤ n · exp(−βt)`` (clipped to 1)."""
    if beta <= 0:
        raise ParameterError("beta must be positive")
    return float(min(1.0, n * np.exp(-beta * threshold)))


def high_probability_shift_bound(n: int, beta: float, d: float) -> float:
    """The Lemma 4.2 threshold ``(d+1)·ln n / β``.

    With probability at least ``1 − n^{−d}`` every one of the ``n`` shifts is
    below this value, hence it bounds every piece's radius.
    """
    if n < 2:
        return 0.0
    if beta <= 0:
        raise ParameterError("beta must be positive")
    if d < 0:
        raise ParameterError("d must be >= 0")
    return (d + 1.0) * np.log(n) / beta


def spacing_rates(n: int, beta: float) -> np.ndarray:
    """Rates of the Fact 3.1 spacings: ``(n, n−1, …, 1)·β``."""
    if n < 1:
        raise ParameterError("n must be >= 1")
    return beta * np.arange(n, 0, -1, dtype=np.float64)


def sample_spacings(
    n: int, beta: float, *, seed: SeedLike = None
) -> np.ndarray:
    """Sample the ``n`` independent spacings of Fact 3.1 directly.

    Returns ``[X_(1), X_(2) − X_(1), …, X_(n) − X_(n−1)]``; their cumulative
    sum is distributed exactly as the sorted vector of ``n`` i.i.d. ``Exp(β)``
    draws.  Used as an alternative construction in property tests.
    """
    rng = make_generator(seed)
    rates = spacing_rates(n, beta)
    return rng.exponential(scale=1.0 / rates)


def sample_order_statistics_via_spacings(
    n: int, beta: float, *, seed: SeedLike = None
) -> np.ndarray:
    """Sorted exponential sample built from independent spacings (Fact 3.1)."""
    return np.cumsum(sample_spacings(n, beta, seed=seed))
