"""Instrumented parallel primitives (map / reduce / scan / pack).

These wrap the NumPy vectorised operations the engines use and charge their
canonical PRAM costs to a :class:`~repro.pram.cost_model.WorkDepthCounter`:

- ``par_map``: work ``n``, depth ``1``;
- ``par_reduce`` / ``par_max`` / ``par_min``: work ``n``, depth ``⌈log₂ n⌉``
  (balanced reduction tree);
- ``par_scan`` (exclusive prefix sums): work ``2n``, depth ``2⌈log₂ n⌉``
  (Blelloch up/down sweeps);
- ``par_pack`` (filter): a scan plus a map.

The charged numbers are the textbook costs of the operations a real PRAM /
work-stealing runtime would execute; NumPy happens to evaluate them with
C-loop parallelism of its own, which is irrelevant to the accounting.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.pram.cost_model import WorkDepthCounter

__all__ = [
    "par_map",
    "par_reduce",
    "par_max",
    "par_min",
    "par_scan",
    "par_pack",
    "log2_ceil",
]


def log2_ceil(n: int) -> int:
    """``⌈log₂ n⌉`` with the convention that values ≤ 1 cost depth 1."""
    if n <= 1:
        return 1
    return int(math.ceil(math.log2(n)))


def par_map(
    counter: WorkDepthCounter,
    fn: Callable[[np.ndarray], np.ndarray],
    arr: np.ndarray,
    *,
    label: str = "map",
) -> np.ndarray:
    """Elementwise map: work n, depth 1."""
    counter.charge(int(arr.shape[0]), 1, label=label)
    return fn(arr)


def par_reduce(
    counter: WorkDepthCounter,
    arr: np.ndarray,
    *,
    label: str = "reduce",
) -> float:
    """Sum-reduction: work n, depth ⌈log₂ n⌉."""
    n = int(arr.shape[0])
    counter.charge(n, log2_ceil(n), label=label)
    return float(arr.sum())


def par_max(
    counter: WorkDepthCounter, arr: np.ndarray, *, label: str = "max"
) -> float:
    """Max-reduction (step 2 of Algorithm 1 computes δ_max this way)."""
    n = int(arr.shape[0])
    counter.charge(n, log2_ceil(n), label=label)
    return float(arr.max()) if n else float("-inf")


def par_min(
    counter: WorkDepthCounter, arr: np.ndarray, *, label: str = "min"
) -> float:
    """Min-reduction."""
    n = int(arr.shape[0])
    counter.charge(n, log2_ceil(n), label=label)
    return float(arr.min()) if n else float("inf")


def par_scan(
    counter: WorkDepthCounter,
    arr: np.ndarray,
    *,
    label: str = "scan",
) -> np.ndarray:
    """Exclusive prefix sums: work 2n, depth 2⌈log₂ n⌉ (Blelloch scan)."""
    n = int(arr.shape[0])
    counter.charge(2 * n, 2 * log2_ceil(n), label=label)
    out = np.zeros_like(arr)
    np.cumsum(arr[:-1], out=out[1:]) if n > 1 else None
    return out


def par_pack(
    counter: WorkDepthCounter,
    arr: np.ndarray,
    mask: np.ndarray,
    *,
    label: str = "pack",
) -> np.ndarray:
    """Filter ``arr`` by ``mask``: one scan over flags plus a scatter map."""
    n = int(arr.shape[0])
    counter.charge(3 * n, 2 * log2_ceil(n) + 1, label=label)
    return arr[mask]
