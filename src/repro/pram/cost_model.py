"""Work-depth (PRAM) cost accounting.

Theorem 1.2 is a statement about **work** (total operations) and **depth**
(longest chain of dependent operations) in the PRAM model, not about seconds
on a particular machine.  This module makes those quantities first-class:
algorithms charge their operations to a :class:`WorkDepthCounter`, and
Brent's theorem converts ``(work, depth)`` into a simulated running time on
``p`` processors:

    ``T_p ≤ work / p + depth``

which is what the scaling benchmarks report.  Counters nest (a parallel
composition takes the max of child depths; a sequential composition sums
them), mirroring the standard work-depth calculus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError

__all__ = ["CostRecord", "WorkDepthCounter", "brent_time"]


@dataclass(frozen=True)
class CostRecord:
    """An immutable (work, depth) pair with the calculus operators.

    ``a.then(b)`` is sequential composition; ``a.alongside(b)`` is parallel
    composition.  Both return new records.
    """

    work: int
    depth: int

    def then(self, other: "CostRecord") -> "CostRecord":
        """Sequential composition: work adds, depth adds."""
        return CostRecord(self.work + other.work, self.depth + other.depth)

    def alongside(self, other: "CostRecord") -> "CostRecord":
        """Parallel composition: work adds, depth takes the maximum."""
        return CostRecord(self.work + other.work, max(self.depth, other.depth))

    def scaled(self, times: int) -> "CostRecord":
        """``times`` sequential repetitions."""
        if times < 0:
            raise ParameterError("times must be >= 0")
        return CostRecord(self.work * times, self.depth * times)


@dataclass
class WorkDepthCounter:
    """Mutable accumulator used by instrumented algorithms.

    ``charge(work, depth)`` records one parallel step group: ``work`` total
    operations whose dependency chain is ``depth`` long.  Successive charges
    are *sequential* (depths add) — this matches how the decomposition's
    round loop composes rounds.  Use :meth:`parallel_region` to merge
    independently-collected child counters as a parallel block.
    """

    work: int = 0
    depth: int = 0
    #: optional labelled breakdown for reports: label -> CostRecord.
    breakdown: dict[str, CostRecord] = field(default_factory=dict)

    def charge(self, work: int, depth: int = 1, *, label: str | None = None) -> None:
        """Record a sequentially-composed parallel step group."""
        if work < 0 or depth < 0:
            raise ParameterError("work and depth must be >= 0")
        self.work += work
        self.depth += depth
        if label is not None:
            prev = self.breakdown.get(label, CostRecord(0, 0))
            self.breakdown[label] = prev.then(CostRecord(work, depth))

    def parallel_region(self, children: list["WorkDepthCounter"]) -> None:
        """Merge child counters executed in parallel with each other."""
        if not children:
            return
        self.work += sum(c.work for c in children)
        self.depth += max(c.depth for c in children)

    def snapshot(self) -> CostRecord:
        """Current totals as an immutable record."""
        return CostRecord(self.work, self.depth)


def brent_time(work: int, depth: int, processors: int) -> float:
    """Brent's bound ``work/p + depth`` — simulated time on ``p`` processors."""
    if processors < 1:
        raise ParameterError("processors must be >= 1")
    if work < 0 or depth < 0:
        raise ParameterError("work and depth must be >= 0")
    return work / processors + depth
