"""Work-depth (PRAM) cost model and instrumented parallel primitives."""

from repro.pram.cost_model import CostRecord, WorkDepthCounter, brent_time
from repro.pram.primitives import (
    log2_ceil,
    par_map,
    par_max,
    par_min,
    par_pack,
    par_reduce,
    par_scan,
)

__all__ = [
    "CostRecord",
    "WorkDepthCounter",
    "brent_time",
    "log2_ceil",
    "par_map",
    "par_max",
    "par_min",
    "par_pack",
    "par_reduce",
    "par_scan",
]
