"""Linial–Saks block decompositions from iterated shifted LDDs."""

from repro.blockdecomp.linial_saks import BlockDecomposition, block_decomposition

__all__ = ["BlockDecomposition", "block_decomposition"]
