"""Linial–Saks block decompositions via iterated LDD (paper Section 2).

The paper observes: a block decomposition — ``O(log n)`` *blocks* such that
every connected piece within a block has ``O(log n)`` diameter — "can be
obtained by iteratively running a ``(1/2, O(log n))`` low diameter
decomposition ``O(log n)`` times.  This is because the number of edges not
in a block decreases by a factor of 2 per iteration."

Concretely: iteration ``i`` decomposes the graph formed by the still-
unassigned edges with ``β = 1/2``; the edges *inside* pieces become block
``i`` (their pieces are the block's connected components, each of small
strong diameter); the cut edges carry over.  In expectation at most half the
edges carry over per iteration, so ``⌈log₂ m⌉ + O(1)`` blocks suffice —
exactly what :func:`repro.core.theory.blockdecomp_iteration_bound` predicts
and ``benchmarks/bench_blockdecomp.py`` measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ldd_bfs import partition_bfs
from repro.errors import GraphError, ParameterError
from repro.graphs.build import from_edges
from repro.graphs.csr import CSRGraph
from repro.rng.seeding import SeedLike, make_generator

__all__ = ["BlockDecomposition", "block_decomposition"]


@dataclass(frozen=True, eq=False)
class BlockDecomposition:
    """Assignment of every edge to exactly one block.

    ``edge_block[i]`` is the block index of the i-th row of
    ``graph.edge_array()``; ``block_radii[b]`` is the largest piece radius
    observed inside block ``b`` (the diameter certificate).
    """

    graph: CSRGraph
    edge_block: np.ndarray
    block_radii: list[int]

    @property
    def num_blocks(self) -> int:
        return len(self.block_radii)

    def block_edge_counts(self) -> np.ndarray:
        """Edges per block."""
        return np.bincount(self.edge_block, minlength=self.num_blocks)

    def block_subgraph(self, block: int) -> CSRGraph:
        """The subgraph formed by one block's edges (on the full vertex set)."""
        if not 0 <= block < self.num_blocks:
            raise ParameterError(f"block {block} out of range")
        edges = self.graph.edge_array()[self.edge_block == block]
        return from_edges(self.graph.num_vertices, edges, dedup=False)


def block_decomposition(
    graph: CSRGraph,
    *,
    beta: float = 0.5,
    seed: SeedLike = None,
    max_blocks: int = 128,
) -> BlockDecomposition:
    """Decompose a graph's *edges* into low-diameter blocks.

    ``beta`` is the per-iteration LDD parameter (1/2 per the paper).
    """
    if not 0 < beta < 1:
        raise ParameterError("beta must be in (0, 1)")
    m = graph.num_edges
    rng = make_generator(seed)
    edge_block = np.full(m, -1, dtype=np.int64)
    all_edges = graph.edge_array()
    active = np.arange(m, dtype=np.int64)  # rows still unassigned
    block_radii: list[int] = []

    block = 0
    for _ in range(max_blocks):
        if active.size == 0:
            break
        cur = from_edges(graph.num_vertices, all_edges[active], dedup=False)
        decomposition, _ = partition_bfs(cur, beta, seed=rng)
        labels = decomposition.labels
        rows = all_edges[active]
        inside = labels[rows[:, 0]] == labels[rows[:, 1]]
        if not inside.any():
            # A (β < 1) decomposition of a graph with edges keeps at least
            # the expected (1 − β) fraction; an empty round is possible but
            # retrying with fresh shifts makes progress almost surely.
            continue
        edge_block[active[inside]] = block
        block_radii.append(int(decomposition.max_radius()))
        active = active[~inside]
        block += 1
    if active.size:
        raise GraphError(
            f"block decomposition did not cover all edges in {max_blocks} "
            f"iterations"
        )
    return BlockDecomposition(
        graph=graph, edge_block=edge_block, block_radii=block_radii
    )
