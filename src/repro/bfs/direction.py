"""Direction-optimising BFS (Beamer, Asanović, Patterson — SC'12, paper [8]).

The paper cites direction-optimising BFS as the practical engine for the
small-diameter searches the decomposition performs.  This module implements
the top-down/bottom-up switch on the vectorised engine:

- **top-down** rounds expand the frontier's out-arcs (work ∝ frontier arcs);
- **bottom-up** rounds let every unvisited vertex scan its own adjacency for
  any frontier member (work ∝ unvisited arcs, but each unvisited vertex can
  stop at the first hit and never pays the claim-resolution sort).

The switch uses Beamer's heuristic: go bottom-up when the frontier's arc
count exceeds ``unexplored arc count / alpha``, return top-down when the
frontier shrinks below ``n / beta_param``.  Benchmark ``bench_direction_bfs``
measures the arcs-examined savings this gives on low-diameter graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph
from repro.bfs.frontier import gather_frontier_arcs

__all__ = ["DirectionBFSResult", "direction_optimizing_bfs"]


@dataclass(frozen=True, eq=False)
class DirectionBFSResult:
    """BFS result with per-round direction decisions.

    ``directions[t]`` is ``"td"`` or ``"bu"`` for round ``t + 1`` (the round
    that produced distance ``t + 1`` vertices).
    """

    dist: np.ndarray
    parent: np.ndarray
    num_rounds: int
    work: int
    directions: list[str]


def direction_optimizing_bfs(
    graph: CSRGraph,
    sources: np.ndarray | int,
    *,
    alpha: float = 15.0,
    beta_param: float = 20.0,
) -> DirectionBFSResult:
    """BFS with adaptive top-down/bottom-up rounds.

    Produces the same distances as plain BFS (asserted by tests); parents may
    differ within a level because bottom-up rounds let each vertex choose its
    own parent, which is precisely the nondeterminism [8] permits.
    """
    if alpha <= 0 or beta_param <= 0:
        raise ParameterError("alpha and beta_param must be positive")
    n = graph.num_vertices
    if isinstance(sources, (int, np.integer)):
        sources = np.asarray([sources], dtype=np.int64)
    sources = np.unique(np.asarray(sources, dtype=VERTEX_DTYPE))
    if sources.size and (sources[0] < 0 or sources[-1] >= n):
        raise ParameterError("source ids out of range")
    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[sources] = 0
    in_frontier = np.zeros(n, dtype=bool)
    in_frontier[sources] = True
    frontier = sources
    degrees = graph.degrees()
    total_arcs = graph.num_arcs
    explored_arcs = int(degrees[sources].sum())
    work = 0
    level = 0
    directions: list[str] = []
    indptr, indices = graph.indptr, graph.indices
    bottom_up = False
    while frontier.size:
        level += 1
        frontier_arcs = int(degrees[frontier].sum())
        unexplored_arcs = total_arcs - explored_arcs
        # unexplored == 0 means the last rounds only confirm visited
        # neighbours; top-down handles that with no extra scans.
        if (
            not bottom_up
            and unexplored_arcs > 0
            and frontier_arcs > unexplored_arcs / alpha
        ):
            bottom_up = True
        elif bottom_up and frontier.size < n / beta_param:
            bottom_up = False
        if bottom_up:
            directions.append("bu")
            unvisited = np.flatnonzero(dist == -1).astype(VERTEX_DTYPE)
            if unvisited.size == 0:
                break
            # Each unvisited vertex scans its own adjacency until the first
            # frontier member.  The gather below materialises all arcs (the
            # vectorised evaluation), but the *charged* work models the
            # early exit [8] relies on: arcs-scanned = position of the first
            # hit + 1 (full degree when there is no hit).
            arc_src, arc_dst = gather_frontier_arcs(graph, unvisited)
            counts = degrees[unvisited]
            prefix = np.cumsum(counts) - counts
            within = (
                np.arange(arc_src.shape[0], dtype=np.int64)
                - np.repeat(prefix, counts)
            )
            src_pos = np.repeat(
                np.arange(unvisited.shape[0], dtype=np.int64), counts
            )
            hits = in_frontier[arc_dst]
            first_hit = counts.astype(np.int64).copy()
            np.minimum.at(first_hit, src_pos[hits], within[hits])
            work += int(
                np.where(first_hit < counts, first_hit + 1, counts).sum()
            )
            hit_src = arc_src[hits]
            hit_par = arc_dst[hits]
            if hit_src.size == 0:
                break
            first = np.ones(hit_src.shape[0], dtype=bool)
            first[1:] = hit_src[1:] != hit_src[:-1]
            winners = hit_src[first]
            dist[winners] = level
            parent[winners] = hit_par[first]
        else:
            directions.append("td")
            arc_src, arc_dst = gather_frontier_arcs(graph, frontier)
            work += int(arc_src.size)
            open_mask = dist[arc_dst] == -1
            cand_src = arc_src[open_mask]
            cand_dst = arc_dst[open_mask]
            if cand_dst.size == 0:
                break
            order = np.lexsort((cand_src, cand_dst))
            cand_src = cand_src[order]
            cand_dst = cand_dst[order]
            first = np.ones(cand_dst.shape[0], dtype=bool)
            first[1:] = cand_dst[1:] != cand_dst[:-1]
            winners = cand_dst[first]
            dist[winners] = level
            parent[winners] = cand_src[first]
        in_frontier[:] = False
        in_frontier[winners] = True
        frontier = winners.astype(VERTEX_DTYPE)
        explored_arcs += int(degrees[winners].sum())
    return DirectionBFSResult(
        dist=dist,
        parent=parent,
        num_rounds=level if directions else 0,
        work=work,
        directions=directions,
    )
