"""Sequential breadth-first search — the correctness oracle.

Plain deque-based BFS used as the reference implementation against which the
vectorised frontier engine and the multiprocessing backend are property-tested.
Kept deliberately simple; it is never on the benchmarked hot path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph

__all__ = ["BFSResult", "bfs", "multi_source_bfs", "eccentricity", "graph_diameter_lb"]

#: Sentinel distance for unreached vertices.
UNREACHED = -1


@dataclass(frozen=True, eq=False)
class BFSResult:
    """Distances, BFS-tree parents, and traversal statistics.

    ``dist[v]`` is the hop distance from the (nearest) source, ``−1`` if
    unreached.  ``parent[v]`` is the predecessor on a shortest path (``−1``
    for sources and unreached vertices).  ``source[v]`` identifies which
    source reached ``v`` first (for multi-source runs).
    """

    dist: np.ndarray
    parent: np.ndarray
    source: np.ndarray
    #: number of BFS levels executed (max dist + 1 over reached vertices).
    num_rounds: int
    #: arcs scanned — the sequential work measure.
    work: int


def bfs(graph: CSRGraph, source: int) -> BFSResult:
    """Single-source BFS from ``source``."""
    if not 0 <= source < graph.num_vertices:
        raise ParameterError(f"source {source} out of range")
    return multi_source_bfs(graph, np.asarray([source], dtype=np.int64))


def multi_source_bfs(graph: CSRGraph, sources: np.ndarray) -> BFSResult:
    """BFS from a set of sources, all starting at distance 0.

    Ties between sources reaching a vertex at the same distance are broken
    by queue order (sources in the given order first), matching the
    deterministic behaviour required by the test oracle.
    """
    n = graph.num_vertices
    sources = np.asarray(sources, dtype=np.int64)
    if sources.size and (sources.min() < 0 or sources.max() >= n):
        raise ParameterError("source ids out of range")
    dist = np.full(n, UNREACHED, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    origin = np.full(n, -1, dtype=np.int64)
    queue: deque[int] = deque()
    for s in sources:
        s = int(s)
        if dist[s] == UNREACHED:
            dist[s] = 0
            origin[s] = s
            queue.append(s)
    indptr, indices = graph.indptr, graph.indices
    work = 0
    max_dist = 0
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in indices[indptr[u] : indptr[u + 1]]:
            work += 1
            v = int(v)
            if dist[v] == UNREACHED:
                dist[v] = du + 1
                parent[v] = u
                origin[v] = origin[u]
                max_dist = max(max_dist, du + 1)
                queue.append(v)
    rounds = max_dist + 1 if sources.size else 0
    return BFSResult(
        dist=dist, parent=parent, source=origin, num_rounds=rounds, work=work
    )


def eccentricity(graph: CSRGraph, source: int) -> int:
    """Largest finite BFS distance from ``source`` (its eccentricity within
    its connected component)."""
    res = bfs(graph, source)
    reached = res.dist[res.dist != UNREACHED]
    return int(reached.max()) if reached.size else 0


def graph_diameter_lb(graph: CSRGraph, *, sweeps: int = 2, start: int = 0) -> int:
    """Double-sweep lower bound on the diameter.

    Runs ``sweeps`` BFS passes, each starting from the farthest vertex found
    by the previous pass.  Exact on trees; a lower bound in general — good
    enough for the benchmark reports, which label it as such.
    """
    if graph.num_vertices == 0:
        return 0
    u = start
    best = 0
    for _ in range(max(1, sweeps)):
        res = bfs(graph, u)
        reached = np.flatnonzero(res.dist != UNREACHED)
        far = reached[np.argmax(res.dist[reached])]
        best = max(best, int(res.dist[far]))
        u = int(far)
    return best
