"""Kernel selection for the shifted-BFS hot path.

The delayed-start BFS in :mod:`repro.bfs.delayed` has two interchangeable
engines for its per-round hot phases (frontier arc gathering and the CRCW
claim-resolution priority write):

- ``"python"`` — the pure-numpy reference implementation;
- ``"native"`` — the compiled C extension :mod:`repro.bfs._kernel`, built
  optionally at install time (``python setup.py build_ext --inplace``; the
  build is skipped silently when no compiler is available);
- ``"auto"`` — the native kernel when the extension imported, the numpy
  path otherwise.  This is the default everywhere.

Both engines are pinned bit-identical by the differential conformance
suite, so the switch is purely a performance knob.  Selection flows
through a :class:`contextvars.ContextVar` so the engine layer can apply a
per-request choice (``decompose(..., options={"kernel": ...})``) without
threading a parameter through every BFS call site; worker processes
resolve the context independently, so pool workers pick the kernel
per-task.  The ``REPRO_KERNEL`` environment variable seeds the default
(read once at import).
"""

from __future__ import annotations

import contextlib
import contextvars
import os
from collections.abc import Iterator

import numpy as np

from repro.errors import ParameterError

try:  # pragma: no cover - exercised via native_available() in both states
    from repro.bfs import _kernel as _native
except ImportError:  # pragma: no cover
    _native = None

__all__ = [
    "KERNEL_CHOICES",
    "KernelScratch",
    "native_available",
    "resolve_kernel",
    "use_kernel",
]

KERNEL_CHOICES = ("auto", "python", "native")

_NO_CENTER = np.iinfo(np.int64).max


def native_available() -> bool:
    """True when the compiled extension imported successfully."""
    return _native is not None


def _validate(kernel: str) -> str:
    if kernel not in KERNEL_CHOICES:
        raise ParameterError(
            f"unknown kernel {kernel!r}; choose one of {KERNEL_CHOICES}"
        )
    return kernel


def _env_default() -> str:
    kernel = os.environ.get("REPRO_KERNEL", "auto").strip().lower() or "auto"
    # A bad env var must not brick import; surface it on first resolve.
    return kernel


_kernel_var: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_kernel", default=_env_default()
)


def resolve_kernel(kernel: str | None = None) -> str:
    """Resolve a requested kernel to a concrete engine name.

    ``None`` reads the ambient context (set by :func:`use_kernel`, seeded
    from ``REPRO_KERNEL``).  ``"auto"`` degrades silently to ``"python"``
    when the extension is missing; an explicit ``"native"`` raises a clear
    :class:`~repro.errors.ParameterError` instead so the caller learns the
    build did not happen.
    """
    if kernel is None:
        kernel = _kernel_var.get()
    kernel = _validate(kernel)
    if kernel == "auto":
        return "native" if native_available() else "python"
    if kernel == "native" and not native_available():
        raise ParameterError(
            "kernel='native' requested but the compiled extension "
            "repro.bfs._kernel is not importable; build it with "
            "`python setup.py build_ext --inplace` (requires a C compiler) "
            "or use kernel='auto' to fall back to the numpy path"
        )
    return kernel


@contextlib.contextmanager
def use_kernel(kernel: str | None) -> Iterator[str]:
    """Set the ambient kernel for the duration of a ``with`` block.

    ``None`` leaves the current context untouched (yields its resolution),
    so callers can forward an optional user choice unconditionally.
    """
    if kernel is None:
        yield resolve_kernel(None)
        return
    token = _kernel_var.set(_validate(kernel))
    try:
        yield resolve_kernel(kernel)
    finally:
        _kernel_var.reset(token)


class KernelScratch:
    """Reusable per-round scratch for claim resolution.

    The scatter paths (numpy and native) need per-vertex ``best_key`` /
    ``best_center`` priority-write arrays.  Allocating them fresh every
    round costs three O(n) allocations per round; this object allocates
    once per BFS and both paths restore the *pristine invariant* — every
    ``best_key`` entry ``+inf``, every ``best_center`` entry the
    ``int64 max`` no-bid sentinel — after each use, touching only the
    entries the round actually wrote.
    """

    __slots__ = (
        "num_vertices",
        "best_key",
        "best_center",
        "claimed",
        "touched",
        "winners",
        "owners",
    )

    def __init__(self, num_vertices: int) -> None:
        self.num_vertices = int(num_vertices)
        self.best_key = np.full(self.num_vertices, np.inf)
        self.best_center = np.full(self.num_vertices, _NO_CENTER, dtype=np.int64)
        self.claimed = np.zeros(self.num_vertices, dtype=bool)
        self.touched = np.empty(self.num_vertices, dtype=np.int64)
        self.winners = np.empty(self.num_vertices, dtype=np.int64)
        self.owners = np.empty(self.num_vertices, dtype=np.int64)

    def pristine(self) -> bool:
        """Check the invariant (test hook; O(n), not used in the hot loop)."""
        return bool(
            np.all(np.isinf(self.best_key))
            and np.all(self.best_key > 0)
            and np.all(self.best_center == _NO_CENTER)
            and not self.claimed.any()
        )


def native_module():
    """The raw extension module, or raise when unavailable (internal)."""
    if _native is None:  # pragma: no cover - requires a build-less install
        raise ParameterError("compiled kernel repro.bfs._kernel is unavailable")
    return _native
