"""Breadth-first-search engines: sequential oracle, vectorised frontier,
delayed-start shifted BFS, direction-optimising variant, Dijkstra references,
and the multiprocessing backend."""

from repro.bfs.delayed import (
    DelayedBFSResult,
    delayed_multisource_bfs,
    resolve_claims,
)
from repro.bfs.dijkstra import (
    DijkstraResult,
    ShiftedDijkstraResult,
    dijkstra,
    dijkstra_multisource,
    shifted_integer_dijkstra,
)
from repro.bfs.direction import DirectionBFSResult, direction_optimizing_bfs
from repro.bfs.frontier import (
    FrontierBFSResult,
    frontier_bfs,
    gather_frontier_arcs,
)
from repro.bfs.parallel_mp import ParallelBFSEngine, delayed_multisource_bfs_mp
from repro.bfs.sequential import (
    BFSResult,
    bfs,
    eccentricity,
    graph_diameter_lb,
    multi_source_bfs,
)

__all__ = [
    "BFSResult",
    "bfs",
    "multi_source_bfs",
    "eccentricity",
    "graph_diameter_lb",
    "FrontierBFSResult",
    "frontier_bfs",
    "gather_frontier_arcs",
    "DelayedBFSResult",
    "delayed_multisource_bfs",
    "resolve_claims",
    "DijkstraResult",
    "ShiftedDijkstraResult",
    "dijkstra",
    "dijkstra_multisource",
    "shifted_integer_dijkstra",
    "DirectionBFSResult",
    "direction_optimizing_bfs",
    "ParallelBFSEngine",
    "delayed_multisource_bfs_mp",
]
