"""Vectorised level-synchronous BFS — the PRAM simulation engine.

One call to :func:`gather_frontier_arcs` expands a whole frontier in a single
set of NumPy gathers; one while-loop iteration of :func:`frontier_bfs` is one
*parallel round* in the work-depth model.  This is the same structure as a
level-synchronous PRAM/Ligra BFS: the per-round work is proportional to the
arcs incident to the frontier, and the number of iterations equals the BFS
depth ∆.  The paper's Theorem 1.2 bounds are stated in exactly these terms
(``O(m)`` work, ``O(∆ log n)`` depth via [18]), so the counters this module
maintains are the quantities the benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph

__all__ = ["FrontierBFSResult", "gather_frontier_arcs", "frontier_bfs"]


def gather_frontier_arcs(
    graph: CSRGraph, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand a frontier into (arc sources, arc targets), fully vectorised.

    For each vertex ``u`` in ``frontier`` (in order), emits one entry per arc
    ``u→v``.  The concatenated adjacency slices are materialised with the
    repeat/offset trick — no Python-level loop over frontier vertices:

    - ``counts[i]`` = degree of ``frontier[i]``
    - positions within each slice are ``arange(total) − repeat(exclusive
      prefix sums of counts)``, added to each slice's CSR start offset.
    """
    indptr, indices = graph.indptr, graph.indices
    frontier = np.asarray(frontier, dtype=VERTEX_DTYPE)
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=VERTEX_DTYPE)
        return empty, empty
    prefix = np.cumsum(counts) - counts  # exclusive prefix sums
    within = np.arange(total, dtype=VERTEX_DTYPE) - np.repeat(prefix, counts)
    arc_ids = np.repeat(starts, counts) + within
    return np.repeat(frontier, counts), indices[arc_ids]


@dataclass(frozen=True, eq=False)
class FrontierBFSResult:
    """Output of the vectorised BFS.

    ``dist``/``parent``/``source`` match
    :class:`repro.bfs.sequential.BFSResult`; additionally
    ``frontier_sizes[t]`` is the number of vertices first reached in round
    ``t`` (``frontier_sizes[0]`` = number of sources), enabling round-level
    analysis of the parallel execution.
    """

    dist: np.ndarray
    parent: np.ndarray
    source: np.ndarray
    num_rounds: int
    work: int
    frontier_sizes: list[int]


def frontier_bfs(
    graph: CSRGraph,
    sources: np.ndarray,
    *,
    max_rounds: int | None = None,
) -> FrontierBFSResult:
    """Level-synchronous BFS from ``sources`` (all at distance 0).

    Within a round, when several frontier vertices claim the same neighbour,
    the *smallest claiming source id* wins — a deterministic CRCW-style
    priority write, so results are reproducible and independent of gather
    order.  ``max_rounds`` truncates the search (used by bounded-radius ball
    growing).
    """
    n = graph.num_vertices
    sources = np.unique(np.asarray(sources, dtype=VERTEX_DTYPE))
    if sources.size and (sources[0] < 0 or sources[-1] >= n):
        raise ParameterError("source ids out of range")
    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    origin = np.full(n, -1, dtype=np.int64)
    dist[sources] = 0
    origin[sources] = sources
    frontier = sources
    frontier_sizes = [int(sources.size)]
    work = 0
    level = 0
    limit = np.inf if max_rounds is None else max_rounds
    while frontier.size and level < limit:
        level += 1
        arc_src, arc_dst = gather_frontier_arcs(graph, frontier)
        work += int(arc_src.size)
        unvisited = dist[arc_dst] == -1
        cand_src = arc_src[unvisited]
        cand_dst = arc_dst[unvisited]
        if cand_dst.size == 0:
            frontier = np.zeros(0, dtype=VERTEX_DTYPE)
            frontier_sizes.append(0)
            break
        # Resolve concurrent claims: smallest claiming source vertex wins.
        order = np.lexsort((cand_src, cand_dst))
        cand_src = cand_src[order]
        cand_dst = cand_dst[order]
        first = np.ones(cand_dst.shape[0], dtype=bool)
        first[1:] = cand_dst[1:] != cand_dst[:-1]
        winners = cand_dst[first]
        winner_parents = cand_src[first]
        dist[winners] = level
        parent[winners] = winner_parents
        origin[winners] = origin[winner_parents]
        frontier = winners
        frontier_sizes.append(int(winners.size))
    # Drop the trailing empty-frontier entry for a clean per-level profile.
    while frontier_sizes and frontier_sizes[-1] == 0:
        frontier_sizes.pop()
    return FrontierBFSResult(
        dist=dist,
        parent=parent,
        source=origin,
        num_rounds=len(frontier_sizes),
        work=work,
        frontier_sizes=frontier_sizes,
    )
