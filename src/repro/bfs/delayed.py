"""Delayed-start multi-source BFS with tie-break keys — Algorithm 1's engine.

This implements step 3 of the paper's Algorithm 1: *"Perform parallel BFS,
with vertex u starting when the vertex at the head of the queue has distance
more than δ_max − δ_u"*, together with the Section 5 observation that makes
it an integer BFS:

    In an unweighted graph every path length is an integer, so the shifted
    distance ``start_u + dist(u, v)`` (``start_u = δ_max − δ_u``) splits into
    an integer part ``⌊start_u⌋ + dist(u, v)`` and a fractional part
    ``frac(start_u)`` that only matters for comparing equal integer parts.

The engine therefore runs synchronous integer rounds.  In round ``t``:

1. every still-unowned vertex ``u`` with ``⌊start_u⌋ = t`` *wakes up* and bids
   for itself;
2. every vertex claimed in round ``t − 1`` bids for its unowned neighbours on
   behalf of its own center;
3. all bids on a vertex are resolved by the smallest ``(tie_key of center,
   center id)`` pair — the fractional-part comparison, with the paper's
   lexicographic rule covering exact key ties (a measure-zero event for
   exponential shifts, but routine for the §5 permutation variant).

Given the same shifts, the result provably equals the exact shifted-shortest-
path assignment computed by :mod:`repro.bfs.dijkstra` — a property the test
suite checks exhaustively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

import repro.telemetry as telemetry
from repro.errors import ParameterError
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph
from repro.bfs.frontier import gather_frontier_arcs

__all__ = ["DelayedBFSResult", "delayed_multisource_bfs", "resolve_claims"]


@dataclass(frozen=True, eq=False)
class DelayedBFSResult:
    """Complete trace of a delayed-start shifted BFS.

    Attributes
    ----------
    center:
        Owner of each vertex — the center whose shifted distance is minimal.
        Every vertex is owned on return (each vertex eventually wakes).
    round_claimed:
        Integer round in which each vertex was claimed; equals
        ``⌊start(center)⌋ + hops``.
    hops:
        Hop distance from each vertex to its center, along a path contained
        in the piece (Lemma 4.1).
    num_rounds:
        Wall-clock parallel rounds: ``last claiming round − first waking
        round + 1``.  This is the BFS depth ∆ of Theorem 1.2.
    active_rounds:
        Rounds that processed at least one bid (jumped-over idle rounds are
        free in a real scheduler and excluded here).
    work:
        Total arcs scanned across all propagation rounds plus one unit per
        wake-up — the Theorem 1.2 work measure.
    frontier_sizes:
        Number of vertices claimed in each active round.
    phase_seconds:
        Measured wall time per phase (``gather`` — wake-up plus frontier
        arc expansion; ``resolve`` — claim resolution), accumulated over
        all rounds.  Populated only when :func:`repro.telemetry.enabled`
        is true at call time; empty otherwise, so the disabled hot loop
        takes no clock readings.
    """

    center: np.ndarray
    round_claimed: np.ndarray
    hops: np.ndarray
    num_rounds: int
    active_rounds: int
    work: int
    frontier_sizes: list[int]
    phase_seconds: dict[str, float] = field(default_factory=dict)


def resolve_claims(
    cand_vertex: np.ndarray,
    cand_center: np.ndarray,
    tie_key: np.ndarray,
    *,
    num_vertices: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve concurrent bids: per vertex, minimum ``(key, center)`` wins.

    Returns (winning vertices, their centers), each vertex appearing once in
    ascending order.  This is the CRCW priority-write step of the round.

    Two equivalent implementations, chosen by candidate volume:

    - *semisort*: ``lexsort`` by ``(vertex, key, center)`` and keep the
      first entry per vertex — O(C log C), no per-vertex scratch, best for
      the many small rounds of low-β runs;
    - *scatter*: two ``minimum.at`` priority-write passes (first the key,
      then the center among exact key ties) — O(C + n), the literal CRCW
      formulation, and several times faster once a round's candidate set is
      a sizable fraction of the graph (dense graphs at high β resolve most
      vertices in one round).

    Both apply the identical lexicographic rule, so the winner set is
    bit-identical regardless of which path ran — for *finite* keys, which
    :func:`delayed_multisource_bfs` validates (NaN would poison the
    scatter path's priority writes).  ``num_vertices`` (the graph's vertex
    count) enables the scatter path; without it the semisort always runs.
    """
    if (
        num_vertices is not None
        and cand_vertex.size >= num_vertices
        and cand_vertex.size > 1024
    ):
        cand_key = tie_key[cand_center]
        best_key = np.full(num_vertices, np.inf)
        np.minimum.at(best_key, cand_vertex, cand_key)
        tied = cand_key == best_key[cand_vertex]
        best_center = np.full(num_vertices, np.iinfo(np.int64).max)
        np.minimum.at(best_center, cand_vertex[tied], cand_center[tied])
        claimed = np.zeros(num_vertices, dtype=bool)
        claimed[cand_vertex] = True
        winners = np.flatnonzero(claimed).astype(cand_vertex.dtype)
        return winners, best_center[winners]
    order = np.lexsort((cand_center, tie_key[cand_center], cand_vertex))
    v_sorted = cand_vertex[order]
    c_sorted = cand_center[order]
    first = np.ones(v_sorted.shape[0], dtype=bool)
    first[1:] = v_sorted[1:] != v_sorted[:-1]
    return v_sorted[first], c_sorted[first]


def delayed_multisource_bfs(
    graph: CSRGraph,
    start_time: np.ndarray,
    *,
    tie_key: np.ndarray | None = None,
    center_mask: np.ndarray | None = None,
    max_round: int | None = None,
) -> DelayedBFSResult:
    """Run the shifted BFS.

    Parameters
    ----------
    graph:
        Undirected unweighted CSR graph.
    start_time:
        Non-negative float per vertex: the time at which the vertex wakes and
        starts claiming (``δ_max − δ_u`` in the paper).  Integer parts
        schedule rounds, fractional parts break ties unless ``tie_key``
        overrides them.
    tie_key:
        Optional explicit per-vertex tie-break keys (the §5 permutation
        variant passes ranks here).  Lower key wins; exact ties fall back to
        the smaller center id, the paper's lexicographic rule.
    center_mask:
        Optional boolean mask restricting which vertices may wake as centers.
        The paper's algorithm lets every vertex be a potential center (all
        True, the default); the Blelloch-et-al baseline grows balls from a
        sampled batch only.  With a restricted mask some vertices may remain
        unowned (``center == −1``).
    max_round:
        Optional inclusive cap on the round counter; claims that would occur
        in later rounds are abandoned.  Used for radius-capped ball growing.
    """
    n = graph.num_vertices
    start_time = np.asarray(start_time, dtype=np.float64)
    if start_time.shape[0] != n:
        raise ParameterError("start_time must have one entry per vertex")
    # NaN slips past a plain `min() < 0` check (NaN comparisons are False)
    # and would poison round scheduling and claim resolution downstream.
    if n and not (np.isfinite(start_time).all() and start_time.min() >= 0):
        raise ParameterError("start times must be finite and non-negative")
    floor_start = np.floor(start_time).astype(np.int64)
    if tie_key is None:
        tie_key = start_time - floor_start
    else:
        tie_key = np.asarray(tie_key, dtype=np.float64)
        if tie_key.shape[0] != n:
            raise ParameterError("tie_key must have one entry per vertex")
        if n and not np.isfinite(tie_key).all():
            raise ParameterError("tie keys must be finite")
    if center_mask is not None:
        center_mask = np.asarray(center_mask, dtype=bool)
        if center_mask.shape[0] != n:
            raise ParameterError("center_mask must have one entry per vertex")
        if not center_mask.any():
            raise ParameterError("center_mask must allow at least one center")

    center = np.full(n, -1, dtype=np.int64)
    round_claimed = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return DelayedBFSResult(
            center=center,
            round_claimed=round_claimed,
            hops=np.zeros(0, dtype=np.int64),
            num_rounds=0,
            active_rounds=0,
            work=0,
            frontier_sizes=[],
        )

    # Wake schedule: eligible vertices sorted by waking round, consumed by a
    # pointer as rounds advance.
    eligible = (
        np.arange(n, dtype=VERTEX_DTYPE)
        if center_mask is None
        else np.flatnonzero(center_mask).astype(VERTEX_DTYPE)
    )
    wake_order = eligible[
        np.argsort(floor_start[eligible], kind="stable")
    ]
    wake_rounds_sorted = floor_start[wake_order]
    n_wake = int(wake_order.shape[0])
    ptr = 0

    frontier = np.zeros(0, dtype=VERTEX_DTYPE)
    frontier_sizes: list[int] = []
    work = 0
    t = int(wake_rounds_sorted[0])
    first_round = t
    last_round = t
    active = 0
    limit = np.inf if max_round is None else int(max_round)
    # Phase timing is decided once per BFS, not per round: when telemetry
    # is off the loop takes zero clock readings.
    timed = telemetry.enabled()
    gather_s = resolve_s = 0.0

    while t <= limit:
        if timed:
            phase_t0 = time.perf_counter()
        # ---- gather wake-up bids for round t --------------------------------
        wake_hi = ptr
        while wake_hi < n_wake and wake_rounds_sorted[wake_hi] == t:
            wake_hi += 1
        waking = wake_order[ptr:wake_hi]
        ptr = wake_hi
        waking = waking[center[waking] == -1]
        work += int(waking.size)

        # ---- gather propagation bids from the previous round's winners ------
        if frontier.size:
            arc_src, arc_dst = gather_frontier_arcs(graph, frontier)
            work += int(arc_src.size)
            open_mask = center[arc_dst] == -1
            prop_v = arc_dst[open_mask]
            prop_c = center[arc_src[open_mask]]
        else:
            prop_v = np.zeros(0, dtype=VERTEX_DTYPE)
            prop_c = np.zeros(0, dtype=np.int64)

        cand_v = np.concatenate([waking, prop_v])
        cand_c = np.concatenate([waking.astype(np.int64), prop_c])
        if timed:
            phase_t1 = time.perf_counter()
            gather_s += phase_t1 - phase_t0

        if cand_v.size:
            winners, owners = resolve_claims(
                cand_v, cand_c, tie_key, num_vertices=n
            )
            if timed:
                resolve_s += time.perf_counter() - phase_t1
            center[winners] = owners
            round_claimed[winners] = t
            frontier = winners.astype(VERTEX_DTYPE)
            frontier_sizes.append(int(winners.size))
            active += 1
            last_round = t
            t += 1
        else:
            frontier = np.zeros(0, dtype=VERTEX_DTYPE)
            # Fast-forward to the next pending wake-up, skipping vertices that
            # were claimed since they were scheduled.
            while ptr < n_wake and center[wake_order[ptr]] != -1:
                ptr += 1
            if ptr >= n_wake:
                break
            t = int(wake_rounds_sorted[ptr])

        if frontier.size == 0 and ptr >= n_wake:
            break

    owned = center != -1
    hops = np.full(n, -1, dtype=np.int64)
    hops[owned] = round_claimed[owned] - floor_start[center[owned]]
    return DelayedBFSResult(
        center=center,
        round_claimed=round_claimed,
        hops=hops,
        num_rounds=last_round - first_round + 1,
        active_rounds=active,
        work=work,
        frontier_sizes=frontier_sizes,
        phase_seconds=(
            {"gather_s": gather_s, "resolve_s": resolve_s} if timed else {}
        ),
    )
