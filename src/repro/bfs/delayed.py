"""Delayed-start multi-source BFS with tie-break keys — Algorithm 1's engine.

This implements step 3 of the paper's Algorithm 1: *"Perform parallel BFS,
with vertex u starting when the vertex at the head of the queue has distance
more than δ_max − δ_u"*, together with the Section 5 observation that makes
it an integer BFS:

    In an unweighted graph every path length is an integer, so the shifted
    distance ``start_u + dist(u, v)`` (``start_u = δ_max − δ_u``) splits into
    an integer part ``⌊start_u⌋ + dist(u, v)`` and a fractional part
    ``frac(start_u)`` that only matters for comparing equal integer parts.

The engine therefore runs synchronous integer rounds.  In round ``t``:

1. every still-unowned vertex ``u`` with ``⌊start_u⌋ = t`` *wakes up* and bids
   for itself;
2. every vertex claimed in round ``t − 1`` bids for its unowned neighbours on
   behalf of its own center;
3. all bids on a vertex are resolved by the smallest ``(tie_key of center,
   center id)`` pair — the fractional-part comparison, with the paper's
   lexicographic rule covering exact key ties (a measure-zero event for
   exponential shifts, but routine for the §5 permutation variant).

Given the same shifts, the result provably equals the exact shifted-shortest-
path assignment computed by :mod:`repro.bfs.dijkstra` — a property the test
suite checks exhaustively.

Two interchangeable hot-path engines implement the per-round gather/resolve
phases: the pure-numpy reference and the compiled :mod:`repro.bfs._kernel`
extension, selected via ``kernel=`` (see :mod:`repro.bfs.kernels`).  They
are bit-identical — same winners in the same order every round — so the
switch is purely a performance knob; the differential conformance suite
pins the equivalence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

import repro.telemetry as telemetry
from repro.errors import ParameterError
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph
from repro.bfs.frontier import gather_frontier_arcs
from repro.bfs.kernels import KernelScratch, native_module, resolve_kernel

__all__ = ["DelayedBFSResult", "delayed_multisource_bfs", "resolve_claims"]

_NO_CENTER = np.iinfo(np.int64).max


@dataclass(frozen=True, eq=False)
class DelayedBFSResult:
    """Complete trace of a delayed-start shifted BFS.

    Attributes
    ----------
    center:
        Owner of each vertex — the center whose shifted distance is minimal.
        Vertices the BFS never claimed hold ``-1``; that happens only when
        ``center_mask`` excludes their would-be center or ``max_round``
        cuts the growth short.  With neither restriction every vertex is
        owned on return (each vertex eventually wakes for itself).
    round_claimed:
        Integer round in which each vertex was claimed (``-1`` when
        unclaimed); equals ``⌊start(center)⌋ + hops``.
    hops:
        Hop distance from each vertex to its center, along a path contained
        in the piece (Lemma 4.1); ``-1`` for unclaimed vertices.
    num_rounds:
        Wall-clock parallel rounds: ``last claiming round − first waking
        round + 1``, or 0 when no round ran at all (``max_round`` below the
        first wake).  This is the BFS depth ∆ of Theorem 1.2.
    active_rounds:
        Rounds that processed at least one bid (jumped-over idle rounds are
        free in a real scheduler and excluded here).
    work:
        Total arcs scanned across all propagation rounds plus one unit per
        wake-up — the Theorem 1.2 work measure.
    frontier_sizes:
        Number of vertices claimed in each active round.
    phase_seconds:
        Measured wall time per phase (``gather`` — wake-up plus frontier
        arc expansion; ``resolve`` — claim resolution), accumulated over
        all rounds.  Populated only when :func:`repro.telemetry.enabled`
        is true at call time; empty otherwise, so the disabled hot loop
        takes no clock readings.
    """

    center: np.ndarray
    round_claimed: np.ndarray
    hops: np.ndarray
    num_rounds: int
    active_rounds: int
    work: int
    frontier_sizes: list[int]
    phase_seconds: dict[str, float] = field(default_factory=dict)


def resolve_claims(
    cand_vertex: np.ndarray,
    cand_center: np.ndarray,
    tie_key: np.ndarray,
    *,
    num_vertices: int | None = None,
    kernel: str | None = None,
    scratch: KernelScratch | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve concurrent bids: per vertex, minimum ``(key, center)`` wins.

    Returns (winning vertices, their centers), each vertex appearing once in
    ascending order.  This is the CRCW priority-write step of the round.

    ``kernel`` picks the engine (``None`` reads the ambient
    :func:`repro.bfs.kernels.use_kernel` context, default ``"auto"``).  The
    ``"native"`` engine is a single fused C pass.  The ``"python"`` engine
    has two equivalent implementations, chosen by candidate volume:

    - *semisort*: ``lexsort`` by ``(vertex, key, center)`` and keep the
      first entry per vertex — O(C log C), no per-vertex scratch, best for
      the many small rounds of low-β runs;
    - *scatter*: two ``minimum.at`` priority-write passes (first the key,
      then the center among exact key ties) — O(C + n), the literal CRCW
      formulation, and several times faster once a round's candidate set is
      a sizable fraction of the graph (dense graphs at high β resolve most
      vertices in one round).

    All three apply the identical lexicographic rule, so the winner set is
    bit-identical regardless of which path ran — for *finite* keys, which
    :func:`delayed_multisource_bfs` validates (NaN would poison the
    priority writes).  ``num_vertices`` (the graph's vertex count) enables
    the python scatter path and sizes native scratch; without it the
    semisort always runs on the python engine.

    ``scratch`` is an optional reusable :class:`KernelScratch` (pristine on
    entry, restored pristine on return) so repeated calls — one per BFS
    round — stop allocating O(n) arrays each time.
    """
    if resolve_kernel(kernel) == "native":
        return _resolve_claims_native(
            cand_vertex, cand_center, tie_key, num_vertices, scratch
        )
    if (
        num_vertices is not None
        and cand_vertex.size >= num_vertices
        and cand_vertex.size > 1024
    ):
        if scratch is None:
            best_key = np.full(num_vertices, np.inf)
            best_center = np.full(num_vertices, _NO_CENTER, dtype=np.int64)
            claimed = np.zeros(num_vertices, dtype=bool)
        else:
            best_key = scratch.best_key
            best_center = scratch.best_center
            claimed = scratch.claimed
        cand_key = tie_key[cand_center]
        np.minimum.at(best_key, cand_vertex, cand_key)
        tied = cand_key == best_key[cand_vertex]
        np.minimum.at(best_center, cand_vertex[tied], cand_center[tied])
        claimed[cand_vertex] = True
        winners = np.flatnonzero(claimed).astype(cand_vertex.dtype)
        owners = best_center[winners]
        if scratch is not None:
            # Restore the pristine invariant touching only written entries.
            best_key[cand_vertex] = np.inf
            best_center[cand_vertex] = _NO_CENTER
            claimed[winners] = False
        return winners, owners
    order = np.lexsort((cand_center, tie_key[cand_center], cand_vertex))
    v_sorted = cand_vertex[order]
    c_sorted = cand_center[order]
    first = np.ones(v_sorted.shape[0], dtype=bool)
    first[1:] = v_sorted[1:] != v_sorted[:-1]
    return v_sorted[first], c_sorted[first]


def _resolve_claims_native(
    cand_vertex: np.ndarray,
    cand_center: np.ndarray,
    tie_key: np.ndarray,
    num_vertices: int | None,
    scratch: KernelScratch | None,
) -> tuple[np.ndarray, np.ndarray]:
    native = native_module()
    cand_v = np.ascontiguousarray(cand_vertex, dtype=np.int64)
    cand_c = np.ascontiguousarray(cand_center, dtype=np.int64)
    keys = np.ascontiguousarray(tie_key, dtype=np.float64)
    if scratch is None:
        if num_vertices is None:
            num_vertices = int(cand_v.max()) + 1 if cand_v.size else 0
        scratch = KernelScratch(num_vertices)
    count = native.resolve_claims(
        cand_v,
        cand_c,
        keys,
        scratch.best_key,
        scratch.best_center,
        scratch.touched,
        scratch.winners,
        scratch.owners,
    )
    # astype copies, detaching the results from the reusable scratch.
    winners = scratch.winners[:count].astype(cand_vertex.dtype)
    owners = scratch.owners[:count].astype(cand_center.dtype)
    return winners, owners


def delayed_multisource_bfs(
    graph: CSRGraph,
    start_time: np.ndarray,
    *,
    tie_key: np.ndarray | None = None,
    center_mask: np.ndarray | None = None,
    max_round: int | None = None,
    kernel: str | None = None,
) -> DelayedBFSResult:
    """Run the shifted BFS.

    Parameters
    ----------
    graph:
        Undirected unweighted CSR graph.
    start_time:
        Non-negative float per vertex: the time at which the vertex wakes and
        starts claiming (``δ_max − δ_u`` in the paper).  Integer parts
        schedule rounds, fractional parts break ties unless ``tie_key``
        overrides them.
    tie_key:
        Optional explicit per-vertex tie-break keys (the §5 permutation
        variant passes ranks here).  Lower key wins; exact ties fall back to
        the smaller center id, the paper's lexicographic rule.
    center_mask:
        Optional boolean mask restricting which vertices may wake as centers.
        The paper's algorithm lets every vertex be a potential center (all
        True, the default); the Blelloch-et-al baseline grows balls from a
        sampled batch only.  With a restricted mask some vertices may remain
        unowned (``center == −1``).
    max_round:
        Optional inclusive cap on the round counter; claims that would occur
        in later rounds are abandoned.  Used for radius-capped ball growing.
    kernel:
        Hot-path engine: ``"python"`` (numpy), ``"native"`` (compiled
        extension), ``"auto"`` (native when built, else numpy), or ``None``
        to read the ambient :func:`repro.bfs.kernels.use_kernel` context.
        Both engines are bit-identical; ``"native"`` raises
        :class:`~repro.errors.ParameterError` when the extension is absent.
    """
    mode = resolve_kernel(kernel)
    n = graph.num_vertices
    start_time = np.ascontiguousarray(start_time, dtype=np.float64)
    if start_time.shape[0] != n:
        raise ParameterError("start_time must have one entry per vertex")
    # NaN slips past a plain `min() < 0` check (NaN comparisons are False)
    # and would poison round scheduling and claim resolution downstream.
    if n and not (np.isfinite(start_time).all() and start_time.min() >= 0):
        raise ParameterError("start times must be finite and non-negative")
    floor_start = np.floor(start_time).astype(np.int64)
    if tie_key is None:
        tie_key = start_time - floor_start
    else:
        tie_key = np.ascontiguousarray(tie_key, dtype=np.float64)
        if tie_key.shape[0] != n:
            raise ParameterError("tie_key must have one entry per vertex")
        if n and not np.isfinite(tie_key).all():
            raise ParameterError("tie keys must be finite")
    if center_mask is not None:
        center_mask = np.asarray(center_mask, dtype=bool)
        if center_mask.shape[0] != n:
            raise ParameterError("center_mask must have one entry per vertex")
        if not center_mask.any():
            raise ParameterError("center_mask must allow at least one center")

    center = np.full(n, -1, dtype=np.int64)
    round_claimed = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return DelayedBFSResult(
            center=center,
            round_claimed=round_claimed,
            hops=np.zeros(0, dtype=np.int64),
            num_rounds=0,
            active_rounds=0,
            work=0,
            frontier_sizes=[],
        )

    # Wake schedule: eligible vertices sorted by waking round, consumed by a
    # pointer as rounds advance.
    eligible = (
        np.arange(n, dtype=VERTEX_DTYPE)
        if center_mask is None
        else np.flatnonzero(center_mask).astype(VERTEX_DTYPE)
    )
    wake_order = eligible[
        np.argsort(floor_start[eligible], kind="stable")
    ]
    wake_rounds_sorted = floor_start[wake_order]
    n_wake = int(wake_order.shape[0])
    ptr = 0

    native = native_module() if mode == "native" else None
    scratch = KernelScratch(n)
    frontier = np.zeros(0, dtype=VERTEX_DTYPE)
    frontier_sizes: list[int] = []
    work = 0
    t = int(wake_rounds_sorted[0])
    first_round = t
    last_round = t
    active = 0
    limit = np.inf if max_round is None else int(max_round)
    # Phase timing is decided once per BFS, not per round: when telemetry
    # is off the loop takes zero clock readings.
    timed = telemetry.enabled()
    gather_s = resolve_s = 0.0

    while t <= limit:
        if timed:
            phase_t0 = time.perf_counter()
        # ---- gather wake-up bids for round t --------------------------------
        wake_hi = int(np.searchsorted(wake_rounds_sorted, t, side="right"))
        waking = wake_order[ptr:wake_hi]
        ptr = wake_hi

        if native is not None:
            # Fused gather + CRCW bid pass: wake-ups, frontier arc expansion,
            # and the priority write happen in one C sweep over the scratch.
            n_touched, arcs, wake_bids = native.scatter_bids(
                graph.indptr,
                graph.indices,
                frontier,
                waking,
                center,
                tie_key,
                scratch.best_key,
                scratch.best_center,
                scratch.touched,
            )
            work += int(wake_bids) + int(arcs)
            if timed:
                phase_t1 = time.perf_counter()
                gather_s += phase_t1 - phase_t0
            if n_touched:
                claimed_count = native.commit_winners(
                    scratch.touched,
                    n_touched,
                    scratch.best_key,
                    scratch.best_center,
                    center,
                    round_claimed,
                    t,
                    scratch.winners,
                )
                if timed:
                    resolve_s += time.perf_counter() - phase_t1
                # A view is safe: the next round reads it in scatter_bids
                # before commit_winners overwrites the buffer.
                frontier = scratch.winners[:claimed_count]
            else:
                claimed_count = 0
        else:
            waking = waking[center[waking] == -1]
            work += int(waking.size)

            # ---- gather propagation bids from the previous winners ----------
            if frontier.size:
                arc_src, arc_dst = gather_frontier_arcs(graph, frontier)
                work += int(arc_src.size)
                open_mask = center[arc_dst] == -1
                prop_v = arc_dst[open_mask]
                prop_c = center[arc_src[open_mask]]
            else:
                prop_v = np.zeros(0, dtype=VERTEX_DTYPE)
                prop_c = np.zeros(0, dtype=np.int64)

            cand_v = np.concatenate([waking, prop_v])
            cand_c = np.concatenate([waking.astype(np.int64), prop_c])
            if timed:
                phase_t1 = time.perf_counter()
                gather_s += phase_t1 - phase_t0

            claimed_count = 0
            if cand_v.size:
                winners, owners = resolve_claims(
                    cand_v,
                    cand_c,
                    tie_key,
                    num_vertices=n,
                    kernel="python",
                    scratch=scratch,
                )
                if timed:
                    resolve_s += time.perf_counter() - phase_t1
                center[winners] = owners
                round_claimed[winners] = t
                frontier = winners.astype(VERTEX_DTYPE)
                claimed_count = int(winners.size)

        if claimed_count:
            frontier_sizes.append(int(claimed_count))
            active += 1
            last_round = t
            t += 1
        else:
            frontier = np.zeros(0, dtype=VERTEX_DTYPE)
            # Fast-forward to the next pending wake-up.  Compress the wake
            # schedule to still-unclaimed entries in one vectorised pass
            # (the old one-by-one Python skip was O(n) interpreter steps).
            rest = wake_order[ptr:]
            rest = rest[center[rest] == -1]
            if rest.size == 0:
                break
            wake_order = rest
            wake_rounds_sorted = floor_start[rest]
            n_wake = int(rest.size)
            ptr = 0
            t = int(wake_rounds_sorted[0])

        if frontier.size == 0 and ptr >= n_wake:
            break

    owned = center != -1
    hops = np.full(n, -1, dtype=np.int64)
    hops[owned] = round_claimed[owned] - floor_start[center[owned]]
    return DelayedBFSResult(
        center=center,
        round_claimed=round_claimed,
        hops=hops,
        num_rounds=(last_round - first_round + 1) if active else 0,
        active_rounds=active,
        work=work,
        frontier_sizes=frontier_sizes,
        phase_seconds=(
            {"gather": gather_s, "resolve": resolve_s} if timed else {}
        ),
    )
