/* Compiled frontier kernel for the delayed-start shifted BFS.
 *
 * This module implements the two hot phases of
 * ``repro.bfs.delayed.delayed_multisource_bfs`` — frontier arc gathering
 * and the CRCW claim-resolution priority write — as single fused passes
 * over raw C buffers, replacing the multi-pass numpy pipeline (repeat/
 * cumsum gathers, ``ufunc.at`` priority writes, lexsorts) with one
 * cache-friendly loop per phase.
 *
 * Bit-exactness contract: a round's winner set is, per vertex, the
 * minimum ``(tie_key[center], center)`` pair over all bids, and that
 * minimum is unique — so any implementation applying the same comparison
 * produces identical assignments.  The comparisons here are the same
 * IEEE-754 double comparisons numpy's ``lexsort``/``minimum.at`` perform
 * (NaN keys are rejected upstream), and winners are emitted in ascending
 * vertex order exactly like the numpy paths, so every intermediate
 * frontier — not just the final assignment — matches bit for bit.  The
 * differential conformance suite (tests/test_conformance.py) pins this.
 *
 * The module deliberately uses only the CPython buffer protocol — no
 * numpy C API — so it compiles against any numpy version the package
 * supports.  Arrays must be C-contiguous int64 (``l``/``q``) or float64
 * (``d``); the Python wrapper in ``repro.bfs.kernels`` guarantees that.
 *
 * All hot loops run with the GIL released.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <math.h>
#include <stdint.h>
#include <stdlib.h>

/* "no bid yet" sentinel in the best_center scratch array; real center ids
 * are vertex ids < n, so the sentinel can never win a comparison. */
#define NO_CENTER INT64_MAX

/* ------------------------------------------------------------------ */
/* buffer helpers                                                      */
/* ------------------------------------------------------------------ */

static int
get_buffer(PyObject *obj, Py_buffer *view, int writable, char kind,
           const char *name, void **data, Py_ssize_t *len)
{
    int flags = PyBUF_C_CONTIGUOUS | PyBUF_FORMAT;
    if (writable)
        flags |= PyBUF_WRITABLE;
    if (PyObject_GetBuffer(obj, view, flags) < 0) {
        PyErr_Format(PyExc_TypeError,
                     "%s must be a C-contiguous %s array%s", name,
                     kind == 'i' ? "int64" : "float64",
                     writable ? " (writable)" : "");
        return -1;
    }
    const char *fmt = view->format ? view->format : "B";
    int ok;
    if (kind == 'i')
        ok = view->itemsize == 8 && (fmt[0] == 'l' || fmt[0] == 'q') &&
             fmt[1] == '\0';
    else
        ok = view->itemsize == 8 && fmt[0] == 'd' && fmt[1] == '\0';
    if (!ok) {
        PyErr_Format(PyExc_TypeError,
                     "%s must be a C-contiguous %s array, got format '%s'",
                     name, kind == 'i' ? "int64" : "float64", fmt);
        PyBuffer_Release(view);
        return -1;
    }
    *data = view->buf;
    *len = view->len / 8;
    return 0;
}

/* ------------------------------------------------------------------ */
/* the CRCW priority write: min (key, center) per vertex               */
/* ------------------------------------------------------------------ */

static inline Py_ssize_t
bid(int64_t v, double key, int64_t c, double *best_key,
    int64_t *best_center, int64_t *touched, Py_ssize_t n_touched)
{
    if (best_center[v] == NO_CENTER) {
        touched[n_touched++] = v;
        best_key[v] = key;
        best_center[v] = c;
    } else if (key < best_key[v] ||
               (key == best_key[v] && c < best_center[v])) {
        best_key[v] = key;
        best_center[v] = c;
    }
    return n_touched;
}

static int
cmp_int64(const void *a, const void *b)
{
    const int64_t x = *(const int64_t *)a, y = *(const int64_t *)b;
    return (x > y) - (x < y);
}

/* ------------------------------------------------------------------ */
/* scatter_bids: wake-up + frontier-arc gathering, fused with the      */
/* priority write into the (best_key, best_center) scratch arrays      */
/* ------------------------------------------------------------------ */

PyDoc_STRVAR(scatter_bids_doc,
"scatter_bids(indptr, indices, frontier, waking, center, tie_key,\n"
"             best_key, best_center, touched) -> (n_touched, arcs, wake_bids)\n"
"\n"
"One round's gather phase: every still-unowned vertex in ``waking`` bids\n"
"for itself, every arc out of ``frontier`` bids for its unowned target on\n"
"behalf of the source's center.  Bids priority-write into the pristine\n"
"(best_key=+inf, best_center=NO_CENTER) scratch arrays; first-touched\n"
"vertices are appended to ``touched``.  Returns the number of touched\n"
"vertices, the number of arcs scanned, and the number of wake-up bids\n"
"(the round's work contributions).");

static PyObject *
py_scatter_bids(PyObject *self, PyObject *args)
{
    PyObject *o_indptr, *o_indices, *o_frontier, *o_waking, *o_center,
        *o_tie_key, *o_best_key, *o_best_center, *o_touched;
    if (!PyArg_ParseTuple(args, "OOOOOOOOO", &o_indptr, &o_indices,
                          &o_frontier, &o_waking, &o_center, &o_tie_key,
                          &o_best_key, &o_best_center, &o_touched))
        return NULL;

    Py_buffer b[9];
    int nb = 0;
    int64_t *indptr, *indices, *frontier, *waking, *center, *best_center,
        *touched;
    double *tie_key, *best_key;
    Py_ssize_t len_indptr, len_indices, len_frontier, len_waking, n,
        len_tie_key, len_best_key, len_best_center, len_touched;

#define GRAB(obj, writable, kind, name, ptr, len)                       \
    do {                                                                \
        if (get_buffer(obj, &b[nb], writable, kind, name,               \
                       (void **)(ptr), (len)) < 0)                      \
            goto fail;                                                  \
        nb++;                                                           \
    } while (0)

    GRAB(o_indptr, 0, 'i', "indptr", &indptr, &len_indptr);
    GRAB(o_indices, 0, 'i', "indices", &indices, &len_indices);
    GRAB(o_frontier, 0, 'i', "frontier", &frontier, &len_frontier);
    GRAB(o_waking, 0, 'i', "waking", &waking, &len_waking);
    GRAB(o_center, 0, 'i', "center", &center, &n);
    GRAB(o_tie_key, 0, 'd', "tie_key", &tie_key, &len_tie_key);
    GRAB(o_best_key, 1, 'd', "best_key", &best_key, &len_best_key);
    GRAB(o_best_center, 1, 'i', "best_center", &best_center,
         &len_best_center);
    GRAB(o_touched, 1, 'i', "touched", &touched, &len_touched);

    if (len_indptr != n + 1 || len_tie_key != n || len_best_key != n ||
        len_best_center != n || len_touched < n) {
        PyErr_SetString(PyExc_ValueError,
                        "scatter_bids: array lengths are inconsistent "
                        "with the vertex count");
        goto fail;
    }

    Py_ssize_t n_touched = 0;
    int64_t arcs = 0, wake_bids = 0;
    const char *err = NULL;

    Py_BEGIN_ALLOW_THREADS
    for (Py_ssize_t i = 0; i < len_waking; i++) {
        int64_t w = waking[i];
        if (w < 0 || w >= n) {
            err = "waking vertex id out of range";
            break;
        }
        if (center[w] != -1)
            continue;
        wake_bids++;
        n_touched = bid(w, tie_key[w], w, best_key, best_center, touched,
                        n_touched);
    }
    if (err == NULL) {
        for (Py_ssize_t i = 0; i < len_frontier; i++) {
            int64_t u = frontier[i];
            if (u < 0 || u >= n) {
                err = "frontier vertex id out of range";
                break;
            }
            int64_t c = center[u];
            if (c < 0 || c >= n) {
                err = "frontier vertex has no owner";
                break;
            }
            double key = tie_key[c];
            int64_t lo = indptr[u], hi = indptr[u + 1];
            if (lo < 0 || hi < lo || hi > len_indices) {
                err = "corrupt CSR offsets";
                break;
            }
            arcs += hi - lo;
            for (int64_t a = lo; a < hi; a++) {
                int64_t v = indices[a];
                if (v < 0 || v >= n) {
                    err = "arc target out of range";
                    break;
                }
                if (center[v] != -1)
                    continue;
                n_touched = bid(v, key, c, best_key, best_center, touched,
                                n_touched);
            }
            if (err != NULL)
                break;
        }
    }
    Py_END_ALLOW_THREADS

    if (err != NULL) {
        PyErr_SetString(PyExc_ValueError, err);
        goto fail;
    }
    for (int i = 0; i < nb; i++)
        PyBuffer_Release(&b[i]);
    return Py_BuildValue("nLL", n_touched, (long long)arcs,
                         (long long)wake_bids);

fail:
    for (int i = 0; i < nb; i++)
        PyBuffer_Release(&b[i]);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* commit_winners: claim resolution commit + scratch reset             */
/* ------------------------------------------------------------------ */

PyDoc_STRVAR(commit_winners_doc,
"commit_winners(touched, n_touched, best_key, best_center, center,\n"
"               round_claimed, t, winners) -> n_winners\n"
"\n"
"One round's resolve phase: every touched vertex is claimed by its\n"
"winning bidder (``center``/``round_claimed`` are written in place),\n"
"winners are emitted into ``winners`` in ascending vertex order (the\n"
"order the numpy paths produce), and the touched scratch entries are\n"
"reset to their pristine state so the scratch can be reused next round.");

static PyObject *
py_commit_winners(PyObject *self, PyObject *args)
{
    PyObject *o_touched, *o_best_key, *o_best_center, *o_center,
        *o_round_claimed, *o_winners;
    Py_ssize_t n_touched;
    long long t;
    if (!PyArg_ParseTuple(args, "OnOOOOLO", &o_touched, &n_touched,
                          &o_best_key, &o_best_center, &o_center,
                          &o_round_claimed, &t, &o_winners))
        return NULL;

    Py_buffer b[6];
    int nb = 0;
    int64_t *touched, *best_center, *center, *round_claimed, *winners;
    double *best_key;
    Py_ssize_t len_touched, n, len_best_center, len_center, len_round,
        len_winners;

    GRAB(o_touched, 1, 'i', "touched", &touched, &len_touched);
    GRAB(o_best_key, 1, 'd', "best_key", &best_key, &n);
    GRAB(o_best_center, 1, 'i', "best_center", &best_center,
         &len_best_center);
    GRAB(o_center, 1, 'i', "center", &center, &len_center);
    GRAB(o_round_claimed, 1, 'i', "round_claimed", &round_claimed,
         &len_round);
    GRAB(o_winners, 1, 'i', "winners", &winners, &len_winners);

    if (n_touched < 0 || n_touched > len_touched || len_winners < n_touched ||
        len_best_center != n || len_center != n || len_round != n) {
        PyErr_SetString(PyExc_ValueError,
                        "commit_winners: array lengths are inconsistent");
        goto fail;
    }
    const char *err = NULL;
    Py_BEGIN_ALLOW_THREADS
    qsort(touched, (size_t)n_touched, sizeof(int64_t), cmp_int64);
    for (Py_ssize_t i = 0; i < n_touched; i++) {
        int64_t v = touched[i];
        if (v < 0 || v >= n) {
            err = "touched vertex id out of range";
            break;
        }
        center[v] = best_center[v];
        round_claimed[v] = (int64_t)t;
        winners[i] = v;
        best_key[v] = INFINITY;
        best_center[v] = NO_CENTER;
    }
    Py_END_ALLOW_THREADS
    if (err != NULL) {
        PyErr_SetString(PyExc_ValueError, err);
        goto fail;
    }
    for (int i = 0; i < nb; i++)
        PyBuffer_Release(&b[i]);
    return PyLong_FromSsize_t(n_touched);

fail:
    for (int i = 0; i < nb; i++)
        PyBuffer_Release(&b[i]);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* standalone resolve_claims: the public CRCW priority write           */
/* ------------------------------------------------------------------ */

PyDoc_STRVAR(resolve_claims_doc,
"resolve_claims(cand_vertex, cand_center, tie_key, best_key, best_center,\n"
"               touched, winners, owners) -> n_winners\n"
"\n"
"Resolve a candidate multiset in one pass: per vertex the minimum\n"
"``(tie_key[center], center)`` pair wins.  Winners (ascending) and their\n"
"owners are written into the output buffers; the scratch arrays are left\n"
"pristine.  Bit-identical to both numpy implementations in\n"
"``repro.bfs.delayed.resolve_claims``.");

static PyObject *
py_resolve_claims(PyObject *self, PyObject *args)
{
    PyObject *o_cand_v, *o_cand_c, *o_tie_key, *o_best_key, *o_best_center,
        *o_touched, *o_winners, *o_owners;
    if (!PyArg_ParseTuple(args, "OOOOOOOO", &o_cand_v, &o_cand_c,
                          &o_tie_key, &o_best_key, &o_best_center,
                          &o_touched, &o_winners, &o_owners))
        return NULL;

    Py_buffer b[8];
    int nb = 0;
    int64_t *cand_v, *cand_c, *best_center, *touched, *winners, *owners;
    double *tie_key, *best_key;
    Py_ssize_t len_cand, len_cand_c, len_tie_key, n, len_best_center,
        len_touched, len_winners, len_owners;

    GRAB(o_cand_v, 0, 'i', "cand_vertex", &cand_v, &len_cand);
    GRAB(o_cand_c, 0, 'i', "cand_center", &cand_c, &len_cand_c);
    GRAB(o_tie_key, 0, 'd', "tie_key", &tie_key, &len_tie_key);
    GRAB(o_best_key, 1, 'd', "best_key", &best_key, &n);
    GRAB(o_best_center, 1, 'i', "best_center", &best_center,
         &len_best_center);
    GRAB(o_touched, 1, 'i', "touched", &touched, &len_touched);
    GRAB(o_winners, 1, 'i', "winners", &winners, &len_winners);
    GRAB(o_owners, 1, 'i', "owners", &owners, &len_owners);

    Py_ssize_t cap = len_cand < n ? len_cand : n;
    if (len_cand_c != len_cand || len_best_center != n || len_touched < cap ||
        len_winners < cap || len_owners < cap) {
        PyErr_SetString(PyExc_ValueError,
                        "resolve_claims: array lengths are inconsistent");
        goto fail;
    }

    Py_ssize_t n_touched = 0;
    const char *err = NULL;
    Py_BEGIN_ALLOW_THREADS
    for (Py_ssize_t i = 0; i < len_cand; i++) {
        int64_t v = cand_v[i], c = cand_c[i];
        if (v < 0 || v >= n) {
            err = "candidate vertex id out of range";
            break;
        }
        if (c < 0 || c >= len_tie_key) {
            err = "candidate center id out of range";
            break;
        }
        n_touched = bid(v, tie_key[c], c, best_key, best_center, touched,
                        n_touched);
    }
    if (err == NULL) {
        qsort(touched, (size_t)n_touched, sizeof(int64_t), cmp_int64);
        for (Py_ssize_t i = 0; i < n_touched; i++) {
            int64_t v = touched[i];
            winners[i] = v;
            owners[i] = best_center[v];
            best_key[v] = INFINITY;
            best_center[v] = NO_CENTER;
        }
    }
    Py_END_ALLOW_THREADS

    if (err != NULL) {
        /* leave no stale scratch behind: reset everything we touched */
        for (Py_ssize_t i = 0; i < n_touched; i++) {
            int64_t v = touched[i];
            if (v >= 0 && v < n) {
                best_key[v] = INFINITY;
                best_center[v] = NO_CENTER;
            }
        }
        PyErr_SetString(PyExc_ValueError, err);
        goto fail;
    }
    for (int i = 0; i < nb; i++)
        PyBuffer_Release(&b[i]);
    return PyLong_FromSsize_t(n_touched);

fail:
    for (int i = 0; i < nb; i++)
        PyBuffer_Release(&b[i]);
    return NULL;
}

#undef GRAB

/* ------------------------------------------------------------------ */
/* module scaffolding                                                  */
/* ------------------------------------------------------------------ */

static PyMethodDef kernel_methods[] = {
    {"scatter_bids", py_scatter_bids, METH_VARARGS, scatter_bids_doc},
    {"commit_winners", py_commit_winners, METH_VARARGS, commit_winners_doc},
    {"resolve_claims", py_resolve_claims, METH_VARARGS, resolve_claims_doc},
    {NULL, NULL, 0, NULL},
};

PyDoc_STRVAR(module_doc,
"Compiled frontier kernel for the delayed-start shifted BFS.\n"
"\n"
"Internal module — use :mod:`repro.bfs.kernels` for dispatch and\n"
":func:`repro.bfs.delayed.delayed_multisource_bfs` with ``kernel=...``\n"
"for the user-facing switch.");

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro.bfs._kernel",
    module_doc,
    0,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernel(void)
{
    return PyModule_Create(&kernel_module);
}
