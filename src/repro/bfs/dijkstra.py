"""Shortest-path engines based on binary heaps.

Two roles in the reproduction:

- :func:`shifted_integer_dijkstra` is the *exact reference* for the paper's
  Algorithm 2 on unweighted graphs.  It minimises the shifted distance in the
  lexicographic domain ``(integer round, tie key, center id)`` — the same
  total order the frontier engine uses — so the two implementations must
  agree bit-for-bit given equal inputs.  The property tests rely on this.
- :func:`dijkstra_multisource` is the general positively-weighted engine used
  by the Section 6 weighted extension and by the distance-oracle and
  low-stretch applications.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.graphs.weighted import WeightedCSRGraph

__all__ = [
    "ShiftedDijkstraResult",
    "shifted_integer_dijkstra",
    "DijkstraResult",
    "dijkstra_multisource",
    "dijkstra",
]


@dataclass(frozen=True, eq=False)
class ShiftedDijkstraResult:
    """Exact shifted-shortest-path assignment (mirrors DelayedBFSResult)."""

    center: np.ndarray
    round_claimed: np.ndarray
    hops: np.ndarray
    #: heap operations performed — the sequential work measure.
    work: int


def shifted_integer_dijkstra(
    graph: CSRGraph,
    start_round: np.ndarray,
    tie_key: np.ndarray,
) -> ShiftedDijkstraResult:
    """Assign each vertex to the center minimising the shifted distance.

    Every vertex is a potential center.  Center ``u`` reaches vertex ``v``
    with priority ``(start_round[u] + dist(u, v), tie_key[u], u)``; each
    vertex adopts the lexicographically smallest priority that reaches it.
    This is Algorithm 2 with the Section 5 integer/fractional split applied,
    i.e. exactly the semantics of
    :func:`repro.bfs.delayed.delayed_multisource_bfs`.
    """
    n = graph.num_vertices
    start_round = np.asarray(start_round, dtype=np.int64)
    tie_key = np.asarray(tie_key, dtype=np.float64)
    if start_round.shape[0] != n or tie_key.shape[0] != n:
        raise ParameterError("start_round and tie_key must have length n")
    center = np.full(n, -1, dtype=np.int64)
    round_claimed = np.full(n, -1, dtype=np.int64)
    heap: list[tuple[int, float, int, int]] = [
        (int(start_round[v]), float(tie_key[v]), v, v) for v in range(n)
    ]
    heapq.heapify(heap)
    indptr, indices = graph.indptr, graph.indices
    work = n
    while heap:
        rnd, key, c, v = heapq.heappop(heap)
        work += 1
        if center[v] != -1:
            continue
        center[v] = c
        round_claimed[v] = rnd
        for w in indices[indptr[v] : indptr[v + 1]]:
            w = int(w)
            if center[w] == -1:
                heapq.heappush(heap, (rnd + 1, key, c, w))
                work += 1
    hops = round_claimed - start_round[center]
    return ShiftedDijkstraResult(
        center=center, round_claimed=round_claimed, hops=hops, work=work
    )


@dataclass(frozen=True, eq=False)
class DijkstraResult:
    """Weighted shortest-path result.

    ``dist[v]`` is ``inf`` for unreached vertices; ``source[v]`` identifies
    the source whose (initial-distance-offset) path is shortest, with ties
    broken by smaller source id.
    """

    dist: np.ndarray
    parent: np.ndarray
    source: np.ndarray
    work: int


def dijkstra_multisource(
    graph: WeightedCSRGraph | CSRGraph,
    sources: np.ndarray,
    *,
    init_dist: np.ndarray | None = None,
) -> DijkstraResult:
    """Multi-source Dijkstra with optional per-source initial distances.

    ``init_dist`` (aligned with ``sources``) seeds each source at a possibly
    non-zero distance — the super-source construction of Section 5 without
    materialising the extra vertex.  Unweighted graphs are treated as having
    unit weights.
    """
    n = graph.num_vertices
    sources = np.asarray(sources, dtype=np.int64)
    if sources.size and (sources.min() < 0 or sources.max() >= n):
        raise ParameterError("source ids out of range")
    if init_dist is None:
        init = np.zeros(sources.shape[0], dtype=np.float64)
    else:
        init = np.asarray(init_dist, dtype=np.float64)
        if init.shape != sources.shape:
            raise ParameterError("init_dist must align with sources")
    weighted = isinstance(graph, WeightedCSRGraph)
    dist = np.full(n, np.inf, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    origin = np.full(n, -1, dtype=np.int64)
    settled = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int, int, int]] = []
    for s, d0 in zip(sources, init):
        heap.append((float(d0), int(s), int(s), -1))
    heapq.heapify(heap)
    indptr, indices = graph.indptr, graph.indices
    weights = graph.weights if weighted else None
    work = len(heap)
    while heap:
        d, s, v, par = heapq.heappop(heap)
        work += 1
        if settled[v]:
            continue
        settled[v] = True
        dist[v] = d
        origin[v] = s
        parent[v] = par
        lo, hi = indptr[v], indptr[v + 1]
        for k in range(lo, hi):
            w = int(indices[k])
            if not settled[w]:
                step = float(weights[k]) if weighted else 1.0
                heapq.heappush(heap, (d + step, s, w, v))
                work += 1
    return DijkstraResult(dist=dist, parent=parent, source=origin, work=work)


def dijkstra(
    graph: WeightedCSRGraph | CSRGraph, source: int
) -> DijkstraResult:
    """Single-source Dijkstra."""
    return dijkstra_multisource(graph, np.asarray([source], dtype=np.int64))
