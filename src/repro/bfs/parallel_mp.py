"""Multiprocessing backend for the shifted BFS — real multi-core execution.

CPython's GIL rules out shared-memory *threads* for the frontier expansion
(the repro-band's known gate), so this backend uses the message-passing
pattern of distributed BFS instead, the same 1-D decomposition mpi4py
programs use:

- the CSR arrays are shipped to each worker **once** at pool creation
  (initializer arguments), playing the role of the read-only replicated
  graph;
- each round, the master scatters frontier chunks (with their owners'
  ids) to the workers, workers gather their chunk's out-arcs and return
  candidate ``(vertex, center)`` bids, and the master — acting as the
  combining CRCW memory — filters already-owned vertices and resolves ties.

The result is **bit-identical** to :func:`repro.bfs.delayed.delayed_multisource_bfs`
for any input (asserted by tests): the backend changes only *where* the
gathers run, never the claim-resolution order.

This is a demonstration of correctness under real parallel execution, not a
speed play: per-round IPC costs dominate for the problem sizes Python
handles, exactly as DESIGN.md §5's substitution table records.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph
from repro.bfs.delayed import DelayedBFSResult, resolve_claims

__all__ = ["ParallelBFSEngine", "delayed_multisource_bfs_mp"]

# Worker-side globals installed by the pool initializer.
_W_INDPTR: np.ndarray | None = None
_W_INDICES: np.ndarray | None = None


def _init_worker(indptr: np.ndarray, indices: np.ndarray) -> None:
    """Install the read-only CSR arrays in the worker process."""
    global _W_INDPTR, _W_INDICES
    _W_INDPTR = indptr
    _W_INDICES = indices


def _expand_chunk(
    args: tuple[np.ndarray, np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Worker task: gather out-arcs of a frontier chunk.

    ``args`` is ``(chunk_vertices, chunk_owner_centers)``.  Returns candidate
    ``(target vertex, bidding center)`` arrays; filtering of already-owned
    targets happens at the master, which holds the authoritative ownership.
    """
    chunk, owners = args
    indptr, indices = _W_INDPTR, _W_INDICES
    assert indptr is not None and indices is not None
    starts = indptr[chunk]
    counts = indptr[chunk + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return (
            np.zeros(0, dtype=VERTEX_DTYPE),
            np.zeros(0, dtype=np.int64),
        )
    prefix = np.cumsum(counts) - counts
    within = np.arange(total, dtype=VERTEX_DTYPE) - np.repeat(prefix, counts)
    arc_ids = np.repeat(starts, counts) + within
    return indices[arc_ids], np.repeat(owners, counts)


class ParallelBFSEngine:
    """A persistent worker pool bound to one graph.

    Create once, run many shifted BFS invocations against the same graph
    (the decomposition benchmarks re-run with many shift samples), then
    :meth:`close` — or use as a context manager.
    """

    def __init__(self, graph: CSRGraph, num_workers: int = 2) -> None:
        if num_workers < 1:
            raise ParameterError("num_workers must be >= 1")
        self._graph = graph
        self._num_workers = num_workers
        ctx = mp.get_context()
        self._pool = ctx.Pool(
            processes=num_workers,
            initializer=_init_worker,
            initargs=(graph.indptr, graph.indices),
        )

    def __enter__(self) -> "ParallelBFSEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Terminate the worker pool."""
        self._pool.close()
        self._pool.join()

    # ------------------------------------------------------------------
    def partition_delayed(
        self,
        start_time: np.ndarray,
        *,
        tie_key: np.ndarray | None = None,
    ) -> DelayedBFSResult:
        """Distributed-gather version of ``delayed_multisource_bfs``.

        Same contract and same output; see that function for semantics.
        """
        graph = self._graph
        n = graph.num_vertices
        start_time = np.asarray(start_time, dtype=np.float64)
        if start_time.shape[0] != n:
            raise ParameterError("start_time must have one entry per vertex")
        if n and start_time.min() < 0:
            raise ParameterError("start times must be non-negative")
        floor_start = np.floor(start_time).astype(np.int64)
        if tie_key is None:
            tie_key = start_time - floor_start
        else:
            tie_key = np.asarray(tie_key, dtype=np.float64)
            if tie_key.shape[0] != n:
                raise ParameterError("tie_key must have one entry per vertex")

        center = np.full(n, -1, dtype=np.int64)
        round_claimed = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return DelayedBFSResult(
                center=center,
                round_claimed=round_claimed,
                hops=np.zeros(0, dtype=np.int64),
                num_rounds=0,
                active_rounds=0,
                work=0,
                frontier_sizes=[],
            )

        wake_order = np.argsort(floor_start, kind="stable").astype(VERTEX_DTYPE)
        wake_rounds_sorted = floor_start[wake_order]
        ptr = 0
        frontier = np.zeros(0, dtype=VERTEX_DTYPE)
        frontier_sizes: list[int] = []
        work = 0
        t = int(wake_rounds_sorted[0])
        first_round = t
        last_round = t
        active = 0

        while True:
            wake_hi = ptr
            while wake_hi < n and wake_rounds_sorted[wake_hi] == t:
                wake_hi += 1
            waking = wake_order[ptr:wake_hi]
            ptr = wake_hi
            waking = waking[center[waking] == -1]
            work += int(waking.size)

            if frontier.size:
                prop_v, prop_c = self._scatter_gather(frontier, center)
                work += int(prop_v.size)
                open_mask = center[prop_v] == -1
                prop_v = prop_v[open_mask]
                prop_c = prop_c[open_mask]
            else:
                prop_v = np.zeros(0, dtype=VERTEX_DTYPE)
                prop_c = np.zeros(0, dtype=np.int64)

            cand_v = np.concatenate([waking, prop_v])
            cand_c = np.concatenate([waking.astype(np.int64), prop_c])

            if cand_v.size:
                winners, owners = resolve_claims(
                    cand_v, cand_c, tie_key, num_vertices=n
                )
                center[winners] = owners
                round_claimed[winners] = t
                frontier = winners.astype(VERTEX_DTYPE)
                frontier_sizes.append(int(winners.size))
                active += 1
                last_round = t
                t += 1
            else:
                frontier = np.zeros(0, dtype=VERTEX_DTYPE)
                while ptr < n and center[wake_order[ptr]] != -1:
                    ptr += 1
                if ptr >= n:
                    break
                t = int(wake_rounds_sorted[ptr])

            if frontier.size == 0 and ptr >= n:
                break

        hops = round_claimed - floor_start[center]
        return DelayedBFSResult(
            center=center,
            round_claimed=round_claimed,
            hops=hops,
            num_rounds=last_round - first_round + 1,
            active_rounds=active,
            work=work,
            frontier_sizes=frontier_sizes,
        )

    def _scatter_gather(
        self, frontier: np.ndarray, center: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scatter frontier chunks to workers, gather candidate bids back.

        Chunk order is preserved on concatenation so the candidate stream is
        identical to the serial engine's gather order (claim resolution is
        order-independent anyway, but determinism eases debugging).
        """
        owners = center[frontier]
        chunks = np.array_split(frontier, self._num_workers)
        owner_chunks = np.array_split(owners, self._num_workers)
        tasks = [
            (c, o) for c, o in zip(chunks, owner_chunks) if c.size
        ]
        if not tasks:
            return np.zeros(0, dtype=VERTEX_DTYPE), np.zeros(0, dtype=np.int64)
        results = self._pool.map(_expand_chunk, tasks)
        cand_v = np.concatenate([r[0] for r in results])
        cand_c = np.concatenate([r[1] for r in results])
        return cand_v, cand_c


def delayed_multisource_bfs_mp(
    graph: CSRGraph,
    start_time: np.ndarray,
    *,
    tie_key: np.ndarray | None = None,
    num_workers: int = 2,
) -> DelayedBFSResult:
    """One-shot convenience wrapper around :class:`ParallelBFSEngine`."""
    with ParallelBFSEngine(graph, num_workers=num_workers) as engine:
        return engine.partition_delayed(start_time, tie_key=tie_key)
