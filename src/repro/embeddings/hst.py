"""Hierarchically separated trees (HSTs) from laminar hierarchies.

A 2-HST assigns each hierarchy node at level ``ℓ`` an edge of length
``scale(ℓ)/2`` to its parent at level ``ℓ+1``; the tree distance between two
leaves separated up to level ``ℓ*`` is therefore

    ``d_T(u, v) = 2 · Σ_{j=1..ℓ*} scale(j)/2 = Σ_{j=1..ℓ*} scale(j)``,

a geometric sum ``≈ 2·scale(ℓ*)`` for doubling scales.  Since pieces at
level ``j`` have radius ~``scale(j)``, ``d_T`` dominates the graph distance
up to constants, and Bartal/FRT-style arguments bound the expected blow-up —
our benchmark measures it empirically (this reproduction's hierarchy is the
simplified top-down variant; see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.hierarchy import Hierarchy
from repro.errors import ParameterError

__all__ = ["HST", "build_hst"]


@dataclass(frozen=True, eq=False)
class HST:
    """Tree metric over the vertex set induced by a hierarchy.

    Distances are computed directly from the hierarchy's label matrix —
    materialising tree nodes is unnecessary for metric queries, which is all
    the embedding applications need.
    """

    hierarchy: Hierarchy
    #: cumulative distance from a leaf up to each level:
    #: up_cost[ℓ] = Σ_{j=1..ℓ} scale(j) / 2.
    up_cost: np.ndarray

    def distance(self, u: np.ndarray | int, v: np.ndarray | int) -> np.ndarray:
        """Tree distance(s) between vertices; ``inf`` across components."""
        u_arr = np.atleast_1d(np.asarray(u, dtype=np.int64))
        v_arr = np.atleast_1d(np.asarray(v, dtype=np.int64))
        if u_arr.shape != v_arr.shape:
            raise ParameterError("u and v must have matching shapes")
        lvl = self.hierarchy.separation_level(u_arr, v_arr)
        out = np.empty(lvl.shape[0], dtype=np.float64)
        joined = lvl < self.hierarchy.num_levels
        out[joined] = 2.0 * self.up_cost[lvl[joined]]
        out[~joined] = np.inf
        out[u_arr == v_arr] = 0.0
        return out

    def all_pairs_sample(
        self, pairs: np.ndarray
    ) -> np.ndarray:
        """Distances for an ``(k, 2)`` array of vertex pairs."""
        pairs = np.asarray(pairs, dtype=np.int64)
        return self.distance(pairs[:, 0], pairs[:, 1])


def build_hst(hierarchy: Hierarchy) -> HST:
    """Construct the HST metric for a hierarchy."""
    scales = np.asarray(hierarchy.scale, dtype=np.float64)
    up = np.zeros(scales.shape[0], dtype=np.float64)
    # A leaf sits at level 0; climbing to level ℓ crosses edges of length
    # scale(1)/2, ..., scale(ℓ)/2.
    if scales.shape[0] > 1:
        np.cumsum(scales[1:] / 2.0, out=up[1:])
    return HST(hierarchy=hierarchy, up_cost=up)
