"""Probabilistic tree embeddings from hierarchical shifted decompositions."""

from repro.embeddings.distortion import DistortionReport, measure_distortion
from repro.embeddings.hierarchy import (
    Hierarchy,
    contracted_hierarchy,
    hierarchical_decomposition,
)
from repro.embeddings.hst import HST, build_hst

__all__ = [
    "DistortionReport",
    "measure_distortion",
    "Hierarchy",
    "contracted_hierarchy",
    "hierarchical_decomposition",
    "HST",
    "build_hst",
]
