"""Hierarchical (laminar) decompositions — substrate for tree embeddings.

Parallel probabilistic tree embeddings ([10], motivated in the paper's
introduction) stack low-diameter decompositions at geometrically decreasing
diameter scales: level ``ℓ`` partitions each level-``ℓ+1`` piece with a
target radius ``2^ℓ``, using ``β_ℓ = min(β_max, c·ln n / 2^ℓ)`` so the
Lemma 4.2 radius bound matches the scale.  The result is a laminar family:
level 0 is the singleton partition, the top level is one piece per connected
component.

:class:`Hierarchy` stores one dense label array per level and validates
laminarity; :mod:`repro.embeddings.hst` turns it into a tree metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError, ParameterError
from repro.graphs.csr import VERTEX_DTYPE, CSRGraph
from repro.graphs.ops import (
    connected_components,
    induced_subgraph,
    quotient_graph,
)
from repro.pipeline import DecomposeRequest, resolve_provider
from repro.rng.seeding import SeedLike, derive_seed, ensure_int_seed

__all__ = [
    "Hierarchy",
    "contracted_hierarchy",
    "hierarchical_decomposition",
]


@dataclass(frozen=True, eq=False)
class Hierarchy:
    """A laminar family of vertex partitions, finest (singletons) first.

    ``labels[ℓ][v]`` is the id of ``v``'s piece at level ``ℓ``; ids are dense
    per level.  ``scale[ℓ]`` is the target radius ``2^ℓ`` of the level.
    """

    labels: list[np.ndarray]
    scale: list[float]

    def __post_init__(self) -> None:
        if not self.labels:
            raise GraphError("hierarchy needs at least one level")
        n = self.labels[0].shape[0]
        for arr in self.labels:
            if arr.shape[0] != n:
                raise GraphError("all levels must label every vertex")
        # Laminarity: equal labels at level ℓ must stay equal at level ℓ+1.
        for lo, hi in zip(self.labels[:-1], self.labels[1:]):
            # Each fine piece must map into exactly one coarse piece.
            pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
            if np.unique(pairs[:, 0]).shape[0] != pairs.shape[0]:
                raise GraphError("hierarchy is not laminar")

    @property
    def num_levels(self) -> int:
        return len(self.labels)

    @property
    def num_vertices(self) -> int:
        return int(self.labels[0].shape[0])

    def pieces_per_level(self) -> list[int]:
        """Number of pieces at each level (monotone non-increasing)."""
        return [int(lvl.max()) + 1 for lvl in self.labels]

    def separation_level(
        self, u: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        """Smallest level at which ``u`` and ``v`` share a piece.

        Returns ``num_levels`` for pairs never merged (different components).
        Vectorised over pair arrays.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        out = np.full(u.shape[0], self.num_levels, dtype=np.int64)
        for lvl in range(self.num_levels - 1, -1, -1):
            same = self.labels[lvl][u] == self.labels[lvl][v]
            out[same] = lvl
        return out


def hierarchical_decomposition(
    graph: CSRGraph,
    *,
    seed: SeedLike = None,
    beta_max: float = 0.9,
    radius_constant: float = 1.0,
    method: str = "auto",
    provider=None,
    max_concurrent: int | None = None,
    **options: object,
) -> Hierarchy:
    """Build a laminar hierarchy by top-down shifted decomposition.

    The top level groups whole connected components; each descent to level
    ``ℓ`` re-decomposes every piece with ``β_ℓ = min(β_max, c·ln n / 2^ℓ)``.
    Level 0 is forced to singletons so the HST's leaves are vertices.

    Per-piece decompositions run through the pipeline layer (``provider``,
    ``method``, ``**options`` — see :mod:`repro.pipeline`).  A level's
    pieces are independent, so each level is submitted as one
    :meth:`~repro.pipeline.DecompositionProvider.decompose_batch`
    (``max_concurrent`` bounds the in-flight window; ``None`` = the
    backend's own bound) — concurrent backends overlap the pieces, and
    outputs stay bit-identical to the serial loop because label
    allocation happens afterwards in piece order.  Each piece's sub-seed
    is derived from the root seed and the piece's *content digest* — so
    a piece that survives unchanged from one level to the next (β capped
    at ``beta_max`` at fine scales) issues the exact request it issued
    before and the provider's memo answers it without recomputing, and
    single-vertex pieces never reach the backend at all (their trivial
    one-cluster assignment is applied locally).
    """
    if not 0 < beta_max < 1:
        raise ParameterError("beta_max must be in (0, 1)")
    if radius_constant <= 0:
        raise ParameterError("radius_constant must be positive")
    n = graph.num_vertices
    if n == 0:
        raise GraphError("cannot build a hierarchy on the empty graph")
    provider = resolve_provider(provider)
    root_seed = ensure_int_seed(seed)

    top = connected_components(graph).astype(np.int64)
    # Number of levels: enough that the top scale covers any component
    # radius (n is always enough; the loop stops refining once singleton).
    num_mid_levels = max(1, int(np.ceil(np.log2(max(n, 2)))))
    levels: list[np.ndarray] = [top]
    scales: list[float] = [float(2**num_mid_levels)]

    current = top
    for lvl in range(num_mid_levels - 1, 0, -1):
        target_radius = float(2**lvl)
        beta = min(
            beta_max, radius_constant * np.log(max(n, 2)) / target_radius
        )
        refined = _refine(
            graph, current, beta, root_seed, provider, method, options,
            max_concurrent=max_concurrent,
        )
        levels.append(refined)
        scales.append(target_radius)
        current = refined
    # Level 0: singletons.
    levels.append(np.arange(n, dtype=np.int64))
    scales.append(1.0)

    levels.reverse()
    scales.reverse()
    return Hierarchy(labels=levels, scale=scales)


def contracted_hierarchy(
    graph: CSRGraph,
    *,
    seed: SeedLike = None,
    beta_max: float = 0.9,
    radius_constant: float = 1.0,
    method: str = "auto",
    provider=None,
    max_concurrent: int | None = None,
    **options: object,
) -> Hierarchy:
    """Build a laminar hierarchy bottom-up by decompose-and-contract.

    The out-of-core counterpart of :func:`hierarchical_decomposition`:
    instead of carving induced subgraphs out of the full graph at every
    level (each an ``O(m)`` materialisation), each level decomposes the
    *quotient* of the one below it and contracts.  The full graph is
    touched exactly once — at level 1, where the quotient streams over a
    memmap backing — and every later level works on a graph no larger
    than the previous quotient, so peak RSS is bounded by the first
    contraction, not the input (the Ceccarello–Pucci level-scheduling
    idea applied to the AKPW/HST stack).

    Levels carry the same scales as the top-down builder (``2^ℓ`` target
    radius, ``β_ℓ = min(β_max, c·ln n / 2^ℓ)``), level 0 is singletons,
    and the top level is one piece per connected component.  The family
    is laminar by construction — level ``ℓ`` groups whole level-``ℓ−1``
    pieces.  The label *content* differs from the top-down builder (the
    algorithms are different); determinism and backing-independence are
    the contract: the same seed yields bit-identical hierarchies on RAM-
    and memmap-backed copies of the same graph.
    """
    if not 0 < beta_max < 1:
        raise ParameterError("beta_max must be in (0, 1)")
    if radius_constant <= 0:
        raise ParameterError("radius_constant must be positive")
    n = graph.num_vertices
    if n == 0:
        raise GraphError("cannot build a hierarchy on the empty graph")
    provider = resolve_provider(provider)
    root_seed = ensure_int_seed(seed)

    num_mid_levels = max(1, int(np.ceil(np.log2(max(n, 2)))))
    levels: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    scales: list[float] = [1.0]
    cur = graph
    # cum[v] = current quotient vertex holding original vertex v.
    cum = np.arange(n, dtype=np.int64)
    for lvl in range(1, num_mid_levels + 1):
        target_radius = float(2**lvl)
        if cur.num_edges:
            if lvl == num_mid_levels:
                # Top level: whole connected components, matching the
                # top-down builder's contract (cur is a quotient by now,
                # or the input itself — either way cc streams if memmap).
                labels_cur = connected_components(cur).astype(np.int64)
            else:
                beta = min(
                    beta_max,
                    radius_constant * np.log(max(n, 2)) / target_radius,
                )
                request = DecomposeRequest(
                    cur,
                    beta,
                    method=method,
                    seed=derive_seed(
                        root_seed, "chierarchy", provider.graph_key(cur)
                    ),
                    options=dict(options),
                )
                outcome = provider.decompose_batch(
                    [request], max_concurrent=max_concurrent
                )
                labels_cur = outcome[0].decomposition.labels.astype(np.int64)
            quotient = quotient_graph(cur, labels_cur)
            cum = labels_cur[cum]
            cur = quotient.graph
        levels.append(cum.copy())
        scales.append(target_radius)
    return Hierarchy(labels=levels, scale=scales)


def _refine(
    graph: CSRGraph,
    coarse: np.ndarray,
    beta: float,
    root_seed: int,
    provider,
    method: str,
    options: dict,
    *,
    max_concurrent: int | None = None,
) -> np.ndarray:
    """Decompose each coarse piece independently; return dense fine labels.

    Each piece's seed is ``derive_seed(root, "hierarchy", piece digest)`` —
    a pure function of the root seed and the piece's content, independent
    of the level it appears at, which is what makes repeated pieces cache
    hits in the provider's memo.  The level's non-trivial pieces go to the
    backend as one batch (concurrent backends overlap them); trivial
    pieces — a single vertex is already its own cluster — are assigned
    locally, costing no RPC.  Label allocation runs afterwards in piece
    order, so the fine labels are bit-identical to the serial per-piece
    loop regardless of how the batch was scheduled.
    """
    n = graph.num_vertices
    fine = np.full(n, -1, dtype=np.int64)
    requests: list[DecomposeRequest] = []
    batched: list[tuple[np.ndarray, int]] = []  # (members, request index)
    pieces: list[np.ndarray | None] = []  # members when trivial, else None
    for piece in range(int(coarse.max()) + 1):
        members = np.flatnonzero(coarse == piece).astype(VERTEX_DTYPE)
        if members.size <= 1:
            pieces.append(members)
            continue
        sub = induced_subgraph(graph, members)
        piece_seed = derive_seed(
            root_seed, "hierarchy", provider.graph_key(sub.graph)
        )
        batched.append((members, len(requests)))
        pieces.append(None)
        requests.append(
            DecomposeRequest(
                sub.graph, beta, method=method, seed=piece_seed,
                options=options,
            )
        )
    results = provider.decompose_batch(
        requests, max_concurrent=max_concurrent
    )
    batch_iter = iter(batched)
    next_label = 0
    for members in pieces:
        if members is not None:  # trivial piece: its own one-vertex cluster
            if members.size:
                fine[members] = next_label
                next_label += 1
            continue
        members, slot = next(batch_iter)
        decomposition = results[slot].decomposition
        fine[members] = decomposition.labels + next_label
        next_label += decomposition.num_pieces
    if np.any(fine < 0):
        raise GraphError("refinement missed vertices")
    return fine
