"""Distortion measurement for tree embeddings.

An embedding of graph metric ``d_G`` into tree metric ``d_T`` is
*non-contracting* when ``d_T ≥ d_G`` and has *expected distortion*
``E[d_T(u,v)] / d_G(u,v)``.  The optimal bound is ``O(log n)`` [16]; this
reproduction's simplified hierarchy targets the same shape with a larger
constant, which the benchmark records.

Because exact all-pairs distances are quadratic, measurement BFS's from a
vertex sample and evaluates all pairs (source, v) — exact for every pair it
reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.sequential import multi_source_bfs
from repro.embeddings.hst import HST
from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.rng.seeding import SeedLike, make_generator

__all__ = ["DistortionReport", "measure_distortion"]


@dataclass(frozen=True)
class DistortionReport:
    """Distortion statistics over the evaluated pairs."""

    num_pairs: int
    mean_ratio: float
    median_ratio: float
    max_ratio: float
    #: fraction of pairs where the tree metric contracted (d_T < d_G) — the
    #: hierarchy's radius bound is probabilistic, so this can be > 0; the
    #: benchmark tracks how small it stays.
    contraction_fraction: float


def measure_distortion(
    graph: CSRGraph,
    hst: HST,
    *,
    num_sources: int = 8,
    seed: SeedLike = None,
) -> DistortionReport:
    """Compare HST distances to exact BFS distances from sampled sources."""
    if num_sources < 1:
        raise ParameterError("num_sources must be >= 1")
    n = graph.num_vertices
    rng = make_generator(seed)
    sources = rng.choice(n, size=min(num_sources, n), replace=False)
    ratios: list[np.ndarray] = []
    contracted = 0
    total = 0
    for s in sources:
        dist = multi_source_bfs(graph, np.asarray([s], dtype=np.int64)).dist
        others = np.flatnonzero((dist > 0))
        if others.size == 0:
            continue
        d_g = dist[others].astype(np.float64)
        d_t = hst.distance(np.full(others.shape[0], s), others)
        finite = np.isfinite(d_t)
        d_g, d_t = d_g[finite], d_t[finite]
        ratios.append(d_t / d_g)
        contracted += int((d_t < d_g).sum())
        total += int(d_g.size)
    if not ratios:
        return DistortionReport(
            num_pairs=0,
            mean_ratio=1.0,
            median_ratio=1.0,
            max_ratio=1.0,
            contraction_fraction=0.0,
        )
    r = np.concatenate(ratios)
    return DistortionReport(
        num_pairs=int(r.size),
        mean_ratio=float(r.mean()),
        median_ratio=float(np.median(r)),
        max_ratio=float(r.max()),
        contraction_fraction=contracted / total if total else 0.0,
    )
