"""Content-addressed graph store backing the decomposition service.

Clients upload a graph **once**; the store computes its digest
(:func:`graph_digest` — SHA-256 over the defining CSR arrays), registers
the graph with the owning :class:`~repro.runtime.pool.DecompositionPool`
under that digest, and from then on every request references the digest
only.  Re-uploading identical bytes is a no-op (the store answers with
``known=True`` and registers nothing), which is what makes the digest a
safe cache-key component: one digest, one immutable graph, for the lifetime
of the server.
"""

from __future__ import annotations

import hashlib
import logging

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph

__all__ = ["graph_digest", "GraphStore"]

logger = logging.getLogger(__name__)


def graph_digest(graph: CSRGraph) -> str:
    """SHA-256 hex digest of a graph's identity.

    Covers the graph class name and every defining array from the
    ``csr_arrays()`` transport contract (name, dtype, shape, raw bytes), so
    a weighted graph never collides with its unweighted topology and any
    bit flip in ``indptr``/``indices``/``weights`` changes the digest.
    """
    if not isinstance(graph, CSRGraph):
        raise ParameterError(
            f"expected a CSRGraph, got {type(graph).__name__}"
        )
    sha = hashlib.sha256()
    sha.update(type(graph).__name__.encode("utf-8"))
    for name, arr in sorted(graph.csr_arrays().items()):
        arr = np.ascontiguousarray(arr)
        canonical = arr.astype(arr.dtype.newbyteorder("<"), copy=False)
        sha.update(name.encode("utf-8"))
        sha.update(canonical.dtype.str.encode("ascii"))
        sha.update(repr(tuple(arr.shape)).encode("ascii"))
        _hash_array_bytes(sha, canonical)
    return sha.hexdigest()


#: Digest streaming granularity: big enough to amortise call overhead,
#: small enough that hashing a memmap graph never faults in more than one
#: window of pages at a time.
_DIGEST_CHUNK_BYTES = 16 * 1024 * 1024


def _hash_array_bytes(sha, arr: np.ndarray) -> None:
    """Feed ``arr``'s bytes to ``sha`` in bounded windows.

    Equivalent to ``sha.update(arr.tobytes())`` but without materialising
    a second copy — on a memmap-backed graph the ``tobytes()`` copy alone
    would exceed the out-of-core RSS budget.
    """
    flat = arr.reshape(-1).view(np.uint8)
    for start in range(0, flat.nbytes, _DIGEST_CHUNK_BYTES):
        sha.update(flat[start : start + _DIGEST_CHUNK_BYTES])


class GraphStore:
    """Digest-keyed view over a pool's registered graphs.

    The store *owns the pool's key namespace*: every graph it admits is
    registered under its digest, and lookups go digest → parent-side graph
    object.  Mutations must be serialised by the caller (the server runs
    them on its single event loop).
    """

    def __init__(self, pool) -> None:
        self._pool = pool
        self._graphs: dict[str, CSRGraph] = {}
        self._uploads = 0
        self._dedup_hits = 0

    def put(
        self, graph: CSRGraph, *, digest: str | None = None
    ) -> tuple[str, bool]:
        """Admit ``graph``; returns ``(digest, known)``.

        ``known`` is true when identical content was already resident — the
        pool is not touched in that case.  ``digest`` lets a caller that
        already hashed the graph (the server does it off-loop) skip the
        second pass; it must be ``graph_digest(graph)``.
        """
        if digest is None:
            digest = graph_digest(graph)
        self._uploads += 1
        if digest in self._graphs:
            self._dedup_hits += 1
            return digest, True
        self._pool.register_graph(digest, graph)
        self._graphs[digest] = graph
        logger.debug(
            "registered graph %s (n=%d, m=%d, %d resident)",
            digest[:12], graph.num_vertices, graph.num_edges,
            len(self._graphs),
        )
        return digest, False

    def get(self, digest: str) -> CSRGraph:
        """The graph registered under ``digest``."""
        try:
            return self._graphs[digest]
        except KeyError:
            raise ParameterError(
                f"unknown graph digest {digest!r}; upload the graph first "
                f"({len(self._graphs)} graph(s) resident)"
            ) from None

    def discard(self, digest: str) -> None:
        """Drop a graph: unregister from the pool, unlink its segment."""
        self.get(digest)  # raises with the store's message when unknown
        del self._graphs[digest]
        self._pool.unregister_graph(digest)

    def __contains__(self, digest: str) -> bool:
        return digest in self._graphs

    def __len__(self) -> int:
        return len(self._graphs)

    @property
    def digests(self) -> tuple[str, ...]:
        """Resident digests, in admission order."""
        return tuple(self._graphs)

    def stats(self) -> dict[str, int]:
        return {
            "graphs": len(self._graphs),
            "uploads": self._uploads,
            "dedup_hits": self._dedup_hits,
            "graph_bytes": int(
                sum(
                    sum(a.nbytes for a in g.csr_arrays().values())
                    for g in self._graphs.values()
                )
            ),
        }

    def __repr__(self) -> str:
        return f"GraphStore({len(self._graphs)} graph(s))"
