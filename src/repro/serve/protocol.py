"""Wire protocol of the decomposition service — JSON frames over TCP.

Every message (either direction) is one *frame*: a 4-byte big-endian
unsigned length prefix followed by that many bytes of UTF-8 JSON.  Length
prefixing keeps the protocol trivial to implement in any language while
allowing graph uploads of hundreds of megabytes without line-buffering
pathologies; :data:`MAX_FRAME_BYTES` bounds what either side will accept.

Requests are objects with an ``"op"`` key (``hello``, ``upload``,
``decompose``, ``stats``, ``shutdown``); responses carry ``"ok": true``
plus op-specific fields, or ``"ok": false`` with ``"error"`` (the server
exception's type name) and ``"message"``.

NumPy arrays cross the wire as ``{"dtype", "shape", "data"}`` objects with
base64-encoded raw little-endian bytes (:func:`encode_array` /
:func:`decode_array`) — bit-exact, and ~3× denser than JSON number lists.

:func:`canonical_cache_key` defines the result-cache identity used by both
the memoizing cache and in-flight request coalescing; see DESIGN.md §7 for
the canonicalisation rules.
"""

from __future__ import annotations

import base64
import json
import struct
from collections.abc import Mapping

import numpy as np

from repro.errors import ServeError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frame_body",
    "parse_frame_length",
    "read_frame_blocking",
    "encode_array",
    "decode_array",
    "canonical_cache_key",
]

#: Bumped on wire-incompatible changes; exchanged in the ``hello`` op.
PROTOCOL_VERSION = 1

#: Upper bound either side accepts for one frame (512 MiB — a ~20M-edge
#: JSON upload).  Oversized frames fail fast instead of OOMing the peer.
MAX_FRAME_BYTES = 512 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def encode_frame(message: Mapping) -> bytes:
    """Serialise one message to its length-prefixed wire form."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ServeError(
            f"frame of {len(body)} bytes exceeds the protocol maximum "
            f"({MAX_FRAME_BYTES})"
        )
    return _LENGTH.pack(len(body)) + body


def decode_frame_body(body: bytes) -> dict:
    """Parse a frame body back into a message object."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"malformed frame body: {exc}") from None
    if not isinstance(message, dict):
        raise ServeError(
            f"frame body must be a JSON object, got {type(message).__name__}"
        )
    return message


def parse_frame_length(header: bytes) -> int:
    """Validate a 4-byte length prefix, returning the body size."""
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServeError(
            f"peer announced a {length}-byte frame, exceeding the protocol "
            f"maximum ({MAX_FRAME_BYTES})"
        )
    return length


def read_frame_blocking(sock) -> dict | None:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    length = parse_frame_length(header)
    body = _recv_exactly(sock, length)
    if body is None:
        raise ServeError("connection closed mid-frame")
    return decode_frame_body(body)


def _recv_exactly(sock, count: int) -> bytes | None:
    """``count`` bytes from ``sock``, ``None`` on EOF at a frame boundary."""
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            if not chunks:
                return None
            raise ServeError("connection closed mid-frame")
        chunks.extend(chunk)
    return bytes(chunks)


# ---------------------------------------------------------------------------
# array codec
# ---------------------------------------------------------------------------
def encode_array(arr: np.ndarray) -> dict:
    """Encode an array as a JSON-safe object, bit-exactly."""
    arr = np.ascontiguousarray(arr)
    # Little-endian on the wire; '<' covers every platform this runs on.
    dtype = arr.dtype.newbyteorder("<")
    return {
        "dtype": dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.astype(dtype, copy=False).tobytes())
        .decode("ascii"),
    }


def decode_array(obj: Mapping) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    try:
        dtype = np.dtype(obj["dtype"])
        shape = tuple(int(s) for s in obj["shape"])
        raw = base64.b64decode(obj["data"], validate=True)
        arr = np.frombuffer(raw, dtype=dtype).reshape(shape)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"malformed array payload: {exc}") from None
    return arr


# ---------------------------------------------------------------------------
# cache identity
# ---------------------------------------------------------------------------
def canonical_cache_key(
    graph_digest: str,
    beta: float,
    method: str,
    seed: int,
    bound_options: Mapping[str, object],
    *,
    validate: bool = False,
    op: str = "decompose",
    extra: Mapping[str, object] | None = None,
) -> tuple:
    """The hashable identity of one decomposition-service request.

    Two requests share a cache entry (and coalesce while in flight) iff
    their keys are equal.  Canonicalisation applied by the server before
    calling this: ``method`` is the registry name after ``"auto"``
    resolution, and ``bound_options`` is ``MethodSpec.bind(options)`` —
    defaults *not* filled in, pinned values merged — so ``{}`` and an
    explicitly-passed default value are distinct keys (both are correct;
    they just memoize separately), while alias methods that pin options
    still key on their own method name.  ``validate`` joins the key
    because a validated run's summary carries the invariant report; the
    assignment arrays are identical either way.

    ``op`` namespaces the key per operation (``"decompose"``, or an
    application op such as ``"spanner"``/``"lowstretch_tree"``/
    ``"hierarchy"``), so a spanner and a raw decomposition of the same
    configuration never collide in the shared cache.  ``extra`` carries
    op-specific parameters that join the identity (e.g. the AKPW
    ``max_levels`` or the hierarchy ``beta_max``), canonicalised like the
    options mapping.
    """
    return (
        str(op),
        str(graph_digest),
        float(beta),
        str(method),
        int(seed),
        tuple(sorted((str(k), v) for k, v in bound_options.items())),
        bool(validate),
        tuple(sorted((str(k), v) for k, v in (extra or {}).items())),
    )
