"""Wire protocol of the decomposition service — framed JSON + binary arrays.

Every message (either direction) is one *frame*: a 4-byte big-endian
unsigned length prefix followed by that many bytes of body.  Length
prefixing keeps the protocol trivial to implement in any language while
allowing graph uploads of hundreds of megabytes without line-buffering
pathologies; :data:`MAX_FRAME_BYTES` bounds what either side will accept.

Two body encodings coexist, distinguished per frame by a 4-byte magic:

**v1** — the body is UTF-8 JSON.  NumPy arrays travel as
``{"dtype", "shape", "data"}`` objects with base64-encoded raw
little-endian bytes (:func:`encode_array` / :func:`decode_array`) —
bit-exact, and ~3× denser than JSON number lists.

**v2** — the body is ``b"RPB2" | u32 header_len | header JSON | tail``:
control fields stay JSON in the header, but every array is hoisted out
into the binary *tail* and replaced in the header by an
``{"__nd__": [offset, nbytes], "dtype", "shape"}`` descriptor.  Offsets
are 8-byte aligned and relative to the tail start, so the receiver
materialises each array as an ``np.frombuffer`` view over the frame body —
zero copies, zero base64 (~25% smaller than v1 for array-heavy frames,
much smaller for uploads, which also downcast index arrays to the
narrowest safe integer dtype; the receiving constructor restores
``int64``, so content digests are unchanged).

A frame body starting with ``{`` is v1 JSON; one starting with
:data:`V2_MAGIC` is v2.  The sniff (:func:`frame_protocol`) makes servers
codec-agnostic per frame — a connection can interleave both — while
clients pick their encoding after the ``hello`` exchange advertises the
peer's :data:`PROTOCOL_VERSION` (v1-only clients never see a v2 frame
because responses are encoded in the codec their request arrived in).

Requests are objects with an ``"op"`` key (``hello``, ``upload``,
``decompose``, ``stats``, ``shutdown``, …) and an optional ``"id"`` the
responder echoes back — the pipelining handle that lets
:class:`~repro.serve.aio_client.AsyncServeClient` keep many requests in
flight per connection.  Responses carry ``"ok": true`` plus op-specific
fields, or ``"ok": false`` with ``"error"`` (the server exception's type
name) and ``"message"``.

:func:`canonical_cache_key` defines the result-cache identity used by both
the memoizing cache and in-flight request coalescing; see DESIGN.md §7/§9
for the canonicalisation rules and the v2 frame layout diagram.
"""

from __future__ import annotations

import base64
import json
import struct
from collections.abc import Mapping

import numpy as np

from repro.errors import ServeError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "V2_MAGIC",
    "encode_frame",
    "decode_frame_body",
    "decode_frame_payload",
    "peek_frame_fields",
    "restamp_frame",
    "frame_protocol",
    "parse_frame_length",
    "read_frame_blocking",
    "encode_array",
    "decode_array",
    "as_array",
    "compact_arrays",
    "canonical_cache_key",
]

#: Highest protocol generation this build speaks; exchanged in ``hello``.
#: v1 = JSON frames with base64 arrays, v2 = JSON header + binary tail.
PROTOCOL_VERSION = 2

#: Magic prefix of a v2 frame body (not a valid JSON start, so v1 and v2
#: frames are distinguishable without connection state).
V2_MAGIC = b"RPB2"

#: Upper bound either side accepts for one frame (512 MiB — a ~20M-edge
#: JSON upload).  Oversized frames fail fast instead of OOMing the peer.
MAX_FRAME_BYTES = 512 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: v2 tail buffers start at multiples of this, so ``np.frombuffer`` views
#: are aligned for every dtype the library ships.
_ALIGN = 8


def _check_frame_size(nbytes: int) -> None:
    if nbytes > MAX_FRAME_BYTES:
        raise ServeError(
            f"frame of {nbytes} bytes exceeds the protocol maximum "
            f"({MAX_FRAME_BYTES}); ship large graphs through the chunked "
            "upload ops (upload_begin/upload_chunk/upload_commit — "
            "ServeClient.upload_chunked) instead of one frame"
        )


def encode_frame(message: Mapping, protocol: int = 1) -> bytes:
    """Serialise one message to its length-prefixed wire form.

    ``message`` may contain :class:`numpy.ndarray` values anywhere in its
    dict/list tree; ``protocol`` selects how they travel — base64 objects
    inside the JSON (v1) or raw buffers in the binary tail (v2).  The
    message itself is never mutated, so cached payload dicts holding
    arrays can be encoded for v1 and v2 peers alike.
    """
    if protocol == 1:
        body = json.dumps(
            _jsonify(message), separators=(",", ":")
        ).encode("utf-8")
        _check_frame_size(len(body))
        return _LENGTH.pack(len(body)) + body
    if protocol != 2:
        raise ServeError(f"unknown protocol generation {protocol!r}")
    tail: list[bytes] = []
    offset = 0

    def _hoist(arr: np.ndarray) -> dict:
        nonlocal offset
        arr = np.ascontiguousarray(arr)
        dtype = arr.dtype.newbyteorder("<")
        raw = arr.astype(dtype, copy=False).tobytes()
        pad = (-offset) % _ALIGN
        if pad:
            tail.append(b"\x00" * pad)
            offset += pad
        descriptor = {
            "__nd__": [offset, len(raw)],
            "dtype": dtype.str,
            "shape": list(arr.shape),
        }
        tail.append(raw)
        offset += len(raw)
        return descriptor

    header = json.dumps(
        _transform(message, _hoist), separators=(",", ":")
    ).encode("utf-8")
    body_len = len(V2_MAGIC) + _LENGTH.size + len(header) + offset
    _check_frame_size(body_len)
    return b"".join(
        (_LENGTH.pack(body_len), V2_MAGIC, _LENGTH.pack(len(header)),
         header, *tail)
    )


def frame_protocol(body: bytes) -> int:
    """The protocol generation of a frame body (sniffed, stateless)."""
    return 2 if body[: len(V2_MAGIC)] == V2_MAGIC else 1


def decode_frame_body(body: bytes) -> dict:
    """Parse a v1 (pure JSON) frame body back into a message object."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"malformed frame body: {exc}") from None
    if not isinstance(message, dict):
        raise ServeError(
            f"frame body must be a JSON object, got {type(message).__name__}"
        )
    return message


def decode_frame_payload(body: bytes) -> dict:
    """Parse a frame body of either generation into a message object.

    v1 bodies decode exactly like :func:`decode_frame_body` (base64 array
    objects stay dicts — resolve them with :func:`as_array`).  v2 bodies
    decode their header and materialise every ``__nd__`` descriptor as a
    read-only ``np.frombuffer`` view over ``body`` — zero-copy; the frame
    bytes stay alive as the arrays' base buffer.
    """
    if frame_protocol(body) == 1:
        return decode_frame_body(body)
    header, tail = _split_v2(body)

    def _materialise(descriptor: Mapping) -> np.ndarray:
        try:
            offset, nbytes = (int(v) for v in descriptor["__nd__"])
            dtype = np.dtype(descriptor["dtype"])
            shape = tuple(int(s) for s in descriptor["shape"])
            if offset < 0 or offset + nbytes > len(tail):
                raise ValueError(
                    f"buffer [{offset}, {offset + nbytes}) outside the "
                    f"{len(tail)}-byte tail"
                )
            return np.frombuffer(
                tail[offset : offset + nbytes], dtype=dtype
            ).reshape(shape)
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed array payload: {exc}") from None

    return _resolve(header, _materialise)


def _split_v2(body: bytes) -> tuple[dict, memoryview]:
    """(control fields, binary tail) of a v2 body.

    The header JSON is parsed but ``__nd__`` descriptors stay plain
    dicts and the tail is returned as an untouched view — the cheap half
    of a v2 decode, shared by :func:`decode_frame_payload` (which then
    materialises arrays) and the relay helpers (which never do).
    """
    fixed = len(V2_MAGIC) + _LENGTH.size
    if len(body) < fixed:
        raise ServeError("truncated v2 frame: missing header length")
    (header_len,) = _LENGTH.unpack_from(body, len(V2_MAGIC))
    tail_start = fixed + header_len
    if tail_start > len(body):
        raise ServeError(
            f"malformed v2 frame: header length {header_len} exceeds the "
            f"body ({len(body)} bytes)"
        )
    header = decode_frame_body(body[fixed:tail_start])
    return header, memoryview(body)[tail_start:]


def peek_frame_fields(body: bytes) -> dict:
    """A frame body's control fields, with arrays left unmaterialised.

    For v2 bodies only the JSON header is parsed — ``__nd__`` descriptors
    stay plain dicts and the binary tail is never touched.  v1 bodies are
    pure JSON, so the parse is the same as :func:`decode_frame_body`.
    Forwarding layers use this to read routing fields (``id``, ``ok``,
    ``op``) off a frame they intend to relay verbatim.
    """
    if frame_protocol(body) == 1:
        return decode_frame_body(body)
    return _split_v2(body)[0]


def restamp_frame(body: bytes, updates: Mapping) -> bytes:
    """Re-frame a received body with top-level control fields changed.

    Returns a complete wire frame (length prefix included) in the same
    generation ``body`` arrived in.  For v2, only the JSON header is
    rewritten; the binary tail is spliced through untouched — array
    descriptors hold *tail-relative* offsets, so a header of different
    length cannot invalidate them.  An update value of ``None`` removes
    the field.  This is the router's zero-decode relay path: retag a
    shard response (``id``, ``shard``) without materialising or
    re-encoding its arrays.
    """
    if frame_protocol(body) == 1:
        message = decode_frame_body(body)
        _apply_updates(message, updates)
        out = json.dumps(message, separators=(",", ":")).encode("utf-8")
        _check_frame_size(len(out))
        return _LENGTH.pack(len(out)) + out
    header, tail = _split_v2(body)
    _apply_updates(header, updates)
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    body_len = len(V2_MAGIC) + _LENGTH.size + len(header_bytes) + len(tail)
    _check_frame_size(body_len)
    return b"".join(
        (_LENGTH.pack(body_len), V2_MAGIC, _LENGTH.pack(len(header_bytes)),
         header_bytes, tail)
    )


def _apply_updates(message: dict, updates: Mapping) -> None:
    for key, value in updates.items():
        if value is None:
            message.pop(key, None)
        else:
            message[key] = value


def parse_frame_length(header: bytes) -> int:
    """Validate a 4-byte length prefix, returning the body size."""
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServeError(
            f"peer announced a {length}-byte frame, exceeding the protocol "
            f"maximum ({MAX_FRAME_BYTES}); large graphs belong in the "
            "chunked upload ops (upload_begin/upload_chunk/upload_commit)"
        )
    return length


def read_frame_blocking(sock) -> dict | None:
    """Read one frame from a blocking socket; ``None`` on clean EOF.

    Accepts both generations (the body is sniffed), so a negotiating
    client can read the v1 ``hello`` response and every v2 frame after it
    with the same call.
    """
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    length = parse_frame_length(header)
    body = _recv_exactly(sock, length)
    if body is None:
        raise ServeError("connection closed mid-frame")
    return decode_frame_payload(body)


def _recv_exactly(sock, count: int) -> bytes | None:
    """``count`` bytes from ``sock``, ``None`` on EOF at a frame boundary."""
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            if not chunks:
                return None
            raise ServeError("connection closed mid-frame")
        chunks.extend(chunk)
    return bytes(chunks)


# ---------------------------------------------------------------------------
# message-tree transforms
# ---------------------------------------------------------------------------
def _transform(node, hoist):
    """Copy a message tree, replacing every ndarray via ``hoist``."""
    if isinstance(node, np.ndarray):
        return hoist(node)
    if isinstance(node, Mapping):
        return {key: _transform(value, hoist) for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        return [_transform(item, hoist) for item in node]
    return node


def _jsonify(node):
    """v1 transform: ndarrays become base64 array objects."""
    return _transform(node, encode_array)


def _resolve(node, materialise):
    """Decode transform: ``__nd__`` descriptors become array views."""
    if isinstance(node, dict):
        if "__nd__" in node:
            return materialise(node)
        return {key: _resolve(value, materialise) for key, value in node.items()}
    if isinstance(node, list):
        return [_resolve(item, materialise) for item in node]
    return node


# ---------------------------------------------------------------------------
# array codec
# ---------------------------------------------------------------------------
def encode_array(arr: np.ndarray) -> dict:
    """Encode an array as a JSON-safe object, bit-exactly (v1 codec)."""
    arr = np.ascontiguousarray(arr)
    # Little-endian on the wire; '<' covers every platform this runs on.
    dtype = arr.dtype.newbyteorder("<")
    return {
        "dtype": dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.astype(dtype, copy=False).tobytes())
        .decode("ascii"),
    }


def decode_array(obj: Mapping) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    try:
        dtype = np.dtype(obj["dtype"])
        shape = tuple(int(s) for s in obj["shape"])
        raw = base64.b64decode(obj["data"], validate=True)
        arr = np.frombuffer(raw, dtype=dtype).reshape(shape)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"malformed array payload: {exc}") from None
    return arr


def as_array(obj) -> np.ndarray:
    """An array from either codec's decoded form.

    v2 decoding already yields ndarrays; v1 leaves base64 objects.  Client
    result builders call this so one code path serves both generations.
    """
    if isinstance(obj, np.ndarray):
        return obj
    if isinstance(obj, Mapping):
        return decode_array(obj)
    raise ServeError(
        f"expected an array payload, got {type(obj).__name__}"
    )


def compact_arrays(arrays: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Downcast integer arrays to the narrowest dtype holding their values.

    Transport-only: an upload receiver rebuilds the graph through its
    constructor, which restores the canonical ``int64`` vertex dtype, so
    the content digest is unchanged while v2 index buffers shrink 2–4×.
    Floating arrays (weights) pass through untouched — bit-exactness there
    is the conformance contract.
    """
    out: dict[str, np.ndarray] = {}
    for name, arr in arrays.items():
        if arr.dtype.kind == "i" and arr.dtype.itemsize > 2:
            peak = int(arr.max()) if arr.size else 0
            low = int(arr.min()) if arr.size else 0
            for candidate in (np.int16, np.int32):
                info = np.iinfo(candidate)
                if info.min <= low and peak <= info.max:
                    arr = arr.astype(candidate)
                    break
        out[name] = arr
    return out


# ---------------------------------------------------------------------------
# cache identity
# ---------------------------------------------------------------------------
def canonical_cache_key(
    graph_digest: str,
    beta: float,
    method: str,
    seed: int,
    bound_options: Mapping[str, object],
    *,
    validate: bool = False,
    op: str = "decompose",
    extra: Mapping[str, object] | None = None,
) -> tuple:
    """The hashable identity of one decomposition-service request.

    Two requests share a cache entry (and coalesce while in flight) iff
    their keys are equal.  Canonicalisation applied by the server before
    calling this: ``method`` is the registry name after ``"auto"``
    resolution, and ``bound_options`` is ``MethodSpec.bind(options)`` —
    defaults *not* filled in, pinned values merged — so ``{}`` and an
    explicitly-passed default value are distinct keys (both are correct;
    they just memoize separately), while alias methods that pin options
    still key on their own method name.  ``validate`` joins the key
    because a validated run's summary carries the invariant report; the
    assignment arrays are identical either way.

    ``op`` namespaces the key per operation (``"decompose"``, or an
    application op such as ``"spanner"``/``"lowstretch_tree"``/
    ``"hierarchy"``), so a spanner and a raw decomposition of the same
    configuration never collide in the shared cache.  ``extra`` carries
    op-specific parameters that join the identity (e.g. the AKPW
    ``max_levels`` or the hierarchy ``beta_max``), canonicalised like the
    options mapping.
    """
    return (
        str(op),
        str(graph_digest),
        float(beta),
        str(method),
        int(seed),
        tuple(sorted((str(k), v) for k, v in bound_options.items())),
        bool(validate),
        tuple(sorted((str(k), v) for k, v in (extra or {}).items())),
    )
