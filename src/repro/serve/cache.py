"""Memoizing result cache for the decomposition service.

Decompositions in this library are derandomized: the output is a pure
function of ``(graph bytes, beta, method, seed, options)`` — the
conformance suite (``tests/test_conformance.py``) pins bit-identical
results across executors, which is exactly the license a memoizing cache
needs.  :class:`ResultCache` is a byte-budgeted LRU over the canonical
request keys of :func:`repro.serve.protocol.canonical_cache_key`; a warm
hit returns the very bytes a cold miss computed (digest-checked by
``tests/test_serve.py``).

The cache is value-agnostic (entries are opaque objects with a declared
byte size) and thread-safe, so it can front any deterministic computation,
not just the server's slim decomposition payloads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

from repro.errors import ParameterError

__all__ = ["ResultCache"]

#: Default byte budget: enough for ~2000 decompositions of a 1M-vertex
#: graph's two int64 result arrays — generous for a laptop, bounded.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class ResultCache:
    """Byte-budgeted LRU cache with hit/miss/eviction counters.

    Entries are inserted with an explicit ``nbytes`` accounting size;
    inserting past the budget evicts least-recently-used entries until the
    new entry fits.  An entry larger than the whole budget is *rejected*
    (counted in ``oversize``) rather than flushing the cache for one
    un-keepable value.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes < 0:
            raise ParameterError(
                f"max_bytes must be >= 0, got {max_bytes}"
            )
        self._max_bytes = int(max_bytes)
        self._entries: OrderedDict[Hashable, tuple[object, int]] = (
            OrderedDict()
        )
        self._bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._oversize = 0

    def get(self, key: Hashable) -> object | None:
        """The cached value for ``key``, or ``None`` (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def put(self, key: Hashable, value: object, nbytes: int) -> bool:
        """Insert ``value`` under ``key``; returns whether it was kept."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ParameterError(f"nbytes must be >= 0, got {nbytes}")
        with self._lock:
            if nbytes > self._max_bytes:
                self._oversize += 1
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            while self._bytes + nbytes > self._max_bytes:
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self._bytes -= evicted_bytes
                self._evictions += 1
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            return True

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self._max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "oversize": self._oversize,
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ResultCache({stats['entries']} entries, {stats['bytes']}/"
            f"{stats['max_bytes']} bytes, {stats['hits']} hits)"
        )
