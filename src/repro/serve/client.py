"""Blocking client for the decomposition service.

:class:`ServeClient` speaks the frame protocol of
:mod:`repro.serve.protocol` over one TCP connection.  The intended calling
sequence mirrors the server's content-addressed design: upload a graph
once (:meth:`upload` / :meth:`upload_file`), keep the digest, then issue
as many :meth:`decompose` calls as the workload needs — the server
answers repeats from its memoizing cache and coalesces concurrent
duplicates.  The application ops run whole workloads server-side with the
same economics: :meth:`spanner`, :meth:`lowstretch_tree` and
:meth:`hierarchy` return finished application outputs (edge sets, parent
arrays, label stacks) and hit the same cache when repeated.

The client is deliberately synchronous: downstream numerical code (solver
loops, benchmark harnesses) is synchronous, and one connection per thread
is the natural unit.  A lock serialises frames so a client instance shared
across threads still interleaves whole requests, never partial frames.
"""

from __future__ import annotations

import hashlib
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ParameterError, ServeError
from repro.graphs.csr import CSRGraph
from repro.graphs.io import to_json
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    as_array,
    compact_arrays,
    encode_frame,
    read_frame_blocking,
)
from repro.telemetry import trace as _trace

__all__ = [
    "ServeClient",
    "ServeResult",
    "ServeSpannerResult",
    "ServeTreeResult",
    "ServeHierarchyResult",
]

#: Classes :meth:`ServeClient.upload_graph` ships as binary arrays — the
#: server's whitelist; anything else falls back to the JSON text path.
_BINARY_UPLOAD_CLASSES = ("CSRGraph", "WeightedCSRGraph")


def _arrays_digest(*arrays: np.ndarray) -> str:
    """SHA-256 over arrays — the cross-provider bit-identity witness."""
    sha = hashlib.sha256()
    for arr in arrays:
        sha.update(np.ascontiguousarray(arr).tobytes())
    return sha.hexdigest()


@dataclass(frozen=True)
class ServeResult:
    """One decomposition as served: assignment arrays plus provenance."""

    digest: str
    kind: str
    cached: bool
    coalesced: bool
    summary: dict
    center: np.ndarray
    per_vertex: np.ndarray

    @property
    def hops(self) -> np.ndarray:
        """BFS hop distances (unweighted results only)."""
        if self.kind != "unweighted":
            raise ParameterError(
                f"hops is an unweighted-result field; this result is "
                f"{self.kind}"
            )
        return self.per_vertex

    @property
    def radius(self) -> np.ndarray:
        """Shifted-distance radii (weighted results only)."""
        if self.kind != "weighted":
            raise ParameterError(
                f"radius is a weighted-result field; this result is "
                f"{self.kind}"
            )
        return self.per_vertex

    @property
    def num_pieces(self) -> int:
        return int(float(self.summary["num_pieces"]))

    def result_digest(self) -> str:
        """SHA-256 over the assignment arrays — the bit-identity witness."""
        return _arrays_digest(self.center, self.per_vertex)


@dataclass(frozen=True)
class ServeSpannerResult:
    """A spanner built server-side: edge set plus construction counters."""

    digest: str
    cached: bool
    coalesced: bool
    #: canonical ``(E, 2)`` edge array of the spanner subgraph.
    edges: np.ndarray
    stretch_bound: int
    num_tree_edges: int
    num_bridge_edges: int
    num_edges: int
    summary: dict

    def result_digest(self) -> str:
        """SHA-256 over the canonical edge array."""
        return _arrays_digest(self.edges)


@dataclass(frozen=True)
class ServeTreeResult:
    """An AKPW low-stretch spanning forest built server-side."""

    digest: str
    cached: bool
    coalesced: bool
    #: parent array of the rooted forest (−1 at roots).
    parent: np.ndarray
    #: (supernodes, edges) of the contracted graph entering each level.
    level_sizes: list[tuple[int, int]]
    level_betas: list[float]
    num_levels: int

    def result_digest(self) -> str:
        """SHA-256 over the parent array."""
        return _arrays_digest(self.parent)


@dataclass(frozen=True)
class ServeHierarchyResult:
    """A laminar hierarchy built server-side (finest level first)."""

    digest: str
    cached: bool
    coalesced: bool
    #: per-level dense piece labels, level 0 (singletons) first.
    labels: list[np.ndarray]
    scale: list[float]
    num_levels: int

    def result_digest(self) -> str:
        """SHA-256 over every level's label array."""
        return _arrays_digest(*self.labels)


# ---------------------------------------------------------------------------
# response → result builders (shared with AsyncServeClient)
# ---------------------------------------------------------------------------
def check_response(response: dict | None) -> dict:
    """Raise :class:`ServeError` for closed streams and ``ok: false``."""
    if response is None:
        raise ServeError("server closed the connection")
    if not response.get("ok"):
        raise ServeError(
            f"{response.get('error', 'Error')}: "
            f"{response.get('message', 'unknown server error')}"
        )
    return response


def result_from_response(response: dict) -> ServeResult:
    return ServeResult(
        digest=response["digest"],
        kind=response["kind"],
        cached=bool(response["cached"]),
        coalesced=bool(response["coalesced"]),
        summary=dict(response["summary"]),
        center=as_array(response["center"]),
        per_vertex=as_array(response["per_vertex"]),
    )


def spanner_from_response(response: dict) -> ServeSpannerResult:
    return ServeSpannerResult(
        digest=response["digest"],
        cached=bool(response["cached"]),
        coalesced=bool(response["coalesced"]),
        edges=as_array(response["edges"]),
        stretch_bound=int(response["stretch_bound"]),
        num_tree_edges=int(response["num_tree_edges"]),
        num_bridge_edges=int(response["num_bridge_edges"]),
        num_edges=int(response["num_edges"]),
        summary=dict(response["summary"]),
    )


def tree_from_response(response: dict) -> ServeTreeResult:
    return ServeTreeResult(
        digest=response["digest"],
        cached=bool(response["cached"]),
        coalesced=bool(response["coalesced"]),
        parent=as_array(response["parent"]),
        level_sizes=[
            (int(a), int(b)) for a, b in response["level_sizes"]
        ],
        level_betas=[float(b) for b in response["level_betas"]],
        num_levels=int(response["num_levels"]),
    )


def hierarchy_from_response(response: dict) -> ServeHierarchyResult:
    return ServeHierarchyResult(
        digest=response["digest"],
        cached=bool(response["cached"]),
        coalesced=bool(response["coalesced"]),
        labels=[as_array(level) for level in response["labels"]],
        scale=[float(s) for s in response["scale"]],
        num_levels=int(response["num_levels"]),
    )


def negotiated_protocol(hello: dict, max_protocol: int) -> int:
    """The protocol generation to speak after a ``hello`` exchange.

    The highest generation both sides support: the server advertises its
    ceiling in ``protocol`` (absent/1 for pre-v2 servers), the client caps
    with ``max_protocol``.  Generation 1 is the floor — every server
    speaks it.
    """
    server_protocol = hello.get("protocol", 1)
    if not isinstance(server_protocol, int):
        server_protocol = 1
    return max(1, min(int(max_protocol), server_protocol))


def graph_upload_message(graph: CSRGraph, protocol: int) -> dict:
    """The upload request for ``graph`` at ``protocol``.

    Generation 2 ships the raw CSR arrays (compact transport dtypes —
    digest-neutral, the server constructor restores canonical dtypes);
    generation 1 falls back to the JSON text payload.
    """
    if not isinstance(graph, CSRGraph):
        raise ParameterError(
            f"expected a CSRGraph, got {type(graph).__name__}"
        )
    cls_name = type(graph).__name__
    if protocol >= 2 and cls_name in _BINARY_UPLOAD_CLASSES:
        return {
            "op": "upload",
            "class": cls_name,
            "arrays": compact_arrays(graph.csr_arrays()),
        }
    return {"op": "upload", "format": "json", "payload": to_json(graph)}


class ServeClient:
    """Synchronous connection to a :class:`DecompositionServer`.

    Parameters
    ----------
    host, port:
        Server address, e.g. ``ServeClient(*server.address)``.
    timeout:
        Socket timeout in seconds for connect and for each response.
    connect_window:
        Total seconds to keep retrying a refused connect with exponential
        backoff (50 ms doubling to 800 ms) before giving up — makes the
        startup race against a just-spawned server benign.  ``0`` means a
        single attempt (used by tests that poll for a server's death).
    max_protocol:
        Ceiling on the negotiated protocol generation; ``1`` forces the
        base64-JSON wire format even against a v2 server.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 60.0,
        connect_window: float = 2.0,
        max_protocol: int = PROTOCOL_VERSION,
    ) -> None:
        if not 1 <= int(max_protocol) <= PROTOCOL_VERSION:
            raise ParameterError(
                f"max_protocol must be in [1, {PROTOCOL_VERSION}], "
                f"got {max_protocol!r}"
            )
        self._max_protocol = int(max_protocol)
        #: negotiated lazily from the first exchange; ``None`` = not yet.
        self._protocol: int | None = None
        self._sock: socket.socket | None = self._connect(
            host, port, timeout, connect_window
        )
        #: the peer actually connected to — lets callers (e.g. a provider
        #: batching through a second, pipelined client) re-dial the same
        #: endpoint after `"0"`-port resolution.
        self._address: tuple[str, int] = self._sock.getpeername()[:2]
        self._lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` of the connected server."""
        return self._address

    @staticmethod
    def _connect(
        host: str, port: int, timeout: float, window: float
    ) -> socket.socket:
        deadline = time.monotonic() + max(0.0, float(window))
        delay = 0.05
        while True:
            try:
                return socket.create_connection((host, port), timeout=timeout)
            except OSError as exc:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServeError(
                        f"cannot connect to decomposition server at "
                        f"{host}:{port}: {exc}"
                    ) from None
                time.sleep(min(delay, remaining))
                delay = min(delay * 2, 0.8)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    @property
    def protocol(self) -> int | None:
        """Negotiated protocol generation (``None`` before first call)."""
        return self._protocol

    def _roundtrip_locked(self, message: dict, protocol: int) -> dict | None:
        """One request/response exchange; caller holds the lock."""
        try:
            self._sock.sendall(encode_frame(message, protocol))
            return read_frame_blocking(self._sock)
        except (OSError, ServeError) as exc:
            # A timeout or mid-frame failure leaves the stream
            # desynchronized (sequential calls carry no request ids) — a
            # later response could answer the wrong request.  The
            # connection is unusable; close it.
            sock, self._sock = self._sock, None
            try:
                sock.close()
            except OSError:
                pass
            raise ServeError(
                f"connection to server lost: {exc}"
            ) from None

    def _negotiate_locked(self) -> dict | None:
        """First exchange on the connection: a v1 ``hello`` that fixes the
        protocol generation for everything after it.  Returns the hello
        response so an explicit :meth:`hello` costs one round trip."""
        response = self._roundtrip_locked({"op": "hello"}, 1)
        if response is not None and response.get("ok"):
            self._protocol = negotiated_protocol(
                response, self._max_protocol
            )
        else:
            self._protocol = 1
        return response

    def _call(self, message: dict) -> dict:
        if not _trace.tracing_active():
            return self._call_untraced(message)
        # Tracing is on: wrap the round trip in a client root span, ship
        # its context in the request header, and re-emit whatever spans
        # the far side (worker → server → router relay) sent back, so the
        # local sink ends up holding the complete cross-process tree.
        with _trace.span(
            f"client.{message.get('op', '?')}", op=message.get("op")
        ) as client_span:
            ctx = client_span.context()
            if ctx is not None:
                message = {**message, "trace": ctx}
            response = self._call_untraced(message)
            remote = response.pop("spans", None)
            if remote:
                _trace.emit_spans(remote)
            if isinstance(response.get("cached"), bool):
                client_span.annotate(cached=response["cached"])
            return response

    def _call_untraced(self, message: dict) -> dict:
        with self._lock:
            if self._sock is None:
                raise ServeError("client is closed")
            if self._protocol is None:
                response = self._negotiate_locked()
                if message.get("op") == "hello" and "trace" not in message:
                    return check_response(response)
                check_response(response)
            response = self._roundtrip_locked(message, self._protocol)
        return check_response(response)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def hello(self) -> dict:
        """Handshake: server identity, protocol, method registry dump."""
        return self._call({"op": "hello"})

    def upload(self, graph: CSRGraph) -> str:
        """Upload a graph object; returns its digest.

        Uses the negotiated wire format: raw binary CSR arrays against a
        v2 server (~33% smaller than base64, zero-copy server-side), JSON
        text against a v1 server.  The digest is format-independent.
        """
        return self.upload_graph(graph)["digest"]

    def upload_graph(self, graph: CSRGraph) -> dict:
        """Upload a graph object; returns the full server response
        (``digest``, ``known``, ``num_vertices``, ``num_edges``,
        ``weighted``)."""
        if not isinstance(graph, CSRGraph):
            raise ParameterError(
                f"expected a CSRGraph, got {type(graph).__name__}"
            )
        if self._protocol is None:
            self.hello()  # negotiate before choosing the upload format
        return self._call(graph_upload_message(graph, self._protocol))

    def upload_chunked(
        self,
        graph: CSRGraph,
        *,
        chunk_bytes: int | None = None,
    ) -> dict:
        """Upload a graph through the chunked ops; returns the commit
        response (``digest``, ``known``, ``num_vertices``, …).

        This is the path for graphs whose arrays exceed the one-frame
        protocol ceiling (``MAX_FRAME_BYTES``): ``upload_begin`` declares
        the manifest (canonical array dtypes, payload SHA-256, the graph's
        content digest), ``upload_chunk`` ships raw byte slices, and
        ``upload_commit`` seals the transfer after the server re-derives
        both hashes.  The sequence is resumable — a rerun after a dropped
        connection continues from the server's accepted offset — and a
        graph already resident under its digest costs one round trip
        (``known: true``).  Works on memmap-backed graphs without ever
        materialising the arrays in RAM.
        """
        if not isinstance(graph, CSRGraph):
            raise ParameterError(
                f"expected a CSRGraph, got {type(graph).__name__}"
            )
        from repro.serve.store import graph_digest

        cls_name = type(graph).__name__
        if cls_name not in _BINARY_UPLOAD_CLASSES:
            raise ParameterError(
                f"chunked upload supports {list(_BINARY_UPLOAD_CLASSES)}, "
                f"got {cls_name}"
            )
        arrays = graph.csr_arrays()
        flats: list[np.ndarray] = []
        manifest: list[dict] = []
        sha = hashlib.sha256()
        window = 16 * 1024 * 1024
        for name, arr in arrays.items():
            canonical = np.ascontiguousarray(arr)
            if canonical.dtype.byteorder == ">":  # pragma: no cover
                canonical = canonical.astype(
                    canonical.dtype.newbyteorder("<")
                )
            flat = canonical.reshape(-1).view(np.uint8)
            for start in range(0, flat.nbytes, window):
                sha.update(flat[start : start + window])
            flats.append(flat)
            manifest.append(
                {
                    "name": name,
                    "dtype": canonical.dtype.newbyteorder("<").str,
                    "shape": [int(canonical.shape[0])],
                }
            )
        total = sum(flat.nbytes for flat in flats)
        digest = graph_digest(graph)
        begin = self._call(
            {
                "op": "upload_begin",
                "digest": digest,
                "class": cls_name,
                "arrays": manifest,
                "payload_sha256": sha.hexdigest(),
                "total_bytes": total,
            }
        )
        if begin.get("known"):
            return begin
        offset = int(begin.get("offset", 0))
        if chunk_bytes is None:
            chunk_bytes = int(begin.get("chunk_bytes") or window)
        if chunk_bytes <= 0:
            raise ParameterError(
                f"chunk_bytes must be positive, got {chunk_bytes}"
            )
        # Walk the arrays as one logical byte stream, resuming at the
        # server's accepted offset; chunks never cross an array boundary,
        # so each slice is a zero-copy view of the (possibly memmapped)
        # source array.
        base = 0
        for flat in flats:
            end = base + flat.nbytes
            while offset < end:
                take = min(chunk_bytes, end - offset)
                piece = flat[offset - base : offset - base + take]
                self._call(
                    {
                        "op": "upload_chunk",
                        "upload_id": digest,
                        "offset": offset,
                        "data": piece,
                    }
                )
                offset += take
            base = end
        return self._call({"op": "upload_commit", "upload_id": digest})

    def upload_abort(self, upload_id: str) -> dict:
        """Drop an in-progress chunked upload server-side."""
        return self._call({"op": "upload_abort", "upload_id": upload_id})

    def upload_text(self, payload: str, format: str = "auto") -> dict:
        """Upload serialised graph text; returns the full server response
        (``digest``, ``known``, ``num_vertices``, ``num_edges``,
        ``weighted``)."""
        return self._call(
            {"op": "upload", "format": format, "payload": payload}
        )

    def discard(self, digest: str) -> dict:
        """Drop an uploaded graph server-side (frees its shared memory).

        Cooperative: do not race your own in-flight requests against the
        digest.  Cached results keyed on the digest remain valid — the
        same bytes re-upload to the same digest.
        """
        return self._call({"op": "discard", "digest": digest})

    def upload_file(self, path: str | Path, format: str = "auto") -> dict:
        """Upload a graph file's contents.

        ``format="auto"`` resolves a known file extension client-side (the
        extension never crosses the wire, and the server's content sniff
        refuses genuinely ambiguous text); unknown extensions are sniffed
        server-side.
        """
        path = Path(path)
        if format == "auto":
            from repro.graphs.io import format_for_path

            format = format_for_path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ServeError(
                f"cannot read graph file {path}: {exc}"
            ) from None
        return self.upload_text(text, format=format)

    def decompose(
        self,
        digest: str,
        beta: float,
        *,
        method: str = "auto",
        seed: int = 0,
        validate: bool = False,
        **options: object,
    ) -> ServeResult:
        """Request one decomposition of the graph behind ``digest``."""
        response = self._call(
            {
                "op": "decompose",
                "digest": digest,
                "beta": beta,
                "method": method,
                "seed": seed,
                "validate": validate,
                "options": dict(options),
            }
        )
        return result_from_response(response)

    def spanner(
        self,
        digest: str,
        beta: float,
        *,
        method: str = "auto",
        seed: int = 0,
        **options: object,
    ) -> ServeSpannerResult:
        """Build the cluster spanner of the graph behind ``digest``.

        Runs server-side (decompositions on the server's pool, result
        through its cache); repeats are warm hits.  The edge array is
        bit-identical to a local
        :func:`repro.spanners.ldd_spanner` with the same configuration.
        """
        response = self._call(
            {
                "op": "spanner",
                "digest": digest,
                "beta": beta,
                "method": method,
                "seed": seed,
                "options": dict(options),
            }
        )
        return spanner_from_response(response)

    def lowstretch_tree(
        self,
        digest: str,
        *,
        beta: float = 0.5,
        method: str = "auto",
        seed: int = 0,
        max_levels: int = 64,
        **options: object,
    ) -> ServeTreeResult:
        """Build an AKPW low-stretch spanning forest server-side.

        The parent array is bit-identical to a local
        :func:`repro.lowstretch.akpw_spanning_tree` with the same
        configuration.
        """
        response = self._call(
            {
                "op": "lowstretch_tree",
                "digest": digest,
                "beta": beta,
                "method": method,
                "seed": seed,
                "max_levels": max_levels,
                "options": dict(options),
            }
        )
        return tree_from_response(response)

    def hierarchy(
        self,
        digest: str,
        *,
        seed: int = 0,
        method: str = "auto",
        beta_max: float = 0.9,
        radius_constant: float = 1.0,
        **options: object,
    ) -> ServeHierarchyResult:
        """Build a laminar decomposition hierarchy server-side.

        The label stack is bit-identical to a local
        :func:`repro.embeddings.hierarchical_decomposition` with the same
        configuration.
        """
        response = self._call(
            {
                "op": "hierarchy",
                "digest": digest,
                "seed": seed,
                "method": method,
                "beta_max": beta_max,
                "radius_constant": radius_constant,
                "options": dict(options),
            }
        )
        return hierarchy_from_response(response)

    def stats(self) -> dict:
        """Server/cache/store/pool counters."""
        return self._call({"op": "stats"})

    def metrics(self, *, text: bool = True) -> dict:
        """Telemetry snapshot: ``metrics`` (mergeable JSON tree) and, with
        ``text=True``, its Prometheus rendering under ``text``.  Against a
        cluster router the snapshot is the merge of every shard's."""
        return self._call({"op": "metrics", "text": text})

    def shutdown(self) -> dict:
        """Ask the server to stop (the response confirms it is stopping)."""
        return self._call({"op": "shutdown"})

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            sock, self._sock = self._sock, None
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass

    @property
    def closed(self) -> bool:
        return self._sock is None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "connected"
        return f"ServeClient({state})"
