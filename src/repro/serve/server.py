"""`DecompositionServer` — the async serving surface over the batch runtime.

One asyncio event loop owns the registries (graph store, result cache,
in-flight table) and streams requests into a
:class:`~repro.runtime.pool.DecompositionPool`; the worker processes do the
actual decompositions, so the loop is free to multiplex connections.  Three
layers keep repeat traffic cheap:

1. **content-addressed store** — a graph is uploaded once, registered in
   shared memory under its digest, and referenced by digest thereafter;
2. **memoizing cache** — results are keyed by the canonical request tuple
   (:func:`~repro.serve.protocol.canonical_cache_key`); derandomized
   decompositions make a warm hit byte-identical to recomputation;
3. **coalescing** — N concurrent identical requests await one pool
   execution (the in-flight future), costing one worker slot, not N.

Beyond raw decompositions, the server executes **application ops** —
``spanner``, ``lowstretch_tree``, ``hierarchy`` — end to end: the
application code runs server-side through a
:class:`~repro.pipeline.PoolProvider` over the same worker pool, against
the same store, and its results flow through the same cache and coalescing
table (namespaced by op in the canonical key), so a warm spanner request
costs a frame round trip, exactly like a warm decomposition.

Registry mutations (upload, cache insert, coalesce bookkeeping) happen only
on the event loop — single-threaded by construction, no locks; application
ops run on executor threads but only touch the thread-safe cache, pool and
provider.  The wire protocol is documented in :mod:`repro.serve.protocol`
and DESIGN.md §7–8.

Lifecycle: :meth:`DecompositionServer.run_async` inside an event loop you
own, or :func:`serve_background` for a daemon-thread server in tests,
benchmarks, and notebooks.  ``idle_ttl`` arms a watchdog that shuts the
server down after that many seconds without a frame — the guard rail for
CI-spawned servers.
"""

from __future__ import annotations

import asyncio
import errno
import hashlib
import json
import logging
import math
import os
import shutil
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro._version import __version__
from repro.bfs.kernels import native_available
from repro.core.engine import DEFAULT_METHODS, PartitionResult, _resolve
from repro.core.weighted import WeightedDecomposition
from repro.errors import ParameterError, ReproError, ServeError
from repro.graphs.backing import BACKING_KINDS
from repro.graphs.csr import CSRGraph
from repro.graphs.io import GRAPH_FORMATS, parse_graph
from repro.graphs.mmapcsr import (
    HEADER_RESERVE,
    MmapCSR,
    MmapLayout,
    validate_csr_chunked,
)
from repro.core.registry import describe_methods
from repro.runtime.pool import DecompositionPool
from repro.serve.cache import DEFAULT_MAX_BYTES, ResultCache
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    as_array,
    canonical_cache_key,
    decode_frame_payload,
    encode_frame,
    frame_protocol,
    parse_frame_length,
)
from repro.serve.store import GraphStore, graph_digest
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace
from repro.telemetry.metrics import COUNT_BUCKETS, render_prometheus

__all__ = ["DecompositionServer", "serve_background", "upload_builder"]

logger = logging.getLogger(__name__)

#: classes a binary upload may name — the transport contract of
#: ``csr_arrays()``/``from_arrays()``; anything else is rejected.
_UPLOAD_CLASSES: dict[str, tuple[str, ...]] = {
    "CSRGraph": ("indptr", "indices"),
    "WeightedCSRGraph": ("indptr", "indices", "weights"),
}


def upload_builder(message: dict):
    """Validate an upload request; return a ``() -> (graph, digest)``.

    The returned callable does the CPU-heavy work (parse or construct plus
    SHA-256) and is meant to run on an executor thread.  Two request
    shapes: text (``payload`` + ``format``) and binary (``arrays`` +
    ``class``, the ``csr_arrays()`` contract straight off the wire — v2
    clients send raw compact-dtype buffers; the graph constructor restores
    canonical dtypes and validates structure, so the resulting digest
    equals a text upload of the same graph).  Shared by the server and the
    cluster router, which must hash before it can route.
    """
    if "arrays" in message:
        cls_name = message.get("class", "CSRGraph")
        expected = _UPLOAD_CLASSES.get(cls_name)
        if expected is None:
            raise ParameterError(
                f"binary upload 'class' must be one of "
                f"{sorted(_UPLOAD_CLASSES)}, got {cls_name!r}"
            )
        arrays = message["arrays"]
        if not isinstance(arrays, dict) or sorted(arrays) != sorted(expected):
            got = (
                sorted(arrays) if isinstance(arrays, dict)
                else type(arrays).__name__
            )
            raise ParameterError(
                f"binary upload of a {cls_name} needs arrays "
                f"{sorted(expected)}, got {got}"
            )
        arrays = {name: as_array(obj) for name, obj in arrays.items()}

        def _build_and_hash():
            if cls_name == "WeightedCSRGraph":
                from repro.graphs.weighted import WeightedCSRGraph as cls
            else:
                cls = CSRGraph
            graph = cls.from_arrays(arrays, validate=True)
            return graph, graph_digest(graph)

        return _build_and_hash

    payload = message.get("payload")
    if not isinstance(payload, str):
        raise ParameterError(
            "upload needs a string 'payload' holding the serialised "
            "graph (or binary 'arrays' + 'class')"
        )
    fmt = message.get("format", "auto")
    if not isinstance(fmt, str):
        raise ParameterError("upload 'format' must be a string")

    def _parse_and_hash():
        graph = parse_graph(payload, fmt, source=f"<upload:{fmt}>")
        return graph, graph_digest(graph)

    return _parse_and_hash

#: Canonical on-disk dtypes of a chunked upload's arrays: the spool file
#: holds the *final* CSR arrays (no transport downcast), so the committed
#: graph maps zero-copy and its digest equals an in-RAM upload's.
_CHUNKED_UPLOAD_DTYPES = {"indptr": "<i8", "indices": "<i8", "weights": "<f8"}

#: Chunk size the server suggests to chunked-upload clients.
DEFAULT_UPLOAD_CHUNK_BYTES = 32 * 1024 * 1024


@dataclass
class _UploadSession:
    """One in-progress chunked upload (state lives on the event loop).

    ``received`` is the accepted contiguous high-water offset — it advances
    on the loop when a chunk is validated, while the positioned write runs
    off-loop (``os.pwrite`` is order-independent, so pipelined chunks may
    land out of order on disk).  ``pending`` holds the outstanding write
    futures; commit awaits them before hashing the payload.
    """

    upload_id: str
    manifest_key: tuple
    payload_sha256: str
    total_bytes: int
    path: str
    fd: int
    received: int = 0
    broken: str | None = None
    pending: set = field(default_factory=set)

    def close_fd(self) -> None:
        fd, self.fd = self.fd, -1
        if fd >= 0:
            os.close(fd)


def _chunked_manifest(message: dict) -> tuple[str, list, str, int, tuple]:
    """Validate an ``upload_begin`` manifest; returns its layout recipe.

    The manifest pins class, array order/shape/dtype, the client-computed
    graph digest (the content address and routing key), the SHA-256 of the
    concatenated payload bytes, and the total byte count.  Arrays must
    arrive in ``csr_arrays()`` order with canonical dtypes so the spool
    file *is* the final backing file.
    """
    cls_name = message.get("class", "CSRGraph")
    expected = _UPLOAD_CLASSES.get(cls_name)
    if expected is None:
        raise ParameterError(
            f"upload_begin 'class' must be one of {sorted(_UPLOAD_CLASSES)}, "
            f"got {cls_name!r}"
        )
    arrays = message.get("arrays")
    if not isinstance(arrays, list) or not all(
        isinstance(a, dict) for a in arrays
    ):
        raise ParameterError(
            "upload_begin needs 'arrays': a list of "
            "{name, dtype, shape} objects in csr_arrays() order"
        )
    names = [a.get("name") for a in arrays]
    if names != list(expected):
        raise ParameterError(
            f"upload_begin of a {cls_name} needs arrays {list(expected)} "
            f"in order, got {names}"
        )
    recipe = []
    total = 0
    lengths: dict[str, int] = {}
    for a in arrays:
        name = a["name"]
        want = np.dtype(_CHUNKED_UPLOAD_DTYPES[name])
        try:
            got = np.dtype(a.get("dtype"))
        except TypeError:
            raise ParameterError(
                f"upload_begin array {name!r} has unparsable dtype "
                f"{a.get('dtype')!r}"
            ) from None
        if got != want:
            raise ParameterError(
                f"chunked uploads ship final arrays: {name!r} must have "
                f"dtype {want.str!r}, got {got.str!r}"
            )
        shape = a.get("shape")
        if (
            not isinstance(shape, list) or len(shape) != 1
            or not isinstance(shape[0], int) or isinstance(shape[0], bool)
            or shape[0] < 0
        ):
            raise ParameterError(
                f"upload_begin array {name!r} needs a 1-element 'shape' "
                f"of a non-negative int, got {shape!r}"
            )
        lengths[name] = shape[0]
        recipe.append((name, (shape[0],), want))
        total += shape[0] * want.itemsize
    if lengths["indptr"] < 1:
        raise ParameterError("'indptr' must have at least one entry")
    if "weights" in lengths and lengths["weights"] != lengths["indices"]:
        raise ParameterError(
            f"'weights' length ({lengths['weights']}) must equal "
            f"'indices' length ({lengths['indices']})"
        )
    declared_total = message.get("total_bytes")
    if declared_total is not None and int(declared_total) != total:
        raise ParameterError(
            f"'total_bytes' ({declared_total}) does not match the declared "
            f"arrays ({total} bytes)"
        )
    sha = message.get("payload_sha256")
    if not isinstance(sha, str) or len(sha) != 64:
        raise ParameterError(
            "upload_begin needs 'payload_sha256': hex SHA-256 of the "
            "concatenated array bytes in manifest order"
        )
    digest = message.get("digest")
    if not isinstance(digest, str) or not digest:
        raise ParameterError(
            "upload_begin needs the client-computed graph 'digest' "
            "(graph_digest(...) — it is the content address)"
        )
    manifest_key = (
        cls_name,
        tuple((name, tuple(shape), dt.str) for name, shape, dt in recipe),
        sha,
        total,
    )
    return cls_name, recipe, sha, total, manifest_key


#: Application-op recursion graphs at or below this edge count run inline
#: on the executor thread instead of crossing into the worker pool — a
#: round trip costs more than a tiny decomposition, and the result is
#: identical either way (derandomization).
APP_INLINE_CUTOFF = 2048


@dataclass(frozen=True)
class _SlimResult:
    """What the cache holds: the response payload minus per-request flags."""

    kind: str
    center: np.ndarray
    per_vertex: np.ndarray
    summary: dict
    nbytes: int


def _slim_from_result(result: PartitionResult) -> _SlimResult:
    decomposition = result.decomposition
    if isinstance(decomposition, WeightedDecomposition):
        kind, per_vertex = "weighted", decomposition.radius
    else:
        kind, per_vertex = "unweighted", decomposition.hops
    summary = result.summary()
    # Trace fields remote consumers (ServeProvider) rebuild a
    # PartitionTrace from; NaN is not valid JSON, hence None.
    summary["wall_time_s"] = float(result.trace.wall_time_s)
    summary["delta_max"] = (
        None if math.isnan(result.trace.delta_max)
        else float(result.trace.delta_max)
    )
    if result.report is not None:
        summary["invariants_ok"] = result.report.all_invariants_hold()
    return _SlimResult(
        kind=kind,
        center=decomposition.center,
        per_vertex=per_vertex,
        summary=summary,
        nbytes=int(decomposition.center.nbytes + per_vertex.nbytes),
    )


class DecompositionServer:
    """Async JSON-over-TCP decomposition service.

    Parameters
    ----------
    graphs:
        Optional graph(s) to preload into the store at startup (their
        digests are in :attr:`preloaded`); clients can always upload more.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    max_workers, start_method:
        Forwarded to the owned :class:`DecompositionPool`.
    cache_bytes:
        Result-cache byte budget (0 disables memoization but keeps
        coalescing).
    idle_ttl:
        Shut down after this many seconds without any client frame.
    slow_request_ms:
        Requests slower than this emit one structured WARNING line on the
        ``repro.serve.server`` logger (op, elapsed, cached/coalesced
        flags) and bump ``repro_slow_requests_total``.  ``None`` disables
        the log entirely.
    """

    def __init__(
        self,
        graphs: CSRGraph | list[CSRGraph] | tuple[CSRGraph, ...] | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int | None = None,
        start_method: str | None = None,
        cache_bytes: int = DEFAULT_MAX_BYTES,
        idle_ttl: float | None = None,
        slow_request_ms: float | None = 1000.0,
    ) -> None:
        if isinstance(graphs, CSRGraph):
            graphs = [graphs]
        self._preload = list(graphs or [])
        self._host = host
        self._port = int(port)
        self._max_workers = max_workers
        self._start_method = start_method
        self._cache_bytes = int(cache_bytes)
        if idle_ttl is not None and idle_ttl <= 0:
            raise ParameterError(f"idle_ttl must be > 0, got {idle_ttl}")
        self._idle_ttl = idle_ttl
        if slow_request_ms is not None and slow_request_ms < 0:
            raise ParameterError(
                f"slow_request_ms must be >= 0, got {slow_request_ms}"
            )
        self._slow_request_s = (
            None if slow_request_ms is None else slow_request_ms / 1e3
        )

        self._pool: DecompositionPool | None = None
        self._store: GraphStore | None = None
        self._cache = ResultCache(self._cache_bytes)
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._started_at = time.monotonic()
        self._last_activity = time.monotonic()
        self.address: tuple[str, int] | None = None
        self.preloaded: tuple[str, ...] = ()

        self._app_provider = None
        self._upload_sessions: dict[str, _UploadSession] = {}
        self._spool_dir: str | None = None
        self._connections = 0
        self._requests_total = 0
        self._decompose_requests = 0
        self._coalesced = 0
        self._pool_executions = 0
        self._app_requests = 0
        self._app_executions = 0
        self._errors = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Start the pool, preload graphs, bind the listener."""
        if self._server is not None:
            raise ServeError("server is already started")
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._spool_dir = tempfile.mkdtemp(prefix="repro-serve-spool-")
        self._pool = DecompositionPool(
            max_workers=self._max_workers,
            start_method=self._start_method,
        )
        try:
            self._store = GraphStore(self._pool)
            # Application ops run through this provider: top-level graphs
            # are already pool-resident under their digest (the store
            # registered them), recursion-level graphs get ephemeral
            # registrations, and tiny subproblems run inline on the
            # executor thread.  It shares the server's ResultCache, so
            # application-internal decompositions and client `decompose`
            # requests draw on one byte budget (namespaced keys).
            from repro.pipeline import PoolProvider

            self._app_provider = PoolProvider(
                self._pool,
                memo=self._cache,
                inline_cutoff=APP_INLINE_CUTOFF,
            )
            self.preloaded = tuple(
                self._store.put(graph)[0] for graph in self._preload
            )
            try:
                self._server = await asyncio.start_server(
                    self._handle_connection, self._host, self._port
                )
            except OSError as exc:
                if exc.errno == errno.EADDRINUSE:
                    raise ServeError(
                        f"cannot listen on {self._host}:{self._port}: "
                        f"address already in use (is another server "
                        f"running there?)"
                    ) from None
                raise
        except BaseException:
            self._pool.shutdown()
            self._pool = None
            raise
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._started_at = time.monotonic()
        logger.info(
            "serving on %s:%d (workers=%d, preloaded=%d, ttl=%s)",
            self.address[0], self.address[1], self._pool.max_workers,
            len(self.preloaded), self._idle_ttl,
        )
        self._touch()
        if self._idle_ttl is not None:
            task = self._loop.create_task(self._ttl_watchdog())
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        return self.address

    async def run_async(self, *, ready=None) -> None:
        """Start, signal ``ready``, serve until shutdown, then clean up.

        ``ready`` may be a :class:`threading.Event` (its ``set`` is called)
        or any zero-argument callable (the CLI prints the bound address);
        either fires after :attr:`address` is populated.
        """
        await self.start()
        if ready is not None:
            getattr(ready, "set", ready)()
        try:
            await self._stop_event.wait()
        finally:
            await self.aclose()

    def request_shutdown(self) -> None:
        """Ask the server to stop; safe to call from any thread."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:  # loop already closed
            pass

    async def aclose(self) -> None:
        """Stop listening, drop connections, shut the pool down."""
        if self._stop_event is not None:
            self._stop_event.set()
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        provider, self._app_provider = self._app_provider, None
        if provider is not None:
            provider.close()
        sessions, self._upload_sessions = self._upload_sessions, {}
        for session in sessions.values():
            session.broken = "server shut down"
            session.close_fd()
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()
        # After pool shutdown: committed spool files were owned by the
        # store's mmap wrappers and are already unlinked; whatever is left
        # in the spool dir is abandoned upload state.
        spool, self._spool_dir = self._spool_dir, None
        if spool is not None:
            shutil.rmtree(spool, ignore_errors=True)
        if self.address is not None:
            logger.info(
                "server on %s:%d stopped (%d request(s) served)",
                self.address[0], self.address[1], self._requests_total,
            )

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _touch(self) -> None:
        self._last_activity = time.monotonic()

    async def _ttl_watchdog(self) -> None:
        while not self._stop_event.is_set():
            if self._inflight:
                # A pool execution in progress is activity even when no
                # frames arrive — never shut down under a working client.
                self._touch()
            idle = time.monotonic() - self._last_activity
            if idle >= self._idle_ttl:
                self._stop_event.set()
                return
            await asyncio.sleep(
                max(0.05, min(self._idle_ttl - idle, self._idle_ttl / 4))
            )

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._connections += 1
        write_lock = asyncio.Lock()
        request_tasks: set[asyncio.Task] = set()

        async def _respond(message: dict, protocol: int) -> None:
            """Dispatch one request and write its response frame.

            Runs as its own task so a connection can have many requests in
            flight (pipelining) — responses come back as they complete,
            matched by the echoed ``id``.  Clients that do not pipeline
            never have more than one outstanding request, so they observe
            strict request/response order regardless.
            """
            response = await self._dispatch(message)
            if "id" in message:
                response["id"] = message["id"]
            try:
                frame = encode_frame(response, protocol)
            except ServeError as exc:  # oversized response
                frame = encode_frame(
                    {
                        "ok": False,
                        "error": "ServeError",
                        "message": str(exc),
                        **(
                            {"id": message["id"]} if "id" in message else {}
                        ),
                    },
                    protocol,
                )
            try:
                async with write_lock:
                    writer.write(frame)
                    await writer.drain()
            except ConnectionError:
                pass  # client hung up before reading its response

        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                    length = parse_frame_length(header)
                    body = await reader.readexactly(length)
                    self._touch()
                    protocol = frame_protocol(body)
                    message = decode_frame_payload(body)
                except asyncio.IncompleteReadError:
                    return  # client hung up at (or inside) a frame boundary
                except ServeError as exc:
                    # Oversized announcement or unparsable body: answer
                    # with an error frame, then drop the stream — after a
                    # framing violation it cannot be trusted.
                    async with write_lock:
                        writer.write(encode_frame({
                            "ok": False,
                            "error": "ServeError",
                            "message": str(exc),
                        }))
                        await writer.drain()
                    return
                request = self._loop.create_task(
                    _respond(message, protocol)
                )
                for registry in (request_tasks, self._conn_tasks):
                    registry.add(request)
                    request.add_done_callback(registry.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for request in list(request_tasks):
                request.cancel()
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(self, message: dict) -> dict:
        self._requests_total += 1
        op = message.get("op")
        op_label = op if isinstance(op, str) else "invalid"
        trace_ctx = message.get("trace")
        start = time.perf_counter()
        if (
            isinstance(trace_ctx, dict)
            and isinstance(trace_ctx.get("trace_id"), str)
        ):
            # Each request runs as its own asyncio task, so the contextvar
            # collector is per-request by construction.  Spans collected
            # here (the server span plus anything the op emits — e.g. the
            # pool worker's, re-emitted by _op_decompose) ride back to the
            # client on the response's "spans" header field.
            with _trace.collect_spans() as spans:
                with _trace.adopt_context(
                    trace_ctx["trace_id"], trace_ctx.get("span_id")
                ):
                    with _trace.span(f"server.{op_label}", op=op_label):
                        response = await self._dispatch_inner(op, message)
            response["spans"] = spans
        else:
            response = await self._dispatch_inner(op, message)
        elapsed = time.perf_counter() - start
        logger.debug(
            "%s ok=%s %.2fms", op_label,
            bool(response.get("ok", False)), elapsed * 1e3,
        )
        _metrics.counter("repro_requests_total", op=op_label)
        _metrics.observe("repro_request_seconds", elapsed, op=op_label)
        if not response.get("ok", False):
            _metrics.counter("repro_request_errors_total", op=op_label)
        if (
            self._slow_request_s is not None
            and elapsed >= self._slow_request_s
        ):
            _metrics.counter("repro_slow_requests_total", op=op_label)
            logger.warning(
                "slow request: %s",
                json.dumps({
                    "op": op_label,
                    "elapsed_ms": round(elapsed * 1e3, 3),
                    "threshold_ms": self._slow_request_s * 1e3,
                    "ok": bool(response.get("ok", False)),
                    "cached": response.get("cached"),
                    "coalesced": response.get("coalesced"),
                    "id": message.get("id"),
                }, sort_keys=True),
            )
        return response

    async def _dispatch_inner(self, op, message: dict) -> dict:
        handler = self._OPS.get(op)
        try:
            if handler is None:
                raise ParameterError(
                    f"unknown op {op!r}; choices: {sorted(self._OPS)}"
                )
            return await handler(self, message)
        except ReproError as exc:
            self._errors += 1
            return {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        except Exception as exc:  # pragma: no cover - defensive
            self._errors += 1
            return {
                "ok": False,
                "error": type(exc).__name__,
                "message": f"internal server error: {exc}",
            }

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def _op_hello(self, message: dict) -> dict:
        return {
            "ok": True,
            "server": "repro.serve",
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "protocols": list(range(1, PROTOCOL_VERSION + 1)),
            "ops": sorted(self._OPS),
            "methods": describe_methods(),
            "default_methods": dict(DEFAULT_METHODS),
            "formats": list(GRAPH_FORMATS),
            "graphs": list(self._store.digests),
            "native_kernel": native_available(),
            "graph_backings": sorted(BACKING_KINDS),
            "upload_chunk_bytes": DEFAULT_UPLOAD_CHUNK_BYTES,
        }

    async def _op_upload(self, message: dict) -> dict:
        # Parsing/building and hashing are the CPU-heavy parts of an
        # upload; run them off-loop so a multi-megabyte graph does not
        # stall concurrent decompositions.  Only the registry mutation
        # (and its copy into shared memory) stays on the loop.
        build = upload_builder(message)
        graph, digest = await self._loop.run_in_executor(None, build)
        return self._admit(graph, digest)

    def _admit(self, graph: CSRGraph, digest: str) -> dict:
        digest, known = self._store.put(graph, digest=digest)
        from repro.graphs.weighted import WeightedCSRGraph

        return {
            "ok": True,
            "digest": digest,
            "known": known,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "weighted": isinstance(graph, WeightedCSRGraph),
        }

    async def _op_discard(self, message: dict) -> dict:
        """Drop an uploaded graph: unregister from the pool, unlink shared
        memory.  Cooperative — the caller must not race its own in-flight
        requests against the digest; result-cache entries keyed on it stay
        valid (content addressing: a re-upload of the same bytes gets the
        same digest and the same cached results).  Clients with bounded
        upload budgets (``ServeProvider``) use this to cap server memory.
        """
        digest = message.get("digest")
        if not isinstance(digest, str):
            raise ParameterError("discard needs a string 'digest'")
        self._store.discard(digest)
        return {"ok": True, "digest": digest, "discarded": True}

    # ------------------------------------------------------------------
    # chunked upload — graphs larger than one protocol frame
    # ------------------------------------------------------------------
    def _upload_summary(self, digest: str) -> dict:
        """The admit response for a graph already resident in the store."""
        graph = self._store.get(digest)
        from repro.graphs.weighted import WeightedCSRGraph

        return {
            "ok": True,
            "digest": digest,
            "known": True,
            "complete": True,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "weighted": isinstance(graph, WeightedCSRGraph),
        }

    def _destroy_session(self, session: _UploadSession) -> None:
        self._upload_sessions.pop(session.upload_id, None)
        session.close_fd()
        try:
            os.unlink(session.path)
        except OSError:
            pass

    def _session_for(self, message: dict, op: str) -> _UploadSession:
        upload_id = message.get("upload_id", message.get("digest"))
        if not isinstance(upload_id, str):
            raise ParameterError(f"{op} needs a string 'upload_id'")
        session = self._upload_sessions.get(upload_id)
        if session is None:
            raise ParameterError(
                f"no upload in progress for {upload_id!r}; send "
                f"upload_begin first"
            )
        if session.broken is not None:
            raise ServeError(
                f"upload {upload_id[:12]} is broken ({session.broken}); "
                f"upload_abort it and restart"
            )
        return session

    async def _op_upload_begin(self, message: dict) -> dict:
        """Open (or resume) a chunked upload keyed by the graph digest.

        Content addressing makes the digest the natural upload id: a
        resident graph short-circuits to ``known: true`` with nothing
        sent, and a second ``begin`` for an in-flight transfer resumes at
        the accepted byte offset instead of restarting.
        """
        cls_name, recipe, sha, total, manifest_key = _chunked_manifest(message)
        digest = message["digest"]
        if digest in self._store.digests:
            return self._upload_summary(digest)
        session = self._upload_sessions.get(digest)
        if session is not None and session.broken is not None:
            self._destroy_session(session)
            session = None
        if session is not None:
            if session.manifest_key != manifest_key:
                raise ParameterError(
                    f"upload {digest[:12]} is already in progress with a "
                    f"different manifest; upload_abort it first"
                )
            return {
                "ok": True,
                "digest": digest,
                "known": False,
                "offset": session.received,
                "total_bytes": session.total_bytes,
                "chunk_bytes": DEFAULT_UPLOAD_CHUNK_BYTES,
            }
        if self._spool_dir is None:
            raise ServeError("server is not started")
        from repro.graphs.weighted import WeightedCSRGraph

        graph_type = (
            WeightedCSRGraph if cls_name == "WeightedCSRGraph" else CSRGraph
        )
        path = os.path.join(self._spool_dir, f"{digest}.rgm")

        def _create() -> int:
            # The spool file *is* the final backing file: header up front,
            # payload filled by positioned writes, committed in place.
            MmapLayout.create(path, graph_type, recipe).close()
            return os.open(path, os.O_RDWR)

        fd = await self._loop.run_in_executor(None, _create)
        raced = self._upload_sessions.get(digest)
        if raced is not None and raced.broken is None:
            # A concurrent begin for the same digest won while we were off
            # the loop; both wrote the same header to the same path, so
            # just yield to the established session.
            os.close(fd)
            return {
                "ok": True,
                "digest": digest,
                "known": False,
                "offset": raced.received,
                "total_bytes": raced.total_bytes,
                "chunk_bytes": DEFAULT_UPLOAD_CHUNK_BYTES,
            }
        session = _UploadSession(
            upload_id=digest,
            manifest_key=manifest_key,
            payload_sha256=sha,
            total_bytes=total,
            path=path,
            fd=fd,
        )
        self._upload_sessions[digest] = session
        return {
            "ok": True,
            "digest": digest,
            "known": False,
            "offset": 0,
            "total_bytes": total,
            "chunk_bytes": DEFAULT_UPLOAD_CHUNK_BYTES,
        }

    @staticmethod
    def _pwrite_chunk(session: _UploadSession, buf: bytes, pos: int) -> None:
        try:
            view = memoryview(buf)
            written = 0
            while written < len(view):
                written += os.pwrite(session.fd, view[written:], pos + written)
        except Exception as exc:
            session.broken = f"spool write failed: {exc}"

    async def _op_upload_chunk(self, message: dict) -> dict:
        """Accept one payload slice at a byte offset.

        The contiguity check and high-water bump happen on the loop;
        the write itself is a positioned ``pwrite`` on the executor, so a
        pipelining client keeps the socket and the disk busy at once.
        Replayed chunks at already-accepted offsets are acknowledged
        without rewriting (idempotent retry after a dropped response).
        """
        session = self._session_for(message, "upload_chunk")
        offset = message.get("offset")
        if isinstance(offset, bool) or not isinstance(offset, int) or offset < 0:
            raise ParameterError(
                "upload_chunk needs a non-negative integer 'offset'"
            )
        data = as_array(message.get("data"))
        if data.dtype != np.uint8 or data.ndim != 1:
            raise ParameterError(
                "upload_chunk 'data' must be a 1-D uint8 array of raw "
                "payload bytes"
            )
        end = offset + data.nbytes
        if end > session.total_bytes:
            raise ParameterError(
                f"chunk [{offset}, {end}) overruns the declared payload "
                f"({session.total_bytes} bytes)"
            )
        if offset > session.received:
            raise ParameterError(
                f"chunk at offset {offset} leaves a gap: only "
                f"{session.received} bytes accepted so far"
            )
        if end > session.received:
            session.received = end
            # Detach from the frame buffer before leaving the loop.
            buf = data.tobytes()
            fut = self._loop.run_in_executor(
                None, self._pwrite_chunk, session, buf, HEADER_RESERVE + offset
            )
            session.pending.add(fut)
            fut.add_done_callback(session.pending.discard)
        return {
            "ok": True,
            "upload_id": session.upload_id,
            "received": session.received,
        }

    async def _op_upload_commit(self, message: dict) -> dict:
        """Seal a completed upload: hash, validate, admit.

        Every guarantee an in-frame upload gives holds here too — the
        payload SHA-256 catches transfer corruption, the chunked CSR
        validator enforces structural invariants without materialising
        the arrays, and the recomputed content digest must equal the one
        the client declared (it is the store key other requests will
        reference).  A commit replay after success is answered from the
        store.
        """
        upload_id = message.get("upload_id", message.get("digest"))
        if isinstance(upload_id, str) and upload_id in self._store.digests:
            return self._upload_summary(upload_id)
        session = self._session_for(message, "upload_commit")
        if session.received < session.total_bytes:
            raise ParameterError(
                f"upload_commit before the payload is complete: "
                f"{session.received} of {session.total_bytes} bytes received"
            )
        if session.pending:
            await asyncio.gather(*list(session.pending))
        if session.broken is not None:
            raise ServeError(
                f"upload {session.upload_id[:12]} is broken "
                f"({session.broken}); upload_abort it and restart"
            )
        declared = session.upload_id

        def _seal() -> MmapCSR:
            session.close_fd()
            sha = hashlib.sha256()
            with open(session.path, "rb") as fh:
                fh.seek(HEADER_RESERVE)
                while True:
                    block = fh.read(16 * 1024 * 1024)
                    if not block:
                        break
                    sha.update(block)
            if sha.hexdigest() != session.payload_sha256:
                raise ServeError(
                    f"payload hash mismatch after upload: declared "
                    f"{session.payload_sha256}, received {sha.hexdigest()} "
                    f"— the transfer is corrupt; retry the upload"
                )
            wrapper = MmapCSR.open(session.path, owns_file=True)
            try:
                validate_csr_chunked(
                    wrapper.graph,
                    source=f"chunked upload {declared[:12]}",
                )
                digest = graph_digest(wrapper.graph)
                if digest != declared:
                    raise ServeError(
                        f"graph digest mismatch: client declared "
                        f"{declared}, committed arrays hash to {digest}"
                    )
            except BaseException:
                wrapper.close()  # owns the file — unlinks the spool
                raise
            return wrapper

        try:
            wrapper = await self._loop.run_in_executor(None, _seal)
        except BaseException:
            self._destroy_session(session)
            raise
        self._upload_sessions.pop(declared, None)
        try:
            response = self._admit(wrapper.graph, declared)
        except BaseException:
            wrapper.close()
            raise
        if response["known"]:
            # Raced a plain upload of the same graph; the store kept the
            # first copy, so drop ours (owns the file — unlinks it).
            wrapper.close()
        response["complete"] = True
        return response

    async def _op_upload_abort(self, message: dict) -> dict:
        """Drop an in-progress upload and its spool file."""
        upload_id = message.get("upload_id", message.get("digest"))
        if not isinstance(upload_id, str):
            raise ParameterError("upload_abort needs a string 'upload_id'")
        session = self._upload_sessions.get(upload_id)
        if session is not None:
            if session.pending:
                await asyncio.gather(
                    *list(session.pending), return_exceptions=True
                )
            self._destroy_session(session)
        return {
            "ok": True,
            "upload_id": upload_id,
            "aborted": session is not None,
        }

    # ------------------------------------------------------------------
    # request parsing helpers (shared by decompose and application ops)
    # ------------------------------------------------------------------
    def _parse_graph_request(self, message: dict, op: str):
        """Common fields of a graph-keyed op: digest, method, seed, options.

        Returns ``(digest, graph, spec, bound, seed, options)`` with the
        method resolved against the registry and the options validated.
        """
        digest = message.get("digest")
        if not isinstance(digest, str):
            raise ParameterError(
                f"{op} needs a string 'digest' (upload the graph first)"
            )
        graph = self._store.get(digest)
        seed = message.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ParameterError(
                f"'seed' must be an integer (reproducibility is keyed on "
                f"it), got {type(seed).__name__}"
            )
        options = message.get("options") or {}
        if not isinstance(options, dict):
            raise ParameterError(
                f"'options' must be an object, got {type(options).__name__}"
            )
        spec = _resolve(graph, message.get("method", "auto"))
        bound = spec.bind(options)
        return digest, graph, spec, bound, seed, options

    @staticmethod
    def _parse_number(
        message: dict, field: str, op: str, default: float | None = None
    ) -> float:
        if field not in message:
            if default is None:
                raise ParameterError(f"{op} needs '{field}'")
            return float(default)
        value = message[field]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ParameterError(
                f"'{field}' must be a number, got {type(value).__name__}"
            )
        return float(value)

    @staticmethod
    def _require_unweighted(graph: CSRGraph, op: str) -> None:
        from repro.graphs.weighted import WeightedCSRGraph

        if isinstance(graph, WeightedCSRGraph):
            raise ParameterError(
                f"the {op} op requires an unweighted graph (piece BFS "
                "trees need hop counts); upload the topology without "
                "weights"
            )

    async def _memoized(self, key: tuple, compute):
        """Serve ``key`` from cache, a coalesced in-flight peer, or compute.

        ``compute`` is an async callable returning ``(value, nbytes)``;
        exactly one execution runs per key at a time — concurrent identical
        requests await the same future (shielded, so one impatient client's
        cancellation cannot abort the execution its peers wait on).
        Returns ``(value, cached, coalesced)``.
        """
        value = self._cache.get(key)
        if value is not None:
            return value, True, False
        inflight = self._inflight.get(key)
        if inflight is not None:
            self._coalesced += 1
            return await asyncio.shield(inflight), False, True
        future = self._loop.create_future()
        self._inflight[key] = future
        try:
            value, nbytes = await compute()
            self._cache.put(key, value, nbytes)
            if not future.done():
                future.set_result(value)
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                future.exception()  # mark retrieved: waiters get their copy
            raise
        finally:
            self._inflight.pop(key, None)
        return value, False, False

    # ------------------------------------------------------------------
    # decompose op
    # ------------------------------------------------------------------
    async def _op_decompose(self, message: dict) -> dict:
        self._decompose_requests += 1
        digest, graph, spec, bound, seed, options = self._parse_graph_request(
            message, "decompose"
        )
        beta = self._parse_number(message, "beta", "decompose")
        validate = bool(message.get("validate", False))
        key = canonical_cache_key(
            digest, beta, spec.name, seed, bound, validate=validate
        )

        async def _compute():
            self._pool_executions += 1
            t0 = time.perf_counter()
            result = await asyncio.wrap_future(
                self._pool.submit(
                    digest,
                    beta,
                    method=spec.name,
                    seed=seed,
                    validate=validate,
                    # The worker adopts the server span as parent and
                    # sends its spans back on the result (None when this
                    # request carries no trace).
                    trace_ctx=_trace.current_context(),
                    **options,
                )
            )
            _metrics.observe(
                "repro_pool_execution_seconds", time.perf_counter() - t0
            )
            self._observe_trace(spec.name, result.trace)
            _trace.emit_spans(result.spans)
            slim = _slim_from_result(result)
            return slim, slim.nbytes

        slim, cached, coalesced = await self._memoized(key, _compute)
        return self._decompose_response(
            digest, slim, cached=cached, coalesced=coalesced
        )

    @staticmethod
    def _observe_trace(method: str, trace) -> None:
        """Fold one execution's measured paper quantities into the registry.

        Rounds/work/depth are the numbers Theorem 1.2 bounds; the phase
        breakdown is present when deep instrumentation (REPRO_TELEMETRY)
        was on in the worker.  Cached and coalesced requests never reach
        here — these histograms count actual executions.
        """
        _metrics.observe(
            "repro_bfs_rounds", trace.rounds,
            buckets=COUNT_BUCKETS, method=method,
        )
        _metrics.observe(
            "repro_bfs_work", trace.work,
            buckets=COUNT_BUCKETS, method=method,
        )
        _metrics.observe(
            "repro_bfs_depth", trace.depth,
            buckets=COUNT_BUCKETS, method=method,
        )
        phases = (
            trace.extra.get("phases") if isinstance(trace.extra, dict)
            else None
        )
        if phases:
            for name, seconds in phases.items():
                _metrics.observe(
                    "repro_bfs_phase_seconds", seconds,
                    phase=name[:-2] if name.endswith("_s") else name,
                )

    def _decompose_response(
        self, digest: str, slim: _SlimResult, *, cached: bool, coalesced: bool
    ) -> dict:
        return {
            "ok": True,
            "digest": digest,
            "kind": slim.kind,
            "cached": cached,
            "coalesced": coalesced,
            "summary": dict(slim.summary),
            "center": slim.center,
            "per_vertex": slim.per_vertex,
        }

    # ------------------------------------------------------------------
    # application ops
    # ------------------------------------------------------------------
    @staticmethod
    def _app_payload_nbytes(payload: dict) -> int:
        """Cache accounting size of an app-op payload.

        Payloads are codec-neutral trees holding raw ``ndarray`` values
        (``encode_frame`` serialises them per client protocol at write
        time), so the charge is the array byte totals — the dominant
        term — plus a flat overhead for the metadata.
        """
        total = 1024
        stack = [payload]
        while stack:
            node = stack.pop()
            if isinstance(node, np.ndarray):
                total += int(node.nbytes)
            elif isinstance(node, dict):
                if "data" in node and isinstance(node.get("data"), str):
                    total += len(node["data"])
                else:
                    stack.extend(node.values())
            elif isinstance(node, list):
                stack.extend(node)
        return total

    async def _run_app(self, key: tuple, build) -> tuple[dict, bool, bool]:
        """Execute one application op through the cache/coalescing layer.

        ``build`` runs on an executor thread (the application code blocks
        on pool futures internally) and returns the client-ready payload;
        its cache charge is :meth:`_app_payload_nbytes`.
        """
        self._app_requests += 1

        async def _compute():
            self._app_executions += 1
            payload = await self._loop.run_in_executor(None, build)
            return payload, self._app_payload_nbytes(payload)

        return await self._memoized(key, _compute)

    async def _op_spanner(self, message: dict) -> dict:
        digest, graph, spec, bound, seed, options = self._parse_graph_request(
            message, "spanner"
        )
        self._require_unweighted(graph, "spanner")
        beta = self._parse_number(message, "beta", "spanner")
        key = canonical_cache_key(
            digest, beta, spec.name, seed, bound, op="spanner"
        )

        def _build():
            from repro.spanners.cluster_spanner import ldd_spanner

            res = ldd_spanner(
                graph, beta, seed=seed, method=spec.name,
                provider=self._app_provider, **options,
            )
            edges = res.spanner.edge_array()
            payload = {
                "op": "spanner",
                "stretch_bound": int(res.stretch_bound),
                "num_tree_edges": int(res.num_tree_edges),
                "num_bridge_edges": int(res.num_bridge_edges),
                "num_edges": int(res.num_edges),
                "edges": edges,
                "summary": {
                    "method": spec.name,
                    **res.decomposition.summary(),
                },
            }
            return payload

        payload, cached, coalesced = await self._run_app(key, _build)
        return {
            "ok": True,
            "digest": digest,
            "cached": cached,
            "coalesced": coalesced,
            **payload,
        }

    async def _op_lowstretch_tree(self, message: dict) -> dict:
        digest, graph, spec, bound, seed, options = self._parse_graph_request(
            message, "lowstretch_tree"
        )
        self._require_unweighted(graph, "lowstretch_tree")
        beta = self._parse_number(message, "beta", "lowstretch_tree", 0.5)
        max_levels = message.get("max_levels", 64)
        if isinstance(max_levels, bool) or not isinstance(max_levels, int):
            raise ParameterError(
                f"'max_levels' must be an integer, got "
                f"{type(max_levels).__name__}"
            )
        key = canonical_cache_key(
            digest, beta, spec.name, seed, bound,
            op="lowstretch_tree", extra={"max_levels": max_levels},
        )

        def _build():
            from repro.lowstretch.akpw import akpw_spanning_tree

            res = akpw_spanning_tree(
                graph, beta=beta, seed=seed, max_levels=max_levels,
                method=spec.name, provider=self._app_provider, **options,
            )
            payload = {
                "op": "lowstretch_tree",
                "parent": res.forest.parent,
                "level_sizes": [list(pair) for pair in res.level_sizes],
                "level_betas": list(res.level_betas),
                "num_levels": int(res.num_levels),
            }
            return payload

        payload, cached, coalesced = await self._run_app(key, _build)
        return {
            "ok": True,
            "digest": digest,
            "cached": cached,
            "coalesced": coalesced,
            **payload,
        }

    async def _op_hierarchy(self, message: dict) -> dict:
        digest, graph, spec, bound, seed, options = self._parse_graph_request(
            message, "hierarchy"
        )
        self._require_unweighted(graph, "hierarchy")
        beta_max = self._parse_number(message, "beta_max", "hierarchy", 0.9)
        radius_constant = self._parse_number(
            message, "radius_constant", "hierarchy", 1.0
        )
        key = canonical_cache_key(
            digest, 0.0, spec.name, seed, bound,
            op="hierarchy",
            extra={"beta_max": beta_max, "radius_constant": radius_constant},
        )

        def _build():
            from repro.embeddings.hierarchy import hierarchical_decomposition

            h = hierarchical_decomposition(
                graph, seed=seed, beta_max=beta_max,
                radius_constant=radius_constant, method=spec.name,
                provider=self._app_provider, **options,
            )
            payload = {
                "op": "hierarchy",
                "labels": list(h.labels),
                "scale": [float(s) for s in h.scale],
                "num_levels": int(h.num_levels),
            }
            return payload

        payload, cached, coalesced = await self._run_app(key, _build)
        return {
            "ok": True,
            "digest": digest,
            "cached": cached,
            "coalesced": coalesced,
            **payload,
        }

    async def _op_stats(self, message: dict) -> dict:
        provider_stats = None
        if self._app_provider is not None:
            # Snapshot-copy before redacting: stats() may hand back (or
            # later be changed to hand back) live internal state, and a
            # pop() on it would silently delete the provider's own keys.
            provider_stats = dict(self._app_provider.stats())
            # The provider shares the server cache and pool; their numbers
            # are reported top-level already.
            provider_stats.pop("memo", None)
            provider_stats.pop("pool", None)
        return {
            "ok": True,
            "server": {
                "uptime_s": time.monotonic() - self._started_at,
                "connections": self._connections,
                "requests_total": self._requests_total,
                "decompose_requests": self._decompose_requests,
                "app_requests": self._app_requests,
                "app_executions": self._app_executions,
                "coalesced": self._coalesced,
                "pool_executions": self._pool_executions,
                "errors": self._errors,
                "inflight": len(self._inflight),
                "uploads_in_progress": len(self._upload_sessions),
            },
            "cache": self._cache.stats(),
            "store": self._store.stats(),
            "pool": self._pool.stats(),
            "app_provider": provider_stats,
        }

    async def _op_metrics(self, message: dict) -> dict:
        """This process's metric snapshot (+ Prometheus text rendering).

        The snapshot is the JSON tree :meth:`MetricsRegistry.snapshot`
        produces — mergeable, which is what the cluster router does with
        every shard's answer before handing the union to the client.
        """
        snap = _metrics.snapshot()
        response = {"ok": True, "metrics": snap, "processes": 1}
        if bool(message.get("text", True)):
            response["text"] = render_prometheus(snap)
        return response

    async def _op_shutdown(self, message: dict) -> dict:
        # The response is written before the connection loop reads again;
        # run_async then tears everything down.
        self._stop_event.set()
        return {"ok": True, "stopping": True}

    _OPS = {
        "hello": _op_hello,
        "upload": _op_upload,
        "upload_begin": _op_upload_begin,
        "upload_chunk": _op_upload_chunk,
        "upload_commit": _op_upload_commit,
        "upload_abort": _op_upload_abort,
        "discard": _op_discard,
        "decompose": _op_decompose,
        "spanner": _op_spanner,
        "lowstretch_tree": _op_lowstretch_tree,
        "hierarchy": _op_hierarchy,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "shutdown": _op_shutdown,
    }


@contextmanager
def serve_background(graphs=None, **kwargs):
    """A :class:`DecompositionServer` on a daemon thread, as a context.

    Yields the started server (``server.address`` is the bound
    ``(host, port)``).  Used by tests, benchmarks, and notebook sessions
    where the client lives in the same process::

        with serve_background(graph) as server:
            with ServeClient(*server.address) as client:
                ...

    On exit the server is asked to shut down and the thread joined.
    """
    server = DecompositionServer(graphs, **kwargs)
    ready = threading.Event()
    failure: list[BaseException] = []

    def _runner() -> None:
        try:
            asyncio.run(server.run_async(ready=ready))
        except BaseException as exc:  # pragma: no cover - startup failure
            failure.append(exc)
        finally:
            ready.set()

    thread = threading.Thread(
        target=_runner, daemon=True, name="repro-serve"
    )
    thread.start()
    ready.wait(timeout=60)
    if failure:
        raise failure[0]
    if server.address is None:
        raise ServeError("decomposition server failed to start")
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(timeout=60)
