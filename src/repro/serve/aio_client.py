"""`AsyncServeClient` — pooled, pipelined asyncio client for the service.

The sync :class:`~repro.serve.client.ServeClient` is one connection with
one outstanding request: simple, but a workload of independent requests
pays a full round trip each.  This client removes both serialisation
points:

- **pipelining** — every request carries a client-assigned ``id`` the
  server echoes; many requests ride one connection concurrently and
  responses are matched to awaiting futures as they arrive, in whatever
  order the server finishes them;
- **pooling** — up to ``pool_size`` connections are opened lazily and
  each call rides the least-loaded one, so a slow cold decomposition
  never blocks a stream of warm cache hits behind it.

Protocol negotiation is eager and per-connection: the first frame on a
new connection is a v1 ``hello``, after which the connection speaks the
highest generation both sides support (binary v2 against current
servers).  The operation surface mirrors the sync client —
``upload`` / ``decompose`` / ``spanner`` / ``lowstretch_tree`` /
``hierarchy`` / ``stats`` — returning the same result dataclasses, so
conformance checks (`result_digest()`) are interchangeable across
clients.

Everything here must run on one event loop (the one that created the
client); the class is not thread-safe.  For blocking code, use
:class:`ServeClient`; for sharding across servers, see
:mod:`repro.cluster`.
"""

from __future__ import annotations

import asyncio

from repro.errors import ParameterError, ServeError
from repro.graphs.csr import CSRGraph
from repro.serve.client import (
    ServeHierarchyResult,
    ServeResult,
    ServeSpannerResult,
    ServeTreeResult,
    check_response,
    graph_upload_message,
    hierarchy_from_response,
    negotiated_protocol,
    result_from_response,
    spanner_from_response,
    tree_from_response,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    encode_frame,
    frame_protocol,
    decode_frame_payload,
    parse_frame_length,
    peek_frame_fields,
)
from repro.telemetry import trace as _trace

__all__ = ["AsyncServeClient"]


class _Connection:
    """One pipelined connection: id-keyed futures fed by a reader task."""

    def __init__(self, reader, writer, protocol: int, hello: dict) -> None:
        self._reader = reader
        self._writer = writer
        self.protocol = protocol
        self.hello = hello
        self._pending: dict[int, asyncio.Future] = {}
        #: armed per-request timeout timers, keyed like ``_pending`` — so
        #: teardown can disarm them instead of leaving callbacks scheduled
        #: against a dead connection.
        self._timers: dict[int, asyncio.TimerHandle] = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    # -- lifecycle -----------------------------------------------------
    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        *,
        timeout: float,
        connect_window: float,
        max_protocol: int,
    ) -> "_Connection":
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, float(connect_window))
        delay = 0.05
        while True:
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), timeout
                )
                break
            except (OSError, asyncio.TimeoutError) as exc:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    raise ServeError(
                        f"cannot connect to decomposition server at "
                        f"{host}:{port}: {exc}"
                    ) from None
                await asyncio.sleep(min(delay, remaining))
                delay = min(delay * 2, 0.8)
        # Negotiate before the reader task exists: one v1 hello, one
        # response, nothing else in flight on the stream yet.
        try:
            writer.write(encode_frame({"op": "hello"}, 1))
            await writer.drain()
            hello = check_response(
                await asyncio.wait_for(cls._read_frame(reader), timeout)
            )
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
            writer.close()
            raise ServeError(
                f"handshake with {host}:{port} failed: {exc}"
            ) from None
        except ServeError:
            writer.close()
            raise
        protocol = negotiated_protocol(hello, max_protocol)
        return cls(reader, writer, protocol, hello)

    @staticmethod
    async def _read_frame(reader) -> dict | None:
        try:
            header = await reader.readexactly(4)
        except asyncio.IncompleteReadError:
            return None  # clean EOF at a frame boundary
        length = parse_frame_length(header)
        body = await reader.readexactly(length)
        return decode_frame_payload(body)

    @staticmethod
    async def _read_frame_raw(reader) -> tuple[dict, bytes] | None:
        """(control fields, raw body) of the next frame; ``None`` on EOF.

        Arrays are *not* materialised — the reader loop only needs the
        ``id`` to route the response, and relay callers never decode at
        all.
        """
        try:
            header = await reader.readexactly(4)
        except asyncio.IncompleteReadError:
            return None
        length = parse_frame_length(header)
        body = await reader.readexactly(length)
        return peek_frame_fields(body), body

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def inflight(self) -> int:
        return len(self._pending)

    async def close(self) -> None:
        self._fail_pending(ServeError("connection closed"))
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass

    # -- request/response ----------------------------------------------
    async def call(
        self, message: dict, timeout: float, *, raw: bool = False
    ) -> dict | tuple[dict, bytes]:
        if self._closed:
            raise ServeError("connection closed")
        request_id = self._next_id
        self._next_id += 1
        message = {**message, "id": request_id}
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(
                    encode_frame(message, self.protocol)
                )
                await self._writer.drain()
        except (OSError, ConnectionError) as exc:
            self._pending.pop(request_id, None)
            self._closed = True
            raise ServeError(
                f"connection to server lost: {exc}"
            ) from None
        # A plain timer beats asyncio.wait_for here: no wrapper task per
        # request, and ids make a timeout non-fatal for the stream — the
        # future is dropped and the reader discards the late response.
        handle = loop.call_later(
            timeout, self._expire, request_id, message.get("op"), timeout
        )
        self._timers[request_id] = handle
        try:
            fields, body = await future
        finally:
            self._timers.pop(request_id, None)
            handle.cancel()
        if raw:
            return fields, body
        response = decode_frame_payload(body)
        response.pop("id", None)
        return response

    def _expire(self, request_id: int, op, timeout: float) -> None:
        self._timers.pop(request_id, None)
        future = self._pending.pop(request_id, None)
        if future is not None and not future.done():
            future.set_exception(ServeError(
                f"timed out after {timeout}s waiting for op {op!r}"
            ))

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await self._read_frame_raw(self._reader)
                if frame is None:
                    self._fail_pending(
                        ServeError("server closed the connection")
                    )
                    return
                fields, body = frame
                future = self._pending.pop(fields.get("id"), None)
                if future is not None:
                    if not future.done():
                        future.set_result((fields, body))
                elif not fields.get("ok", True):
                    # An un-addressed error frame is the server's framing
                    # complaint; it will drop the stream next, so every
                    # outstanding request is dead.
                    self._fail_pending(ServeError(
                        f"{fields.get('error', 'Error')}: "
                        f"{fields.get('message', 'server error')}"
                    ))
                    return
        except (OSError, ServeError, asyncio.IncompleteReadError) as exc:
            self._fail_pending(
                ServeError(f"connection to server lost: {exc}")
            )
        except asyncio.CancelledError:
            self._fail_pending(ServeError("connection closed"))
            raise

    def _fail_pending(self, exc: ServeError) -> None:
        self._closed = True
        # Disarm the per-request timeout timers with their futures: a
        # timer surviving teardown would fire `_expire` against a closed
        # connection (and pin the loop open until the latest deadline).
        timers, self._timers = self._timers, {}
        for handle in timers.values():
            handle.cancel()
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)


class AsyncServeClient:
    """Asyncio client with a connection pool and request pipelining.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Per-request seconds to wait for a response (and for connect and
        handshake steps).
    pool_size:
        Maximum connections to open; each call rides the least-loaded
        live connection, new ones are opened only while every existing
        connection is busy.
    connect_window:
        Seconds of exponential-backoff retry for refused connects
        (``0`` = single attempt).
    max_protocol:
        Ceiling on the negotiated protocol generation (``1`` forces
        base64 JSON frames).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 60.0,
        pool_size: int = 4,
        connect_window: float = 2.0,
        max_protocol: int = PROTOCOL_VERSION,
    ) -> None:
        if pool_size < 1:
            raise ParameterError(
                f"pool_size must be >= 1, got {pool_size}"
            )
        if not 1 <= int(max_protocol) <= PROTOCOL_VERSION:
            raise ParameterError(
                f"max_protocol must be in [1, {PROTOCOL_VERSION}], "
                f"got {max_protocol!r}"
            )
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self._pool_size = int(pool_size)
        self._connect_window = float(connect_window)
        self._max_protocol = int(max_protocol)
        self._conns: list[_Connection] = []
        self._open_lock = asyncio.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # pool
    # ------------------------------------------------------------------
    async def _acquire(self) -> _Connection:
        """The least-loaded live connection, opening lazily up to the cap."""
        if self._closed:
            raise ServeError("client is closed")
        self._conns = [c for c in self._conns if not c.closed]
        idle = [c for c in self._conns if c.inflight == 0]
        if idle:
            return idle[0]
        if len(self._conns) < self._pool_size:
            async with self._open_lock:
                if self._closed:
                    raise ServeError("client is closed")
                if len(self._conns) < self._pool_size:
                    conn = await _Connection.open(
                        self._host,
                        self._port,
                        timeout=self._timeout,
                        connect_window=self._connect_window,
                        max_protocol=self._max_protocol,
                    )
                    self._conns.append(conn)
                    return conn
        conns = [c for c in self._conns if not c.closed]
        if not conns:
            raise ServeError("no live connections")
        return min(conns, key=lambda c: c.inflight)

    async def _call(self, message: dict) -> dict:
        if not _trace.tracing_active():
            conn = await self._acquire()
            return check_response(await conn.call(message, self._timeout))
        # Same contract as the sync client: a client root span rides the
        # request header out, and the far side's spans are re-emitted
        # locally off the response.
        with _trace.span(
            f"client.{message.get('op', '?')}", op=message.get("op")
        ) as client_span:
            ctx = client_span.context()
            if ctx is not None:
                message = {**message, "trace": ctx}
            conn = await self._acquire()
            response = check_response(
                await conn.call(message, self._timeout)
            )
            remote = response.pop("spans", None)
            if remote:
                _trace.emit_spans(remote)
            return response

    async def call(self, message: dict, *, check: bool = True) -> dict:
        """Send a raw protocol message and return the response dict.

        With ``check=False`` an ``ok: false`` response is returned instead
        of raised — forwarding layers (the cluster router) relay server
        error frames verbatim while still seeing transport failures as
        :class:`ServeError`.
        """
        conn = await self._acquire()
        response = await conn.call(message, self._timeout)
        return check_response(response) if check else response

    async def call_raw(self, message: dict) -> tuple[dict, bytes]:
        """Relay variant of :meth:`call`: ``(fields, body)`` of the
        response — its control fields (arrays left as descriptors) and
        the raw frame body exactly as received.  Server error frames are
        returned, not raised (``fields`` carries ``ok``/``message``);
        transport failures raise :class:`ServeError`.  The cluster router
        uses this to restamp and splice responses through without ever
        materialising their arrays.
        """
        conn = await self._acquire()
        return await conn.call(message, self._timeout, raw=True)

    @property
    def protocol(self) -> int | None:
        """Negotiated protocol generation (``None`` before any call)."""
        for conn in self._conns:
            if not conn.closed:
                return conn.protocol
        return None

    # ------------------------------------------------------------------
    # operations (mirror ServeClient)
    # ------------------------------------------------------------------
    async def hello(self) -> dict:
        return await self._call({"op": "hello"})

    async def upload(self, graph: CSRGraph) -> str:
        return (await self.upload_graph(graph))["digest"]

    async def upload_graph(self, graph: CSRGraph) -> dict:
        if not isinstance(graph, CSRGraph):
            raise ParameterError(
                f"expected a CSRGraph, got {type(graph).__name__}"
            )
        conn = await self._acquire()
        message = graph_upload_message(graph, conn.protocol)
        return check_response(await conn.call(message, self._timeout))

    async def upload_text(self, payload: str, format: str = "auto") -> dict:
        return await self._call(
            {"op": "upload", "format": format, "payload": payload}
        )

    async def discard(self, digest: str) -> dict:
        return await self._call({"op": "discard", "digest": digest})

    async def decompose(
        self,
        digest: str,
        beta: float,
        *,
        method: str = "auto",
        seed: int = 0,
        validate: bool = False,
        **options: object,
    ) -> ServeResult:
        response = await self._call(
            {
                "op": "decompose",
                "digest": digest,
                "beta": beta,
                "method": method,
                "seed": seed,
                "validate": validate,
                "options": dict(options),
            }
        )
        return result_from_response(response)

    async def spanner(
        self,
        digest: str,
        beta: float,
        *,
        method: str = "auto",
        seed: int = 0,
        **options: object,
    ) -> ServeSpannerResult:
        response = await self._call(
            {
                "op": "spanner",
                "digest": digest,
                "beta": beta,
                "method": method,
                "seed": seed,
                "options": dict(options),
            }
        )
        return spanner_from_response(response)

    async def lowstretch_tree(
        self,
        digest: str,
        *,
        beta: float = 0.5,
        method: str = "auto",
        seed: int = 0,
        max_levels: int = 64,
        **options: object,
    ) -> ServeTreeResult:
        response = await self._call(
            {
                "op": "lowstretch_tree",
                "digest": digest,
                "beta": beta,
                "method": method,
                "seed": seed,
                "max_levels": max_levels,
                "options": dict(options),
            }
        )
        return tree_from_response(response)

    async def hierarchy(
        self,
        digest: str,
        *,
        seed: int = 0,
        method: str = "auto",
        beta_max: float = 0.9,
        radius_constant: float = 1.0,
        **options: object,
    ) -> ServeHierarchyResult:
        response = await self._call(
            {
                "op": "hierarchy",
                "digest": digest,
                "seed": seed,
                "method": method,
                "beta_max": beta_max,
                "radius_constant": radius_constant,
                "options": dict(options),
            }
        )
        return hierarchy_from_response(response)

    async def stats(self) -> dict:
        return await self._call({"op": "stats"})

    async def metrics(self, *, text: bool = True) -> dict:
        return await self._call({"op": "metrics", "text": text})

    async def shutdown(self) -> dict:
        return await self._call({"op": "shutdown"})

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        self._closed = True
        conns, self._conns = self._conns, []
        for conn in conns:
            await conn.close()

    @property
    def closed(self) -> bool:
        return self._closed

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            f"{len(self._conns)} connection(s)"
        )
        return f"AsyncServeClient({state})"
