"""Decomposition service: async server, content-addressed store, cache.

The long-lived serving surface over the shared-memory batch runtime
(:mod:`repro.runtime`) — the layer the ROADMAP's "serve heavy traffic"
goal names.  Clients upload a graph once, then stream
``(digest, beta, method, seed, options)`` requests; the server memoizes
results (decompositions are derandomized, so a warm hit is byte-identical
to a cold computation) and coalesces concurrent duplicates into one pool
execution.

- :mod:`repro.serve.protocol` — length-prefixed JSON frames, array codec,
  canonical cache keys;
- :mod:`repro.serve.store` — :class:`GraphStore`, content addressing by
  :func:`graph_digest`;
- :mod:`repro.serve.cache` — :class:`ResultCache`, byte-budgeted LRU with
  hit/miss/eviction counters;
- :mod:`repro.serve.server` — :class:`DecompositionServer` (asyncio) and
  the :func:`serve_background` thread harness;
- :mod:`repro.serve.client` — blocking :class:`ServeClient` /
  :class:`ServeResult`;
- :mod:`repro.serve.aio_client` — :class:`AsyncServeClient`, a pooled
  asyncio client that pipelines many in-flight requests per connection.

CLI: ``repro serve`` starts a server, ``repro request`` drives it.  See
DESIGN.md §7 for the architecture and the SV benchmark for the latency
numbers the layer exists to hit.
"""

from repro.serve.aio_client import AsyncServeClient
from repro.serve.cache import ResultCache
from repro.serve.client import (
    ServeClient,
    ServeHierarchyResult,
    ServeResult,
    ServeSpannerResult,
    ServeTreeResult,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    canonical_cache_key,
    decode_array,
    encode_array,
)
from repro.serve.server import DecompositionServer, serve_background
from repro.serve.store import GraphStore, graph_digest

__all__ = [
    "DecompositionServer",
    "serve_background",
    "ServeClient",
    "AsyncServeClient",
    "ServeResult",
    "ServeSpannerResult",
    "ServeTreeResult",
    "ServeHierarchyResult",
    "GraphStore",
    "graph_digest",
    "ResultCache",
    "canonical_cache_key",
    "encode_array",
    "decode_array",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
]
