"""Command-line interface: ``repro <subcommand>`` (or ``python -m repro``).

Subcommands
-----------
``decompose``
    Partition a generated or loaded graph and print the summary (optionally
    verify and dump the assignment).
``render``
    Reproduce a Figure 1 panel: decompose a grid and write a PPM image.
``sweep``
    Run a β-sweep on one graph and print the cut-fraction/diameter table —
    the quantitative content of Figure 1.
``methods``
    List available partition methods and graph generators.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel graph decompositions using random shifts "
            "(Miller-Peng-Xu, SPAA 2013) - reproduction CLI"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dec = sub.add_parser("decompose", help="partition a graph")
    p_dec.add_argument(
        "--graph",
        required=True,
        help="generator spec, e.g. grid:100x100, er:500,0.02, path:1000",
    )
    p_dec.add_argument("--beta", type=float, required=True)
    p_dec.add_argument("--method", default="bfs")
    p_dec.add_argument("--seed", type=int, default=0)
    p_dec.add_argument(
        "--validate", action="store_true", help="run invariant checks"
    )
    p_dec.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    p_ren = sub.add_parser("render", help="render a grid decomposition (PPM)")
    p_ren.add_argument("--rows", type=int, default=250)
    p_ren.add_argument("--cols", type=int, default=250)
    p_ren.add_argument("--beta", type=float, required=True)
    p_ren.add_argument("--seed", type=int, default=0)
    p_ren.add_argument("--out", required=True, help="output .ppm path")
    p_ren.add_argument("--scale", type=int, default=1)
    p_ren.add_argument(
        "--ascii", action="store_true", help="also print an ASCII thumbnail"
    )

    p_swp = sub.add_parser("sweep", help="β sweep table on one graph")
    p_swp.add_argument("--graph", required=True)
    p_swp.add_argument(
        "--betas",
        default="0.002,0.005,0.01,0.02,0.05,0.1",
        help="comma-separated β values (default: the Figure 1 set)",
    )
    p_swp.add_argument("--seed", type=int, default=0)
    p_swp.add_argument("--method", default="bfs")

    sub.add_parser("methods", help="list methods and generators")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "decompose":
        return _cmd_decompose(args)
    if args.command == "render":
        return _cmd_render(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "methods":
        return _cmd_methods()
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_decompose(args: argparse.Namespace) -> int:
    from repro.core.partition import partition
    from repro.graphs.generators import by_name

    graph = by_name(args.graph, seed=args.seed)
    result = partition(
        graph,
        args.beta,
        method=args.method,
        seed=args.seed,
        validate=args.validate,
    )
    summary = result.summary()
    summary["n"] = graph.num_vertices
    summary["m"] = graph.num_edges
    if args.validate and result.report is not None:
        summary["invariants_ok"] = result.report.all_invariants_hold()
    if args.json:
        print(json.dumps(summary))
    else:
        for key, value in summary.items():
            print(f"{key:>18}: {value}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.core.partition import partition
    from repro.graphs.generators import grid_2d
    from repro.viz.grid_render import render_grid_ascii, render_grid_ppm

    graph = grid_2d(args.rows, args.cols)
    result = partition(graph, args.beta, seed=args.seed)
    labels = result.decomposition.labels
    path = render_grid_ppm(
        labels, args.rows, args.cols, args.out, scale=args.scale
    )
    print(
        f"wrote {path} ({result.decomposition.num_pieces} pieces, "
        f"cut fraction {result.decomposition.cut_fraction():.4f})"
    )
    if args.ascii:
        print(render_grid_ascii(labels, args.rows, args.cols))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.partition import partition
    from repro.graphs.generators import by_name

    graph = by_name(args.graph, seed=args.seed)
    betas = [float(tok) for tok in args.betas.split(",") if tok.strip()]
    header = (
        f"{'beta':>8} {'pieces':>8} {'max_rad':>8} {'cut_frac':>10} "
        f"{'cut/beta':>9} {'rounds':>7}"
    )
    print(f"graph {args.graph}: n={graph.num_vertices} m={graph.num_edges}")
    print(header)
    for beta in betas:
        result = partition(graph, beta, method=args.method, seed=args.seed)
        d = result.decomposition
        cf = d.cut_fraction()
        print(
            f"{beta:>8.4f} {d.num_pieces:>8d} {d.max_radius():>8d} "
            f"{cf:>10.4f} {cf / beta:>9.3f} {result.trace.rounds:>7d}"
        )
    return 0


def _cmd_methods() -> int:
    from repro.core.partition import PARTITION_METHODS
    from repro.graphs.generators import GENERATORS

    print("partition methods:")
    for name, desc in PARTITION_METHODS.items():
        print(f"  {name:>12}: {desc}")
    print("graph generators:")
    print(" ", ", ".join(sorted(GENERATORS)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
