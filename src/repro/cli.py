"""Command-line interface: ``repro <subcommand>`` (or ``python -m repro``).

Subcommands
-----------
``decompose``
    Decompose a generated graph (optionally lifted to weighted edges via
    ``--weights``) through the unified engine and print the summary.
    ``--option key=value`` forwards validated per-method options;
    ``--reps N`` fans N seeds out through ``decompose_many`` and prints the
    per-run table plus the aggregate.
``render``
    Reproduce a Figure 1 panel: decompose a grid and write a PPM image.
``sweep``
    Run a β-sweep on one graph and print the cut-fraction/diameter table —
    the quantitative content of Figure 1.  ``--reps`` averages each row
    over several seeds.
``bench-throughput``
    Serve the same multi-seed request stream through the shared-memory
    batch runtime and the pickling executors, printing requests/sec, the
    speedup over the baseline, and whether every strategy produced
    bit-identical assignments.
``serve``
    Run the decomposition service (:mod:`repro.serve`): an asyncio
    JSON-over-TCP server with a content-addressed graph store, memoizing
    result cache, and request coalescing.  ``--port 0`` picks a free port
    (written to ``--port-file`` for scripts); ``--ttl`` arms the idle
    shutdown watchdog.
``cluster``
    Run a sharded cluster (:mod:`repro.cluster`): ``--shards N`` spawns N
    decomposition servers on ephemeral ports plus a consistent-hash
    router in front; clients connect to the router's address and every
    serve-protocol op — including ``request`` and the application
    subcommands below — works unchanged, routed to the shard owning each
    graph digest.
``request``
    Drive a running server: upload a generated graph or graph file (or
    reference an earlier upload by ``--digest``), request a decomposition,
    or hit the ``--stats`` / ``--hello`` / ``--shutdown`` operations
    (``--stats`` prints a formatted counter table; ``--json`` gives the
    raw document).
``spanner`` / ``tree`` / ``hst``
    Application ops served end-to-end: build a cluster spanner, an AKPW
    low-stretch spanning forest, or a laminar hierarchy *on the server*
    (op ``spanner`` / ``lowstretch_tree`` / ``hierarchy``), against an
    uploaded graph, through the server's result cache — warm repeats cost
    a frame round trip.
``methods``
    List registered decomposition methods (with their options), graph
    generators and weight schemes; ``--json`` emits the machine-readable
    registry dump the service's handshake advertises.
``trace``
    Pretty-print a JSON-lines trace file (written via ``repro request
    --trace FILE`` or :func:`repro.telemetry.enable_tracing`) as per-trace
    span trees — one line per span, children indented under parents.

Observability flags: ``repro request --metrics`` scrapes a server's (or
cluster's merged) metric registry as Prometheus text; ``--trace FILE``
on ``request`` records the request's distributed span tree; ``--verbose``
(repeatable) attaches a stderr log handler to the ``repro`` logger, which
otherwise stays silent (``NullHandler``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro._version import __version__

__all__ = ["main", "build_parser"]


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    """Run-configuration arguments shared by every engine subcommand."""
    parser.add_argument(
        "--method",
        default="auto",
        help="registered method name ('auto' picks bfs / dijkstra by graph kind)",
    )
    parser.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="per-method option, validated against the method spec "
        "(repeatable), e.g. --option tie_break=permutation",
    )
    parser.add_argument(
        "--weights",
        default=None,
        metavar="SPEC",
        help="lift the graph to weighted edges: unit[:w], uniform:lo,hi, "
        "exp:mean",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width (default: CPU count)",
    )


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    """Config arguments plus the batch-engine repetition controls."""
    _add_config_args(parser)
    parser.add_argument(
        "--reps",
        type=int,
        default=1,
        help="repetitions over consecutive seeds via the batch engine",
    )
    parser.add_argument(
        "--executor",
        choices=("auto", "process", "serial", "shared"),
        default="auto",
        help="batch executor for --reps > 1 ('shared' is the "
        "shared-memory batch runtime)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel graph decompositions using random shifts "
            "(Miller-Peng-Xu, SPAA 2013) - reproduction CLI"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log to stderr (INFO; repeat for DEBUG) — the 'repro' logger "
        "is otherwise silent",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dec = sub.add_parser("decompose", help="partition a graph")
    p_dec.add_argument(
        "--graph",
        required=True,
        help="generator spec, e.g. grid:100x100, er:500,0.02, path:1000",
    )
    p_dec.add_argument("--beta", type=float, required=True)
    p_dec.add_argument("--seed", type=int, default=0)
    _add_engine_args(p_dec)
    p_dec.add_argument(
        "--validate", action="store_true", help="run invariant checks"
    )
    p_dec.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    p_ren = sub.add_parser("render", help="render a grid decomposition (PPM)")
    p_ren.add_argument("--rows", type=int, default=250)
    p_ren.add_argument("--cols", type=int, default=250)
    p_ren.add_argument("--beta", type=float, required=True)
    p_ren.add_argument("--seed", type=int, default=0)
    p_ren.add_argument("--out", required=True, help="output .ppm path")
    p_ren.add_argument("--scale", type=int, default=1)
    p_ren.add_argument(
        "--ascii", action="store_true", help="also print an ASCII thumbnail"
    )

    p_swp = sub.add_parser("sweep", help="β sweep table on one graph")
    p_swp.add_argument("--graph", required=True)
    p_swp.add_argument(
        "--betas",
        default="0.002,0.005,0.01,0.02,0.05,0.1",
        help="comma-separated β values (default: the Figure 1 set)",
    )
    p_swp.add_argument("--seed", type=int, default=0)
    _add_engine_args(p_swp)

    p_bt = sub.add_parser(
        "bench-throughput",
        help="requests/sec of the shared-memory runtime vs pickling "
        "executors on one graph",
    )
    p_bt.add_argument("--graph", required=True)
    p_bt.add_argument("--beta", type=float, required=True)
    p_bt.add_argument("--seed", type=int, default=0)
    p_bt.add_argument(
        "--requests",
        type=int,
        default=32,
        help="requests per executor (consecutive seeds from --seed)",
    )
    p_bt.add_argument(
        "--executors",
        default="pickle,shared",
        help="comma-separated strategies: serial, pickle, process, shared "
        "(the first is the speedup baseline)",
    )
    p_bt.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="passes per executor; the fastest is reported",
    )
    _add_config_args(p_bt)
    p_bt.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    p_srv = sub.add_parser(
        "serve",
        help="run the decomposition service (graph store + result cache)",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    p_srv.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here once listening (for scripts)",
    )
    p_srv.add_argument(
        "--graph",
        action="append",
        default=[],
        metavar="SPEC",
        help="generator spec to preload (repeatable), e.g. grid:100x100",
    )
    p_srv.add_argument(
        "--graph-file",
        action="append",
        default=[],
        metavar="PATH",
        help="graph file to preload (repeatable; format by extension)",
    )
    p_srv.add_argument("--seed", type=int, default=0,
                       help="seed for --graph generation")
    p_srv.add_argument(
        "--weights",
        default=None,
        metavar="SPEC",
        help="lift preloaded --graph specs to weighted edges",
    )
    p_srv.add_argument("--workers", type=int, default=None,
                       help="decomposition pool width (default: CPU count)")
    p_srv.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help="result-cache byte budget (default: 256 MiB)",
    )
    p_srv.add_argument(
        "--ttl",
        type=float,
        default=None,
        help="shut down after this many idle seconds (CI guard rail)",
    )
    p_srv.add_argument(
        "--slow-request-ms",
        type=float,
        default=None,
        help="WARNING-log requests slower than this (default 1000; "
        "0 logs everything; 'off' via --slow-request-ms=-1 disables)",
    )

    p_cl = sub.add_parser(
        "cluster",
        help="run a sharded cluster: N decomposition servers behind a "
        "consistent-hash router",
    )
    p_cl.add_argument(
        "--shards",
        type=int,
        default=2,
        help="number of shard servers to spawn (ephemeral ports)",
    )
    p_cl.add_argument("--host", default="127.0.0.1",
                      help="router bind address")
    p_cl.add_argument(
        "--port", type=int, default=0,
        help="router port; 0 picks a free port"
    )
    p_cl.add_argument(
        "--port-file",
        default=None,
        help="write the router's bound port here once listening",
    )
    p_cl.add_argument(
        "--graph",
        action="append",
        default=[],
        metavar="SPEC",
        help="generator spec to preload through the router (repeatable)",
    )
    p_cl.add_argument(
        "--graph-file",
        action="append",
        default=[],
        metavar="PATH",
        help="graph file to preload (repeatable; format by extension)",
    )
    p_cl.add_argument("--seed", type=int, default=0,
                      help="seed for --graph generation")
    p_cl.add_argument(
        "--weights",
        default=None,
        metavar="SPEC",
        help="lift preloaded --graph specs to weighted edges",
    )
    p_cl.add_argument("--workers", type=int, default=None,
                      help="pool width per shard (default: CPU count)")
    p_cl.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help="result-cache byte budget per shard (default: 256 MiB)",
    )
    p_cl.add_argument(
        "--replicas",
        type=int,
        default=None,
        help="virtual nodes per shard on the hash ring (default: 64)",
    )
    p_cl.add_argument(
        "--ttl",
        type=float,
        default=None,
        help="shut the cluster down after this many idle seconds",
    )
    p_cl.add_argument(
        "--slow-request-ms",
        type=float,
        default=None,
        help="per-shard slow-request log threshold (default 1000; "
        "--slow-request-ms=-1 disables)",
    )

    p_req = sub.add_parser(
        "request", help="send one request to a running decomposition server"
    )
    p_req.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="server address, e.g. 127.0.0.1:7077",
    )
    p_req.add_argument("--timeout", type=float, default=60.0)
    action = p_req.add_mutually_exclusive_group()
    action.add_argument(
        "--stats", action="store_true", help="print server counters"
    )
    action.add_argument(
        "--hello", action="store_true", help="print the handshake"
    )
    action.add_argument(
        "--shutdown", action="store_true", help="stop the server"
    )
    action.add_argument(
        "--metrics",
        action="store_true",
        help="scrape the telemetry registry (Prometheus text; --json for "
        "the mergeable snapshot) — against a cluster router this is the "
        "merged union of every shard",
    )
    p_req.add_argument(
        "--digest", default=None, help="digest of an already-uploaded graph"
    )
    p_req.add_argument(
        "--graph", default=None, help="generator spec to upload and use"
    )
    p_req.add_argument(
        "--graph-file", default=None, help="graph file to upload and use"
    )
    p_req.add_argument("--beta", type=float, default=None)
    p_req.add_argument(
        "--seed", type=int, default=0, help="decomposition seed"
    )
    p_req.add_argument(
        "--graph-seed",
        type=int,
        default=0,
        help="seed for --graph generation (kept separate from --seed so "
        "a decomposition-seed sweep reuses one uploaded graph)",
    )
    p_req.add_argument("--method", default="auto")
    p_req.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="per-method option, validated against the server's registry "
        "dump (repeatable)",
    )
    p_req.add_argument(
        "--weights",
        default=None,
        metavar="SPEC",
        help="lift the generated --graph to weighted edges before upload",
    )
    p_req.add_argument("--validate", action="store_true")
    p_req.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record this request's distributed span tree as JSON lines "
        "(pretty-print later with 'repro trace FILE')",
    )
    p_req.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    for name, help_text in (
        ("spanner", "build a cluster spanner on a running server"),
        ("tree", "build an AKPW low-stretch forest on a running server"),
        ("hst", "build a laminar hierarchy on a running server"),
    ):
        p_app = sub.add_parser(name, help=help_text)
        p_app.add_argument(
            "--connect",
            required=True,
            metavar="HOST:PORT",
            help="server address, e.g. 127.0.0.1:7077",
        )
        p_app.add_argument("--timeout", type=float, default=60.0)
        p_app.add_argument(
            "--digest",
            default=None,
            help="digest of an already-uploaded graph",
        )
        p_app.add_argument(
            "--graph", default=None, help="generator spec to upload and use"
        )
        p_app.add_argument(
            "--graph-file", default=None, help="graph file to upload and use"
        )
        p_app.add_argument(
            "--graph-seed",
            type=int,
            default=0,
            help="seed for --graph generation",
        )
        p_app.add_argument(
            "--seed", type=int, default=0, help="decomposition seed"
        )
        p_app.add_argument("--method", default="auto")
        p_app.add_argument(
            "--option",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="per-method option, validated against the server's "
            "registry dump (repeatable)",
        )
        p_app.add_argument(
            "--json", action="store_true", help="emit machine-readable JSON"
        )
        if name == "spanner":
            p_app.add_argument("--beta", type=float, required=True)
        elif name == "tree":
            p_app.add_argument("--beta", type=float, default=0.5)
            p_app.add_argument("--max-levels", type=int, default=64)
        else:
            p_app.add_argument("--beta-max", type=float, default=0.9)
            p_app.add_argument(
                "--radius-constant", type=float, default=1.0
            )

    p_tr = sub.add_parser(
        "trace",
        help="pretty-print a JSON-lines trace file as span trees",
    )
    p_tr.add_argument(
        "file", help="trace file (from 'repro request --trace FILE')"
    )
    p_tr.add_argument(
        "--trace-id", default=None, help="print only this trace id"
    )
    p_tr.add_argument(
        "--json",
        action="store_true",
        help="emit the parsed span records as a JSON array",
    )

    p_met = sub.add_parser(
        "methods", help="list methods, generators, weight schemes"
    )
    p_met.add_argument(
        "--json",
        action="store_true",
        help="machine-readable registry dump (what the serve handshake "
        "advertises)",
    )
    return parser


def _setup_logging(verbosity: int) -> None:
    """Attach a stderr handler to the ``repro`` logger for ``--verbose``.

    Library code logs through module loggers under ``repro`` with a
    ``NullHandler`` on the root (see :mod:`repro`), so without this the
    CLI is silent — the slow-request WARNINGs included.
    """
    if verbosity <= 0:
        return
    import logging

    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    root = logging.getLogger("repro")
    root.addHandler(handler)
    root.setLevel(logging.INFO if verbosity == 1 else logging.DEBUG)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    _setup_logging(args.verbose)
    try:
        if args.command == "decompose":
            return _cmd_decompose(args)
        if args.command == "render":
            return _cmd_render(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "bench-throughput":
            return _cmd_bench_throughput(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "cluster":
            return _cmd_cluster(args)
        if args.command == "request":
            return _cmd_request(args)
        if args.command in ("spanner", "tree", "hst"):
            return _cmd_application(args)
        if args.command == "methods":
            return _cmd_methods(args)
        if args.command == "trace":
            return _cmd_trace(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2  # pragma: no cover - argparse enforces the choices


def _build_graph(args: argparse.Namespace):
    """Generate the graph spec and optionally lift it to weighted edges."""
    from repro.graphs.generators import by_name
    from repro.graphs.weighted import weights_by_name

    graph = by_name(args.graph, seed=args.seed)
    if args.weights:
        graph = weights_by_name(graph, args.weights, seed=args.seed)
    return graph


def _parse_options(graph, method: str, pairs: list[str]) -> dict[str, object]:
    """Parse repeated ``--option key=value`` against the method's spec."""
    from repro.core.engine import DEFAULT_METHODS, graph_kind
    from repro.core.registry import get_method
    from repro.errors import ParameterError

    name = DEFAULT_METHODS[graph_kind(graph)] if method == "auto" else method
    spec = get_method(name)
    options: dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep:
            raise ParameterError(
                f"--option expects KEY=VALUE, got {pair!r}"
            )
        options[key.strip()] = spec.option(key.strip()).parse(value)
    return options


def _cmd_decompose(args: argparse.Namespace) -> int:
    from repro.core.engine import decompose, decompose_many

    from repro.errors import ParameterError

    if args.reps < 1:
        raise ParameterError(f"--reps must be >= 1, got {args.reps}")
    graph = _build_graph(args)
    options = _parse_options(graph, args.method, args.option)
    if args.reps > 1:
        batch = decompose_many(
            graph,
            args.beta,
            method=args.method,
            seeds=range(args.seed, args.seed + args.reps),
            validate=args.validate,
            executor=args.executor,
            max_workers=args.workers,
            **options,
        )
        aggregate = batch.aggregate()
        aggregate["n"] = graph.num_vertices
        aggregate["m"] = graph.num_edges
        if args.validate:
            aggregate["invariants_ok"] = all(
                run.result.report.all_invariants_hold() for run in batch.runs
            )
        if args.json:
            print(
                json.dumps(
                    {"runs": batch.summaries(), "aggregate": aggregate}
                )
            )
        else:
            for key, value in aggregate.items():
                print(f"{key:>22}: {value}")
        return 0

    result = decompose(
        graph,
        args.beta,
        method=args.method,
        seed=args.seed,
        validate=args.validate,
        **options,
    )
    summary = result.summary()
    summary["n"] = graph.num_vertices
    summary["m"] = graph.num_edges
    if args.validate and result.report is not None:
        summary["invariants_ok"] = result.report.all_invariants_hold()
    if args.json:
        print(json.dumps(summary))
    else:
        for key, value in summary.items():
            print(f"{key:>18}: {value}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.core.engine import decompose
    from repro.graphs.generators import grid_2d
    from repro.viz.grid_render import render_grid_ascii, render_grid_ppm

    graph = grid_2d(args.rows, args.cols)
    result = decompose(graph, args.beta, seed=args.seed)
    labels = result.decomposition.labels
    path = render_grid_ppm(
        labels, args.rows, args.cols, args.out, scale=args.scale
    )
    print(
        f"wrote {path} ({result.decomposition.num_pieces} pieces, "
        f"cut fraction {result.decomposition.cut_fraction():.4f})"
    )
    if args.ascii:
        print(render_grid_ascii(labels, args.rows, args.cols))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.engine import decompose_many

    graph = _build_graph(args)
    options = _parse_options(graph, args.method, args.option)
    betas = [float(tok) for tok in args.betas.split(",") if tok.strip()]
    # One decompose_many per β row: with "auto" a fresh process pool per row
    # would cost more than the row's runs, so the sweep defaults to serial
    # (pass --executor process to force pooling).
    executor = "serial" if args.executor == "auto" else args.executor
    header = (
        f"{'beta':>8} {'pieces':>8} {'max_rad':>8} {'cut_frac':>10} "
        f"{'cut/beta':>9} {'rounds':>7}"
    )
    reps = "" if args.reps == 1 else f" reps={args.reps} (per-row means)"
    print(
        f"graph {args.graph}: n={graph.num_vertices} m={graph.num_edges}{reps}"
    )
    print(header)
    for beta in betas:
        batch = decompose_many(
            graph,
            beta,
            method=args.method,
            seeds=range(args.seed, args.seed + args.reps),
            executor=executor,
            max_workers=args.workers,
            **options,
        )
        agg = batch.aggregate()
        cf = agg["cut_fraction_mean"]
        print(
            f"{beta:>8.4f} {agg['num_pieces_mean']:>8.1f} "
            f"{agg['max_radius_mean']:>8.1f} {cf:>10.4f} "
            f"{cf / beta:>9.3f} {agg['rounds_mean']:>7.1f}"
        )
    return 0


def _cmd_bench_throughput(args: argparse.Namespace) -> int:
    from repro.errors import ParameterError
    from repro.runtime.throughput import measure_throughput

    if args.requests < 1:
        raise ParameterError(f"--requests must be >= 1, got {args.requests}")
    executors = tuple(
        tok.strip() for tok in args.executors.split(",") if tok.strip()
    )
    if not executors:
        raise ParameterError("--executors must name at least one strategy")
    graph = _build_graph(args)
    options = _parse_options(graph, args.method, args.option)
    records = measure_throughput(
        graph,
        args.beta,
        num_requests=args.requests,
        executors=executors,
        max_workers=args.workers,
        method=args.method,
        base_seed=args.seed,
        options=options,
        repeats=args.repeats,
    )
    baseline = records[executors[0]]
    identical = len({r.assignments_digest for r in records.values()}) == 1
    if args.json:
        print(
            json.dumps(
                {
                    "graph": args.graph,
                    "n": graph.num_vertices,
                    "m": graph.num_edges,
                    "beta": args.beta,
                    "requests": args.requests,
                    "identical_assignments": identical,
                    "executors": {
                        name: {
                            "seconds": rec.seconds,
                            "requests_per_sec": rec.requests_per_sec,
                            "speedup": rec.speedup_over(baseline),
                            "digest": rec.assignments_digest,
                        }
                        for name, rec in records.items()
                    },
                }
            )
        )
        return 0 if identical else 1
    print(
        f"graph {args.graph}: n={graph.num_vertices} m={graph.num_edges} "
        f"beta={args.beta} requests={args.requests} repeats={args.repeats}"
    )
    print(
        f"{'executor':>10} {'seconds':>9} {'req/s':>9} "
        f"{'vs ' + executors[0]:>12}"
    )
    for name, rec in records.items():
        print(
            f"{name:>10} {rec.seconds:>9.3f} {rec.requests_per_sec:>9.2f} "
            f"{rec.speedup_over(baseline):>11.2f}x"
        )
    print(
        "assignments identical across executors: "
        + ("yes" if identical else "NO — DETERMINISM BUG")
    )
    return 0 if identical else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.graphs.generators import by_name
    from repro.graphs.io import load_graph
    from repro.graphs.weighted import weights_by_name
    from repro.serve.cache import DEFAULT_MAX_BYTES
    from repro.serve.server import DecompositionServer

    graphs = []
    for spec in args.graph:
        graph = by_name(spec, seed=args.seed)
        if args.weights:
            graph = weights_by_name(graph, args.weights, seed=args.seed)
        graphs.append(graph)
    for path in args.graph_file:
        graphs.append(load_graph(path))
    cache_bytes = (
        DEFAULT_MAX_BYTES if args.cache_bytes is None else args.cache_bytes
    )
    server = DecompositionServer(
        graphs,
        host=args.host,
        port=args.port,
        max_workers=args.workers,
        cache_bytes=cache_bytes,
        idle_ttl=args.ttl,
        **_slow_request_kwargs(args),
    )

    def _announce() -> None:
        host, port = server.address
        print(f"repro.serve listening on {host}:{port}", flush=True)
        for digest in server.preloaded:
            print(f"preloaded graph {digest}", flush=True)
        if args.port_file:
            Path(args.port_file).write_text(f"{port}\n")

    try:
        asyncio.run(server.run_async(ready=_announce))
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        print("interrupted; server stopped", file=sys.stderr)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio
    import threading
    from contextlib import ExitStack
    from pathlib import Path

    from repro.cluster.router import ClusterRouter
    from repro.errors import ParameterError
    from repro.graphs.generators import by_name
    from repro.graphs.io import load_graph
    from repro.graphs.weighted import weights_by_name
    from repro.serve.cache import DEFAULT_MAX_BYTES
    from repro.serve.client import ServeClient
    from repro.serve.server import serve_background

    if args.shards < 1:
        raise ParameterError(f"--shards must be >= 1, got {args.shards}")
    graphs = []
    for spec in args.graph:
        graph = by_name(spec, seed=args.seed)
        if args.weights:
            graph = weights_by_name(graph, args.weights, seed=args.seed)
        graphs.append(graph)
    for path in args.graph_file:
        graphs.append(load_graph(path))
    cache_bytes = (
        DEFAULT_MAX_BYTES if args.cache_bytes is None else args.cache_bytes
    )
    router_kwargs = {}
    if args.replicas is not None:
        router_kwargs["replicas"] = args.replicas
    with ExitStack() as stack:
        shards = [
            stack.enter_context(
                serve_background(
                    max_workers=args.workers,
                    cache_bytes=cache_bytes,
                    **_slow_request_kwargs(args),
                )
            )
            for _ in range(args.shards)
        ]
        router = ClusterRouter(
            [shard.address for shard in shards],
            host=args.host,
            port=args.port,
            owns_shards=True,
            idle_ttl=args.ttl,
            **router_kwargs,
        )
        ready = threading.Event()

        def _announce() -> None:
            # Runs on its own thread: preloads go through the router over
            # a real client connection, which must not block the router's
            # event loop (the ready callback runs on it).
            ready.wait()
            if router.address is None:  # pragma: no cover - startup failure
                return
            host, port = router.address
            for graph in graphs:
                with ServeClient(host, port) as client:
                    response = client.upload_graph(graph)
                print(
                    f"preloaded graph {response['digest']} "
                    f"-> shard {response['shard']}",
                    flush=True,
                )
            print(
                f"repro.cluster routing {len(shards)} shard(s) "
                f"on {host}:{port}",
                flush=True,
            )
            for label in router.shard_labels:
                print(f"shard {label}", flush=True)
            if args.port_file:
                Path(args.port_file).write_text(f"{port}\n")

        announcer = threading.Thread(
            target=_announce, daemon=True, name="repro-cluster-announce"
        )
        announcer.start()
        try:
            asyncio.run(router.run_async(ready=ready))
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            print("interrupted; cluster stopped", file=sys.stderr)
    return 0


def _slow_request_kwargs(args: argparse.Namespace) -> dict:
    """``--slow-request-ms`` → server ctor kwarg (negative disables)."""
    if args.slow_request_ms is None:
        return {}
    value = args.slow_request_ms
    return {"slow_request_ms": None if value < 0 else value}


def _parse_connect(connect: str) -> tuple[str, int]:
    from repro.errors import ParameterError

    host, sep, port = connect.rpartition(":")
    if not sep or not host:
        raise ParameterError(
            f"--connect expects HOST:PORT, got {connect!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ParameterError(
            f"--connect port must be an integer, got {port!r}"
        ) from None


def _remote_options(
    client, method: str, pairs: list[str], kind_hint: str | None
) -> tuple[str, dict[str, object]]:
    """Parse ``--option`` strings against the server's registry dump.

    Returns the (possibly resolved) method name and the typed options.
    This is the remote mirror of :func:`_parse_options`: the handshake's
    method manifest stands in for the local registry, so ``repro request``
    works against servers whose registry differs from the client's.
    """
    from repro.core.registry import OptionSpec
    from repro.errors import ParameterError

    if not pairs:
        return method, {}
    hello = client.hello()
    if method == "auto":
        if kind_hint is None:
            raise ParameterError(
                "--option with --method auto and --digest is ambiguous "
                "(the client cannot resolve 'auto' without the graph); "
                "pass an explicit --method"
            )
        method = hello["default_methods"][kind_hint]
    entry = next(
        (m for m in hello["methods"] if m["name"] == method), None
    )
    if entry is None:
        raise ParameterError(
            f"server does not advertise method {method!r}; available: "
            f"{sorted(m['name'] for m in hello['methods'])}"
        )
    specs = {
        o["name"]: OptionSpec(
            name=o["name"],
            type=o["type"],
            default=o["default"],
            description=o.get("description", ""),
            choices=tuple(o["choices"]) if o.get("choices") else None,
        )
        for o in entry["options"]
    }
    options: dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep:
            raise ParameterError(f"--option expects KEY=VALUE, got {pair!r}")
        key = key.strip()
        if key not in specs:
            raise ParameterError(
                f"method {method!r} has no option {key!r}; accepted "
                f"options: {sorted(specs)}"
            )
        options[key] = specs[key].parse(value)
    return method, options


def _upload_target(
    client, args: argparse.Namespace, *, weights: str | None = None
) -> tuple[str, str | None]:
    """Resolve ``--digest``/``--graph``/``--graph-file`` into a digest.

    Returns ``(digest, kind_hint)`` — the hint is ``None`` when the graph
    was referenced by digest (the client cannot know its kind).
    """
    from repro.errors import ParameterError

    if args.digest is not None:
        return args.digest, None
    if args.graph_file:
        upload = client.upload_file(args.graph_file)
    elif args.graph:
        from repro.graphs.generators import by_name
        from repro.graphs.io import to_json
        from repro.graphs.weighted import weights_by_name

        graph = by_name(args.graph, seed=args.graph_seed)
        if weights:
            graph = weights_by_name(graph, weights, seed=args.graph_seed)
        upload = client.upload_text(to_json(graph), format="json")
    else:
        raise ParameterError(
            f"{args.command} needs --digest, --graph or --graph-file"
        )
    return (
        upload["digest"],
        "weighted" if upload["weighted"] else "unweighted",
    )


def _print_stats_table(doc: dict) -> None:
    """Render the stats document as aligned ``section.key`` rows.

    Derived ratios the counters exist for — cache hit-rate, store dedup
    rate, pool completion — are computed here so operators do not have to.
    """
    def rate(num: float, den: float) -> str:
        return f"{num / den:.1%}" if den else "n/a"

    cache = doc.get("cache") or {}
    store = doc.get("store") or {}
    pool = doc.get("pool") or {}
    derived = {
        "cache": {
            "hit_rate": rate(
                cache.get("hits", 0),
                cache.get("hits", 0) + cache.get("misses", 0),
            ),
            "fill": rate(cache.get("bytes", 0), cache.get("max_bytes", 0)),
        },
        "store": {
            "dedup_rate": rate(
                store.get("dedup_hits", 0), store.get("uploads", 0)
            ),
        },
        "pool": {
            "completion_rate": rate(
                pool.get("completed", 0), pool.get("submitted", 0)
            ),
        },
    }
    for section in (
        "router", "server", "cache", "store", "pool", "app_provider"
    ):
        block = doc.get(section)
        if not isinstance(block, dict):
            continue
        # Scalar rows only: cluster documents nest per-shard blocks the
        # table cannot align (use --json for those).
        rows = {
            k: v for k, v in block.items() if not isinstance(v, (dict, list))
        }
        rows.update(derived.get(section, {}))
        if not rows:
            continue
        print(f"{section}:")
        width = max(len(k) for k in rows)
        for key, value in rows.items():
            if isinstance(value, float):
                value = f"{value:.3f}"
            print(f"  {key:<{width}}  {value}")


def _cmd_request(args: argparse.Namespace) -> int:
    host, port = _parse_connect(args.connect)
    if args.trace:
        from repro.telemetry import trace as _trace

        # Installing the sink activates client-side tracing: every op this
        # command issues rides a span, and the remote spans coming back on
        # each response land in the same file.
        _trace.enable_tracing(args.trace)
    try:
        return _run_request(args, host, port)
    finally:
        if args.trace:
            _trace.disable_tracing()
            print(
                f"trace written to {args.trace} "
                f"(view with: repro trace {args.trace})",
                file=sys.stderr,
            )


def _run_request(args: argparse.Namespace, host: str, port: int) -> int:
    from repro.errors import ParameterError
    from repro.serve.client import ServeClient

    with ServeClient(host, port, timeout=args.timeout) as client:
        if args.shutdown:
            client.shutdown()
            print("server stopping")
            return 0
        if args.metrics:
            doc = client.metrics(text=not args.json)
            if args.json:
                doc.pop("ok", None)
                doc.pop("text", None)
                print(json.dumps(doc))
            else:
                print(doc.get("text", ""), end="")
            return 0
        if args.stats or args.hello:
            doc = client.stats() if args.stats else client.hello()
            doc.pop("ok", None)
            if args.json:
                print(json.dumps(doc))
            elif args.stats:
                _print_stats_table(doc)
            else:
                for key, value in doc.items():
                    print(f"{key}: {value}")
            return 0

        digest, kind_hint = _upload_target(
            client, args, weights=args.weights
        )
        if args.beta is None:
            raise ParameterError("a decompose request needs --beta")
        method, options = _remote_options(
            client, args.method, args.option, kind_hint
        )
        result = client.decompose(
            digest,
            args.beta,
            method=method,
            seed=args.seed,
            validate=args.validate,
            **options,
        )
        doc = {
            "digest": result.digest,
            "kind": result.kind,
            "cached": result.cached,
            "coalesced": result.coalesced,
            "result_digest": result.result_digest(),
            **result.summary,
        }
        if args.json:
            print(json.dumps(doc))
        else:
            for key, value in doc.items():
                print(f"{key:>16}: {value}")
    return 0


def _cmd_application(args: argparse.Namespace) -> int:
    """``repro spanner`` / ``repro tree`` / ``repro hst``."""
    from repro.serve.client import ServeClient

    host, port = _parse_connect(args.connect)
    with ServeClient(host, port, timeout=args.timeout) as client:
        digest, _ = _upload_target(client, args)
        # Application ops are unweighted by construction, so "auto" always
        # resolves against the unweighted default.
        method, options = _remote_options(
            client, args.method, args.option, "unweighted"
        )
        if args.command == "spanner":
            result = client.spanner(
                digest, args.beta, method=method, seed=args.seed, **options
            )
            doc = {
                "digest": result.digest,
                "cached": result.cached,
                "coalesced": result.coalesced,
                "result_digest": result.result_digest(),
                "num_edges": result.num_edges,
                "num_tree_edges": result.num_tree_edges,
                "num_bridge_edges": result.num_bridge_edges,
                "stretch_bound": result.stretch_bound,
                **result.summary,
            }
        elif args.command == "tree":
            result = client.lowstretch_tree(
                digest,
                beta=args.beta,
                method=method,
                seed=args.seed,
                max_levels=args.max_levels,
                **options,
            )
            doc = {
                "digest": result.digest,
                "cached": result.cached,
                "coalesced": result.coalesced,
                "result_digest": result.result_digest(),
                "num_levels": result.num_levels,
                "level_sizes": result.level_sizes,
                "level_betas": result.level_betas,
            }
        else:
            result = client.hierarchy(
                digest,
                seed=args.seed,
                method=method,
                beta_max=args.beta_max,
                radius_constant=args.radius_constant,
                **options,
            )
            doc = {
                "digest": result.digest,
                "cached": result.cached,
                "coalesced": result.coalesced,
                "result_digest": result.result_digest(),
                "num_levels": result.num_levels,
                "pieces_per_level": [
                    int(level.max()) + 1 for level in result.labels
                ],
            }
        if args.json:
            print(json.dumps(doc))
        else:
            for key, value in doc.items():
                print(f"{key:>16}: {value}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import ParameterError
    from repro.telemetry import format_trace_tree, read_spans

    try:
        spans = read_spans(args.file)
    except OSError as exc:
        raise ParameterError(f"cannot read trace file: {exc}") from None
    if args.trace_id:
        spans = [
            s for s in spans if str(s.get("trace_id")) == args.trace_id
        ]
    if not spans:
        print(f"no spans found in {args.file}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(spans))
    else:
        print(format_trace_tree(spans))
    return 0


def _cmd_methods(args: argparse.Namespace) -> int:
    from repro.core.registry import describe_methods, iter_methods
    from repro.graphs.generators import GENERATORS
    from repro.graphs.weighted import WEIGHT_SCHEMES

    if args.json:
        print(
            json.dumps(
                {
                    "methods": describe_methods(),
                    "generators": sorted(GENERATORS),
                    "weight_schemes": dict(sorted(WEIGHT_SCHEMES.items())),
                }
            )
        )
        return 0
    print("partition methods:")
    for spec in iter_methods():
        print(f"  {spec.name:>12} [{spec.kind}]: {spec.description}")
        for opt in spec.options:
            choices = (
                f" (choices: {', '.join(opt.choices)})" if opt.choices else ""
            )
            print(
                f"  {'':>12}  --option {opt.name}=<{opt.type}> "
                f"default={opt.default}{choices}"
            )
    print("graph generators:")
    print(" ", ", ".join(sorted(GENERATORS)))
    print("weight schemes (--weights):")
    for name, desc in sorted(WEIGHT_SCHEMES.items()):
        print(f"  {name:>12}: {desc}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
