"""Command-line interface: ``repro <subcommand>`` (or ``python -m repro``).

Subcommands
-----------
``decompose``
    Decompose a generated graph (optionally lifted to weighted edges via
    ``--weights``) through the unified engine and print the summary.
    ``--option key=value`` forwards validated per-method options;
    ``--reps N`` fans N seeds out through ``decompose_many`` and prints the
    per-run table plus the aggregate.
``render``
    Reproduce a Figure 1 panel: decompose a grid and write a PPM image.
``sweep``
    Run a β-sweep on one graph and print the cut-fraction/diameter table —
    the quantitative content of Figure 1.  ``--reps`` averages each row
    over several seeds.
``bench-throughput``
    Serve the same multi-seed request stream through the shared-memory
    batch runtime and the pickling executors, printing requests/sec, the
    speedup over the baseline, and whether every strategy produced
    bit-identical assignments.
``methods``
    List registered decomposition methods (with their options), graph
    generators and weight schemes.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro._version import __version__

__all__ = ["main", "build_parser"]


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    """Run-configuration arguments shared by every engine subcommand."""
    parser.add_argument(
        "--method",
        default="auto",
        help="registered method name ('auto' picks bfs / dijkstra by graph kind)",
    )
    parser.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="per-method option, validated against the method spec "
        "(repeatable), e.g. --option tie_break=permutation",
    )
    parser.add_argument(
        "--weights",
        default=None,
        metavar="SPEC",
        help="lift the graph to weighted edges: unit[:w], uniform:lo,hi, "
        "exp:mean",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width (default: CPU count)",
    )


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    """Config arguments plus the batch-engine repetition controls."""
    _add_config_args(parser)
    parser.add_argument(
        "--reps",
        type=int,
        default=1,
        help="repetitions over consecutive seeds via the batch engine",
    )
    parser.add_argument(
        "--executor",
        choices=("auto", "process", "serial", "shared"),
        default="auto",
        help="batch executor for --reps > 1 ('shared' is the "
        "shared-memory batch runtime)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel graph decompositions using random shifts "
            "(Miller-Peng-Xu, SPAA 2013) - reproduction CLI"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dec = sub.add_parser("decompose", help="partition a graph")
    p_dec.add_argument(
        "--graph",
        required=True,
        help="generator spec, e.g. grid:100x100, er:500,0.02, path:1000",
    )
    p_dec.add_argument("--beta", type=float, required=True)
    p_dec.add_argument("--seed", type=int, default=0)
    _add_engine_args(p_dec)
    p_dec.add_argument(
        "--validate", action="store_true", help="run invariant checks"
    )
    p_dec.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    p_ren = sub.add_parser("render", help="render a grid decomposition (PPM)")
    p_ren.add_argument("--rows", type=int, default=250)
    p_ren.add_argument("--cols", type=int, default=250)
    p_ren.add_argument("--beta", type=float, required=True)
    p_ren.add_argument("--seed", type=int, default=0)
    p_ren.add_argument("--out", required=True, help="output .ppm path")
    p_ren.add_argument("--scale", type=int, default=1)
    p_ren.add_argument(
        "--ascii", action="store_true", help="also print an ASCII thumbnail"
    )

    p_swp = sub.add_parser("sweep", help="β sweep table on one graph")
    p_swp.add_argument("--graph", required=True)
    p_swp.add_argument(
        "--betas",
        default="0.002,0.005,0.01,0.02,0.05,0.1",
        help="comma-separated β values (default: the Figure 1 set)",
    )
    p_swp.add_argument("--seed", type=int, default=0)
    _add_engine_args(p_swp)

    p_bt = sub.add_parser(
        "bench-throughput",
        help="requests/sec of the shared-memory runtime vs pickling "
        "executors on one graph",
    )
    p_bt.add_argument("--graph", required=True)
    p_bt.add_argument("--beta", type=float, required=True)
    p_bt.add_argument("--seed", type=int, default=0)
    p_bt.add_argument(
        "--requests",
        type=int,
        default=32,
        help="requests per executor (consecutive seeds from --seed)",
    )
    p_bt.add_argument(
        "--executors",
        default="pickle,shared",
        help="comma-separated strategies: serial, pickle, process, shared "
        "(the first is the speedup baseline)",
    )
    p_bt.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="passes per executor; the fastest is reported",
    )
    _add_config_args(p_bt)
    p_bt.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    sub.add_parser("methods", help="list methods, generators, weight schemes")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "decompose":
            return _cmd_decompose(args)
        if args.command == "render":
            return _cmd_render(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "bench-throughput":
            return _cmd_bench_throughput(args)
        if args.command == "methods":
            return _cmd_methods()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2  # pragma: no cover - argparse enforces the choices


def _build_graph(args: argparse.Namespace):
    """Generate the graph spec and optionally lift it to weighted edges."""
    from repro.graphs.generators import by_name
    from repro.graphs.weighted import weights_by_name

    graph = by_name(args.graph, seed=args.seed)
    if args.weights:
        graph = weights_by_name(graph, args.weights, seed=args.seed)
    return graph


def _parse_options(graph, method: str, pairs: list[str]) -> dict[str, object]:
    """Parse repeated ``--option key=value`` against the method's spec."""
    from repro.core.engine import DEFAULT_METHODS, graph_kind
    from repro.core.registry import get_method
    from repro.errors import ParameterError

    name = DEFAULT_METHODS[graph_kind(graph)] if method == "auto" else method
    spec = get_method(name)
    options: dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep:
            raise ParameterError(
                f"--option expects KEY=VALUE, got {pair!r}"
            )
        options[key.strip()] = spec.option(key.strip()).parse(value)
    return options


def _cmd_decompose(args: argparse.Namespace) -> int:
    from repro.core.engine import decompose, decompose_many

    from repro.errors import ParameterError

    if args.reps < 1:
        raise ParameterError(f"--reps must be >= 1, got {args.reps}")
    graph = _build_graph(args)
    options = _parse_options(graph, args.method, args.option)
    if args.reps > 1:
        batch = decompose_many(
            graph,
            args.beta,
            method=args.method,
            seeds=range(args.seed, args.seed + args.reps),
            validate=args.validate,
            executor=args.executor,
            max_workers=args.workers,
            **options,
        )
        aggregate = batch.aggregate()
        aggregate["n"] = graph.num_vertices
        aggregate["m"] = graph.num_edges
        if args.validate:
            aggregate["invariants_ok"] = all(
                run.result.report.all_invariants_hold() for run in batch.runs
            )
        if args.json:
            print(
                json.dumps(
                    {"runs": batch.summaries(), "aggregate": aggregate}
                )
            )
        else:
            for key, value in aggregate.items():
                print(f"{key:>22}: {value}")
        return 0

    result = decompose(
        graph,
        args.beta,
        method=args.method,
        seed=args.seed,
        validate=args.validate,
        **options,
    )
    summary = result.summary()
    summary["n"] = graph.num_vertices
    summary["m"] = graph.num_edges
    if args.validate and result.report is not None:
        summary["invariants_ok"] = result.report.all_invariants_hold()
    if args.json:
        print(json.dumps(summary))
    else:
        for key, value in summary.items():
            print(f"{key:>18}: {value}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.core.engine import decompose
    from repro.graphs.generators import grid_2d
    from repro.viz.grid_render import render_grid_ascii, render_grid_ppm

    graph = grid_2d(args.rows, args.cols)
    result = decompose(graph, args.beta, seed=args.seed)
    labels = result.decomposition.labels
    path = render_grid_ppm(
        labels, args.rows, args.cols, args.out, scale=args.scale
    )
    print(
        f"wrote {path} ({result.decomposition.num_pieces} pieces, "
        f"cut fraction {result.decomposition.cut_fraction():.4f})"
    )
    if args.ascii:
        print(render_grid_ascii(labels, args.rows, args.cols))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.engine import decompose_many

    graph = _build_graph(args)
    options = _parse_options(graph, args.method, args.option)
    betas = [float(tok) for tok in args.betas.split(",") if tok.strip()]
    # One decompose_many per β row: with "auto" a fresh process pool per row
    # would cost more than the row's runs, so the sweep defaults to serial
    # (pass --executor process to force pooling).
    executor = "serial" if args.executor == "auto" else args.executor
    header = (
        f"{'beta':>8} {'pieces':>8} {'max_rad':>8} {'cut_frac':>10} "
        f"{'cut/beta':>9} {'rounds':>7}"
    )
    reps = "" if args.reps == 1 else f" reps={args.reps} (per-row means)"
    print(
        f"graph {args.graph}: n={graph.num_vertices} m={graph.num_edges}{reps}"
    )
    print(header)
    for beta in betas:
        batch = decompose_many(
            graph,
            beta,
            method=args.method,
            seeds=range(args.seed, args.seed + args.reps),
            executor=executor,
            max_workers=args.workers,
            **options,
        )
        agg = batch.aggregate()
        cf = agg["cut_fraction_mean"]
        print(
            f"{beta:>8.4f} {agg['num_pieces_mean']:>8.1f} "
            f"{agg['max_radius_mean']:>8.1f} {cf:>10.4f} "
            f"{cf / beta:>9.3f} {agg['rounds_mean']:>7.1f}"
        )
    return 0


def _cmd_bench_throughput(args: argparse.Namespace) -> int:
    from repro.errors import ParameterError
    from repro.runtime.throughput import measure_throughput

    if args.requests < 1:
        raise ParameterError(f"--requests must be >= 1, got {args.requests}")
    executors = tuple(
        tok.strip() for tok in args.executors.split(",") if tok.strip()
    )
    if not executors:
        raise ParameterError("--executors must name at least one strategy")
    graph = _build_graph(args)
    options = _parse_options(graph, args.method, args.option)
    records = measure_throughput(
        graph,
        args.beta,
        num_requests=args.requests,
        executors=executors,
        max_workers=args.workers,
        method=args.method,
        base_seed=args.seed,
        options=options,
        repeats=args.repeats,
    )
    baseline = records[executors[0]]
    identical = len({r.assignments_digest for r in records.values()}) == 1
    if args.json:
        print(
            json.dumps(
                {
                    "graph": args.graph,
                    "n": graph.num_vertices,
                    "m": graph.num_edges,
                    "beta": args.beta,
                    "requests": args.requests,
                    "identical_assignments": identical,
                    "executors": {
                        name: {
                            "seconds": rec.seconds,
                            "requests_per_sec": rec.requests_per_sec,
                            "speedup": rec.speedup_over(baseline),
                            "digest": rec.assignments_digest,
                        }
                        for name, rec in records.items()
                    },
                }
            )
        )
        return 0 if identical else 1
    print(
        f"graph {args.graph}: n={graph.num_vertices} m={graph.num_edges} "
        f"beta={args.beta} requests={args.requests} repeats={args.repeats}"
    )
    print(
        f"{'executor':>10} {'seconds':>9} {'req/s':>9} "
        f"{'vs ' + executors[0]:>12}"
    )
    for name, rec in records.items():
        print(
            f"{name:>10} {rec.seconds:>9.3f} {rec.requests_per_sec:>9.2f} "
            f"{rec.speedup_over(baseline):>11.2f}x"
        )
    print(
        "assignments identical across executors: "
        + ("yes" if identical else "NO — DETERMINISM BUG")
    )
    return 0 if identical else 1


def _cmd_methods() -> int:
    from repro.core.registry import iter_methods
    from repro.graphs.generators import GENERATORS
    from repro.graphs.weighted import WEIGHT_SCHEMES

    print("partition methods:")
    for spec in iter_methods():
        print(f"  {spec.name:>12} [{spec.kind}]: {spec.description}")
        for opt in spec.options:
            choices = (
                f" (choices: {', '.join(opt.choices)})" if opt.choices else ""
            )
            print(
                f"  {'':>12}  --option {opt.name}=<{opt.type}> "
                f"default={opt.default}{choices}"
            )
    print("graph generators:")
    print(" ", ", ".join(sorted(GENERATORS)))
    print("weight schemes (--weights):")
    for name, desc in sorted(WEIGHT_SCHEMES.items()):
        print(f"  {name:>12}: {desc}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
