"""Unit tests for shift sampling and the ShiftAssignment bundle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.core.shifts import sample_shifts, shifts_from_values


class TestSampleShifts:
    def test_shapes_and_derivations(self):
        sh = sample_shifts(50, 0.2, seed=1)
        assert sh.num_vertices == 50
        assert sh.delta_max == pytest.approx(sh.delta.max())
        np.testing.assert_allclose(sh.start_time, sh.delta_max - sh.delta)
        np.testing.assert_array_equal(
            sh.start_round, np.floor(sh.start_time).astype(np.int64)
        )
        np.testing.assert_allclose(
            sh.tie_key, sh.start_time - sh.start_round
        )

    def test_start_times_nonnegative_min_zero(self):
        sh = sample_shifts(100, 0.1, seed=2)
        assert sh.start_time.min() == pytest.approx(0.0)
        assert np.all(sh.start_time >= 0)

    def test_reproducible(self):
        a = sample_shifts(30, 0.3, seed=5)
        b = sample_shifts(30, 0.3, seed=5)
        np.testing.assert_array_equal(a.delta, b.delta)

    def test_permutation_mode_keys(self):
        sh = sample_shifts(40, 0.2, seed=3, mode="permutation")
        assert sh.mode == "permutation"
        assert np.unique(sh.tie_key).size == 40
        np.testing.assert_allclose(
            np.sort(sh.tie_key), np.arange(40) / 40.0
        )

    def test_mean_scales_with_beta(self):
        lo = sample_shifts(5000, 0.05, seed=4).delta.mean()
        hi = sample_shifts(5000, 0.5, seed=4).delta.mean()
        assert lo == pytest.approx(1 / 0.05, rel=0.1)
        assert hi == pytest.approx(1 / 0.5, rel=0.1)

    def test_radius_certificate_is_delta_max(self):
        sh = sample_shifts(10, 0.5, seed=6)
        assert sh.radius_certificate() == sh.delta_max

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            sample_shifts(0, 0.5)
        with pytest.raises(ParameterError):
            sample_shifts(10, 0.0)
        with pytest.raises(ParameterError):
            sample_shifts(10, 0.5, mode="bogus")

    def test_arrays_read_only(self):
        sh = sample_shifts(5, 0.5, seed=7)
        with pytest.raises(ValueError):
            sh.delta[0] = 1.0
        with pytest.raises(ValueError):
            sh.tie_key[0] = 0.5


class TestShiftsFromValues:
    def test_explicit_values(self):
        sh = shifts_from_values(0.5, np.asarray([1.0, 3.5, 0.25]))
        assert sh.delta_max == 3.5
        np.testing.assert_allclose(sh.start_time, [2.5, 0.0, 3.25])
        np.testing.assert_array_equal(sh.start_round, [2, 0, 3])

    def test_allows_beta_above_one(self):
        # Ablations pass synthetic distributions with arbitrary scale.
        sh = shifts_from_values(2.0, np.asarray([0.1, 0.9]))
        assert sh.beta == 2.0

    def test_rejects_bad_arrays(self):
        with pytest.raises(ParameterError):
            shifts_from_values(0.5, np.asarray([]))
        with pytest.raises(ParameterError):
            shifts_from_values(0.5, np.asarray([-1.0, 2.0]))
        with pytest.raises(ParameterError):
            shifts_from_values(0.5, np.asarray([[1.0], [2.0]]))
