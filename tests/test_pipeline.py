"""Pipeline-layer tests: provider conformance, memoization, serve app ops.

The pipeline contract is that *which backend executes a decomposition never
changes an application's output*: for every registered unweighted method
and several seeds, the cluster spanner's edge set, the AKPW forest's parent
array, and the HST hierarchy's label stack must be bit-identical whether
the decompositions ran on the serial engine (:class:`EngineProvider`), the
shared-memory pool (:class:`PoolProvider`), or a live decomposition server
(:class:`ServeProvider`).  The serve application ops must in turn match the
local pipeline exactly, and repeats must be warm cache hits.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.registry import method_names
from repro.embeddings.hierarchy import hierarchical_decomposition
from repro.errors import ParameterError, ServeError
from repro.graphs.generators import erdos_renyi, grid_2d
from repro.graphs.weighted import weights_by_name
from repro.lowstretch.akpw import akpw_spanning_tree
from repro.pipeline import (
    DecomposeRequest,
    DecompositionProvider,
    EngineProvider,
    PoolProvider,
    ServeProvider,
    default_provider,
    resolve_provider,
)
from repro.rng.seeding import derive_seed, ensure_int_seed
from repro.serve import ServeClient, serve_background
from repro.spanners.cluster_spanner import ldd_spanner

SEEDS = (0, 7)
BETA = 0.3

GRAPH = grid_2d(8, 8)
ER_GRAPH = erdos_renyi(48, 0.12, seed=3)


def _digest(*arrays: np.ndarray) -> str:
    sha = hashlib.sha256()
    for arr in arrays:
        sha.update(np.ascontiguousarray(arr).tobytes())
    return sha.hexdigest()


def _app_digests(graph, method: str, seed: int, provider) -> dict[str, str]:
    """One digest per application output for a configuration."""
    spanner = ldd_spanner(
        graph, BETA, seed=seed, method=method, provider=provider
    )
    tree = akpw_spanning_tree(
        graph, beta=0.4, seed=seed, method=method, provider=provider
    )
    hierarchy = hierarchical_decomposition(
        graph, seed=seed, method=method, provider=provider
    )
    return {
        "spanner": _digest(spanner.spanner.edge_array()),
        "tree": _digest(tree.forest.parent),
        "hierarchy": _digest(*hierarchy.labels),
    }


@pytest.fixture(scope="module")
def serve_stack():
    """One server + one client/provider pair for the whole module."""
    with serve_background(max_workers=2) as server:
        with ServeClient(*server.address) as client:
            yield server, client


@pytest.fixture(scope="module")
def pool_provider():
    with PoolProvider(max_workers=2) as provider:
        yield provider


@pytest.fixture(scope="module")
def serve_provider(serve_stack):
    _, client = serve_stack
    with ServeProvider(client=client) as provider:
        yield provider


@pytest.fixture(scope="module")
def cluster_provider():
    from repro.cluster import ClusterProvider, cluster_background

    with cluster_background(num_shards=2, max_workers=2) as router:
        with ClusterProvider(address=router.address) as provider:
            yield provider


class _CountingEngine(EngineProvider):
    """Engine provider that records every backend execution's graph."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.executed: list = []

    def _decompose_impl(self, graph, digest, beta, method, seed,
                        validate, options):
        self.executed.append(graph)
        return super()._decompose_impl(
            graph, digest, beta, method, seed, validate, options
        )


# ---------------------------------------------------------------------------
# cross-provider application conformance
# ---------------------------------------------------------------------------
class TestApplicationConformance:
    @pytest.mark.parametrize("method", method_names("unweighted"))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_apps_identical_across_providers(
        self, method, seed, pool_provider, serve_provider
    ):
        engine = EngineProvider()
        expected = _app_digests(GRAPH, method, seed, engine)
        for provider in (pool_provider, serve_provider):
            got = _app_digests(GRAPH, method, seed, provider)
            assert got == expected, (
                f"{provider.backend} provider drifted from engine for "
                f"method={method} seed={seed}"
            )

    def test_er_graph_conformance_default_method(
        self, pool_provider, serve_provider
    ):
        engine = EngineProvider()
        expected = _app_digests(ER_GRAPH, "auto", 1, engine)
        for provider in (pool_provider, serve_provider):
            assert _app_digests(ER_GRAPH, "auto", 1, provider) == expected

    def test_weighted_decompose_identical_across_providers(
        self, pool_provider, serve_provider
    ):
        weighted = weights_by_name(GRAPH, "uniform:0.5,2.0", seed=5)
        engine = EngineProvider()
        ref = engine.decompose(weighted, BETA, seed=2).decomposition
        for provider in (pool_provider, serve_provider):
            got = provider.decompose(weighted, BETA, seed=2).decomposition
            np.testing.assert_array_equal(got.center, ref.center)
            np.testing.assert_array_equal(got.radius, ref.radius)


# ---------------------------------------------------------------------------
# provider semantics
# ---------------------------------------------------------------------------
class TestProviderSemantics:
    def test_memo_hit_on_repeat(self):
        provider = EngineProvider()
        a = provider.decompose(GRAPH, BETA, seed=3)
        b = provider.decompose(GRAPH, BETA, seed=3)
        stats = provider.stats()
        assert stats["requests"] == 2
        assert stats["memo_hits"] == 1
        np.testing.assert_array_equal(
            a.decomposition.center, b.decomposition.center
        )

    def test_memo_rehydrates_against_callers_graph(self):
        provider = EngineProvider()
        twin_a = grid_2d(6, 6)
        twin_b = grid_2d(6, 6)  # equal content, distinct object
        provider.decompose(twin_a, BETA, seed=0)
        result = provider.decompose(twin_b, BETA, seed=0)
        assert result.decomposition.graph is twin_b
        assert provider.stats()["memo_hits"] == 1

    def test_memo_disabled(self):
        provider = EngineProvider(memo_bytes=0)
        provider.decompose(GRAPH, BETA, seed=0)
        provider.decompose(GRAPH, BETA, seed=0)
        assert provider.stats()["memo_hits"] == 0

    def test_integer_seed_required(self):
        provider = EngineProvider()
        with pytest.raises(ParameterError, match="integer seed"):
            provider.decompose(GRAPH, BETA, seed=np.random.default_rng(0))
        with pytest.raises(ParameterError, match="integer seed"):
            provider.decompose(GRAPH, BETA, seed=True)

    def test_unknown_method_and_option_fail_fast(self):
        provider = EngineProvider()
        with pytest.raises(ParameterError, match="unknown method"):
            provider.decompose(GRAPH, BETA, method="nope", seed=0)
        with pytest.raises(ParameterError, match="no option"):
            provider.decompose(GRAPH, BETA, seed=0, bogus=1)

    def test_closed_provider_rejects_requests(self):
        provider = EngineProvider()
        provider.close()
        with pytest.raises(ParameterError, match="closed"):
            provider.decompose(GRAPH, BETA, seed=0)

    def test_resolve_provider_default_and_passthrough(self):
        assert resolve_provider(None) is default_provider()
        provider = EngineProvider()
        assert resolve_provider(provider) is provider
        with pytest.raises(ParameterError, match="DecompositionProvider"):
            resolve_provider(object())

    def test_graph_key_matches_store_digest(self):
        from repro.serve.store import graph_digest

        provider = EngineProvider()
        assert provider.graph_key(GRAPH) == graph_digest(GRAPH)
        # Cached second lookup returns the same digest.
        assert provider.graph_key(GRAPH) == graph_digest(GRAPH)

    def test_pool_provider_bounds_resident_graphs(self):
        with PoolProvider(max_workers=1, max_resident_graphs=2) as provider:
            graphs = [grid_2d(4 + i, 4) for i in range(4)]
            for g in graphs:
                provider.decompose(g, BETA, seed=0)
            stats = provider.stats()
            assert stats["resident_graphs"] <= 2
            assert stats["pool"]["graphs"] <= 2

    def test_pool_provider_inline_cutoff_skips_pool(self):
        with PoolProvider(max_workers=1, inline_cutoff=10**6) as provider:
            result = provider.decompose(GRAPH, BETA, seed=0)
            stats = provider.stats()
            assert stats["inline_runs"] == 1
            assert stats["pool"]["submitted"] == 0
            ref = EngineProvider().decompose(GRAPH, BETA, seed=0)
            np.testing.assert_array_equal(
                result.decomposition.center, ref.decomposition.center
            )

    def test_pool_provider_concurrent_threads_with_eviction(self):
        """The serve layer shares one PoolProvider across executor threads;
        a tiny residency bound must not corrupt concurrent requests."""
        from concurrent.futures import ThreadPoolExecutor

        graphs = [grid_2d(4 + i, 5) for i in range(6)]
        expected = [
            EngineProvider().decompose(g, BETA, seed=1).decomposition.center
            for g in graphs
        ]
        # spawn: this pool is created while the module's serve thread is
        # alive, and the test then submits from a thread pool — fork-safe
        # start method removes the fork-under-threads hazard entirely.
        with PoolProvider(
            max_workers=2, max_resident_graphs=2, memo_bytes=0,
            start_method="spawn",
        ) as provider:
            def run(i):
                return provider.decompose(
                    graphs[i], BETA, seed=1
                ).decomposition.center

            with ThreadPoolExecutor(max_workers=4) as tpe:
                results = list(tpe.map(run, list(range(6)) * 3))
        for idx, center in zip(list(range(6)) * 3, results):
            np.testing.assert_array_equal(center, expected[idx])

    def test_serve_provider_needs_client_or_address(self):
        with pytest.raises(ParameterError, match="ServeClient"):
            ServeProvider()

    def test_serve_provider_bounds_server_uploads(self, serve_stack):
        """Own uploads are LRU-discarded server-side past the budget; a
        re-request of an evicted digest self-heals by re-uploading."""
        _, client = serve_stack
        graphs = [grid_2d(3 + i, 4) for i in range(4)]
        before = client.stats()["store"]["graphs"]
        with ServeProvider(
            client=client, max_uploaded_graphs=2, memo_bytes=0
        ) as provider:
            for g in graphs:
                provider.decompose(g, BETA, seed=0)
            resident = client.stats()["store"]["graphs"]
            assert resident - before <= 2
            # The first graph was evicted; requesting it again re-uploads
            # and still returns the right (engine-identical) result.
            ref = EngineProvider().decompose(graphs[0], BETA, seed=0)
            again = provider.decompose(graphs[0], BETA, seed=0)
            np.testing.assert_array_equal(
                again.decomposition.center, ref.decomposition.center
            )

    def test_serve_provider_never_discards_shared_graphs(self, serve_stack):
        """A digest the server already held (preload/another client) is
        not this provider's to discard, whatever the budget."""
        server, client = serve_stack
        shared = grid_2d(9, 9)
        shared_digest = client.upload(shared)  # owned by "another client"
        with ServeProvider(
            client=client, max_uploaded_graphs=1, memo_bytes=0
        ) as provider:
            provider.decompose(shared, BETA, seed=0)
            for g in (grid_2d(3, 7), grid_2d(3, 8)):
                provider.decompose(g, BETA, seed=0)
            # Still resident: a direct decompose by digest must succeed.
            assert client.decompose(shared_digest, BETA, seed=0) is not None

    def test_discard_op_frees_and_reupload_restores(self, serve_stack):
        _, client = serve_stack
        g = grid_2d(7, 3)
        digest = client.upload(g)
        client.decompose(digest, BETA, seed=5)
        client.discard(digest)
        with pytest.raises(ServeError, match="unknown graph digest"):
            client.decompose(digest, BETA, seed=6)
        # Content addressing: the re-upload lands on the same digest and
        # earlier cached results are still valid for it.
        assert client.upload(g) == digest
        assert client.decompose(digest, BETA, seed=5).cached

    def test_abstract_provider_unimplemented(self):
        provider = DecompositionProvider()
        with pytest.raises(NotImplementedError):
            provider.decompose(GRAPH, BETA, seed=0)


class TestSeedDerivation:
    def test_ensure_int_seed_passthrough_and_draw(self):
        assert ensure_int_seed(17) == 17
        drawn = ensure_int_seed(None)
        assert isinstance(drawn, int)
        gen_a = ensure_int_seed(np.random.default_rng(5))
        gen_b = ensure_int_seed(np.random.default_rng(5))
        assert gen_a == gen_b  # same stream, same draw

    def test_ensure_int_seed_rejects_negative_and_bool(self):
        with pytest.raises(ValueError, match="non-negative"):
            ensure_int_seed(-1)
        with pytest.raises(TypeError, match="bool"):
            ensure_int_seed(True)

    def test_derive_seed_deterministic_and_token_sensitive(self):
        assert derive_seed(1, "akpw", 0) == derive_seed(1, "akpw", 0)
        assert derive_seed(1, "akpw", 0) != derive_seed(1, "akpw", 1)
        assert derive_seed(1, "akpw", 0) != derive_seed(2, "akpw", 0)
        assert 0 <= derive_seed(123, "x") < 2**63

    def test_hierarchy_reuses_stable_pieces_across_levels(self):
        provider = EngineProvider()
        hierarchical_decomposition(GRAPH, seed=0, provider=provider)
        stats = provider.stats()
        # Content-keyed sub-seeds make a piece that survives a level issue
        # the identical request again — the memo must see real reuse.
        assert stats["memo_hits"] > 0


# ---------------------------------------------------------------------------
# decompose_batch semantics
# ---------------------------------------------------------------------------
class TestDecomposeBatch:
    def _requests(self):
        return [
            DecomposeRequest(GRAPH, BETA, seed=1),
            DecomposeRequest(ER_GRAPH, 0.4, seed=2),
            DecomposeRequest(GRAPH, BETA, seed=1),  # duplicate of [0]
            DecomposeRequest(GRAPH, 0.5, method="bfs", seed=3),
        ]

    def _serial(self, requests):
        engine = EngineProvider()
        return [
            engine.decompose(
                r.graph, r.beta, method=r.method, seed=r.seed, **r.options
            )
            for r in requests
        ]

    def test_empty_batch(self):
        assert EngineProvider().decompose_batch([]) == []

    def test_results_in_request_order_match_serial(
        self, pool_provider, serve_provider, cluster_provider
    ):
        requests = self._requests()
        expected = self._serial(requests)
        for provider in (
            EngineProvider(), pool_provider, serve_provider,
            cluster_provider,
        ):
            for max_concurrent in (None, 1, 2):
                got = provider.decompose_batch(
                    requests, max_concurrent=max_concurrent
                )
                for want, out in zip(expected, got):
                    np.testing.assert_array_equal(
                        out.decomposition.center, want.decomposition.center
                    )
                    assert out.decomposition.graph is want.decomposition.graph

    def test_equal_requests_execute_once(self):
        provider = _CountingEngine(memo_bytes=0)
        requests = self._requests()
        provider.decompose_batch(requests)
        # 4 requests, one duplicate pair -> 3 backend executions, even
        # with the memo disabled (dedup is batch-local).
        assert len(provider.executed) == 3
        stats = provider.stats()
        assert stats["requests"] == 4
        assert stats["memo_hits"] == 0

    def test_memo_answers_warm_batches(self):
        provider = _CountingEngine()
        requests = self._requests()
        provider.decompose_batch(requests)
        executed = len(provider.executed)
        provider.decompose_batch(requests)
        assert len(provider.executed) == executed  # no new executions
        assert provider.stats()["memo_hits"] == 4
        # decompose() and decompose_batch() share one memo.
        provider.decompose(GRAPH, BETA, seed=1)
        assert len(provider.executed) == executed

    def test_batch_rehydrates_against_each_requests_graph(self):
        provider = EngineProvider()
        twin_a, twin_b = grid_2d(6, 6), grid_2d(6, 6)
        out = provider.decompose_batch([
            DecomposeRequest(twin_a, BETA, seed=0),
            DecomposeRequest(twin_b, BETA, seed=0),
        ])
        assert out[0].decomposition.graph is twin_a
        assert out[1].decomposition.graph is twin_b

    def test_request_validation(self):
        provider = EngineProvider()
        with pytest.raises(ParameterError, match="DecomposeRequest"):
            provider.decompose_batch([object()])
        with pytest.raises(ParameterError, match="integer seed"):
            provider.decompose_batch(
                [DecomposeRequest(GRAPH, BETA, seed=True)]
            )
        with pytest.raises(ParameterError, match="unknown method"):
            provider.decompose_batch(
                [DecomposeRequest(GRAPH, BETA, method="nope")]
            )
        with pytest.raises(ParameterError, match="no option"):
            provider.decompose_batch(
                [DecomposeRequest(GRAPH, BETA, options={"bogus": 1})]
            )

    def test_max_concurrent_validation(self):
        provider = EngineProvider()
        requests = [DecomposeRequest(GRAPH, BETA, seed=0)]
        for bad in (0, -1, True, 1.5):
            with pytest.raises(ParameterError, match="max_concurrent"):
                provider.decompose_batch(requests, max_concurrent=bad)

    def test_closed_provider_rejects_batches(self):
        provider = EngineProvider()
        provider.close()
        with pytest.raises(ParameterError, match="closed"):
            provider.decompose_batch([DecomposeRequest(GRAPH, BETA)])

    def test_inline_cutoff_applies_to_batches(self):
        with PoolProvider(max_workers=1, inline_cutoff=10**6) as provider:
            out = provider.decompose_batch(
                [DecomposeRequest(GRAPH, BETA, seed=0)]
            )
            stats = provider.stats()
            assert stats["inline_runs"] == 1
            assert stats["pool"]["submitted"] == 0
        ref = EngineProvider().decompose(GRAPH, BETA, seed=0)
        np.testing.assert_array_equal(
            out[0].decomposition.center, ref.decomposition.center
        )

    def test_pool_batch_bounds_residency_and_pins_inflight(self):
        """A wide batch over many distinct graphs must respect the
        residency bound without evicting a graph mid-request."""
        graphs = [grid_2d(4 + i, 4) for i in range(6)]
        expected = [
            EngineProvider().decompose(g, BETA, seed=1).decomposition.center
            for g in graphs
        ]
        with PoolProvider(
            max_workers=2, max_resident_graphs=2, memo_bytes=0
        ) as provider:
            out = provider.decompose_batch(
                [DecomposeRequest(g, BETA, seed=1) for g in graphs]
            )
            assert provider.stats()["resident_graphs"] <= 2
        for want, got in zip(expected, out):
            np.testing.assert_array_equal(got.decomposition.center, want)


# ---------------------------------------------------------------------------
# level-parallel applications: determinism across backends and windows
# ---------------------------------------------------------------------------
class TestLevelParallelDeterminism:
    @pytest.mark.parametrize("method", method_names("unweighted"))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_akpw_and_hst_bit_identical_at_any_concurrency(
        self, method, seed, pool_provider, serve_provider, cluster_provider
    ):
        """Level-parallel AKPW/HST ≡ serial, for every registered method,
        on all four providers, serial-forced and unbounded."""
        engine = EngineProvider()
        expected = None
        for provider in (
            engine, pool_provider, serve_provider, cluster_provider
        ):
            for max_concurrent in (1, None):
                tree = akpw_spanning_tree(
                    GRAPH, beta=0.4, seed=seed, method=method,
                    provider=provider, max_concurrent=max_concurrent,
                )
                hierarchy = hierarchical_decomposition(
                    GRAPH, seed=seed, method=method, provider=provider,
                    max_concurrent=max_concurrent,
                )
                got = (
                    _digest(tree.forest.parent),
                    _digest(*hierarchy.labels),
                )
                if expected is None:
                    expected = got
                else:
                    assert got == expected, (
                        f"{provider.backend} drifted at method={method} "
                        f"seed={seed} max_concurrent={max_concurrent}"
                    )

    def test_trivial_pieces_never_reach_the_backend(self):
        """Single-vertex pieces short-circuit locally: every request the
        hierarchy or AKPW sends to the backend has at least one edge."""
        from repro.graphs.build import from_edges

        # Two small components plus three isolated vertices.
        graph = from_edges(
            9, np.asarray([[0, 1], [1, 2], [2, 0], [3, 4], [4, 5]])
        )
        provider = _CountingEngine(memo_bytes=0)
        hierarchical_decomposition(graph, seed=0, provider=provider)
        akpw_spanning_tree(graph, beta=0.4, seed=0, provider=provider)
        assert provider.executed, "applications stopped using the provider"
        assert all(g.num_vertices > 1 for g in provider.executed)
        assert all(g.num_edges > 0 for g in provider.executed)


# ---------------------------------------------------------------------------
# serve application ops
# ---------------------------------------------------------------------------
class TestServeApplicationOps:
    @pytest.fixture(scope="class")
    def uploaded(self, serve_stack):
        _, client = serve_stack
        return client, client.upload(GRAPH)

    def test_spanner_matches_local_and_caches(self, uploaded):
        client, digest = uploaded
        local = ldd_spanner(
            GRAPH, BETA, seed=11, provider=EngineProvider()
        )
        served = client.spanner(digest, BETA, seed=11)
        assert not served.cached
        np.testing.assert_array_equal(
            served.edges, local.spanner.edge_array()
        )
        assert served.stretch_bound == local.stretch_bound
        assert served.num_tree_edges == local.num_tree_edges
        assert served.num_bridge_edges == local.num_bridge_edges
        again = client.spanner(digest, BETA, seed=11)
        assert again.cached
        assert again.result_digest() == served.result_digest()

    def test_tree_matches_local_and_caches(self, uploaded):
        client, digest = uploaded
        local = akpw_spanning_tree(
            GRAPH, beta=0.4, seed=11, provider=EngineProvider()
        )
        served = client.lowstretch_tree(digest, beta=0.4, seed=11)
        np.testing.assert_array_equal(served.parent, local.forest.parent)
        assert served.level_sizes == local.level_sizes
        assert served.level_betas == local.level_betas
        assert client.lowstretch_tree(digest, beta=0.4, seed=11).cached

    def test_hierarchy_matches_local_and_caches(self, uploaded):
        client, digest = uploaded
        local = hierarchical_decomposition(
            GRAPH, seed=11, provider=EngineProvider()
        )
        served = client.hierarchy(digest, seed=11)
        assert served.num_levels == local.num_levels
        for got, want in zip(served.labels, local.labels):
            np.testing.assert_array_equal(got, want)
        assert served.scale == local.scale
        assert client.hierarchy(digest, seed=11).cached

    def test_app_ops_share_cache_namespace_safely(self, uploaded):
        """A spanner and a raw decompose of one config never collide."""
        client, digest = uploaded
        spanner = client.spanner(digest, 0.25, seed=13)
        decomposed = client.decompose(digest, 0.25, seed=13)
        assert spanner.result_digest() != decomposed.result_digest()
        # Both warm independently.
        assert client.spanner(digest, 0.25, seed=13).cached
        assert client.decompose(digest, 0.25, seed=13).cached

    def test_app_op_rejects_weighted_graph(self, serve_stack):
        _, client = serve_stack
        weighted = weights_by_name(grid_2d(5, 5), "unit", seed=0)
        digest = client.upload(weighted)
        with pytest.raises(ServeError, match="unweighted"):
            client.spanner(digest, 0.3, seed=0)

    def test_app_op_unknown_digest(self, serve_stack):
        _, client = serve_stack
        with pytest.raises(ServeError, match="unknown graph digest"):
            client.lowstretch_tree("no-such-digest", seed=0)

    def test_app_op_method_and_options_validated(self, uploaded):
        client, digest = uploaded
        with pytest.raises(ServeError, match="unknown method"):
            client.spanner(digest, BETA, method="nope", seed=0)
        with pytest.raises(ServeError, match="no option"):
            client.spanner(digest, BETA, seed=0, bogus=2)

    def test_stats_report_app_counters(self, serve_stack, uploaded):
        client, digest = uploaded
        client.spanner(digest, BETA, seed=11)  # warm by earlier test or now
        stats = client.stats()
        assert stats["server"]["app_requests"] >= 1
        assert stats["server"]["app_executions"] >= 1
        assert stats["app_provider"]["backend"] == "pool"

    def test_hello_advertises_app_ops(self, serve_stack):
        _, client = serve_stack
        ops = client.hello()["ops"]
        for op in ("spanner", "lowstretch_tree", "hierarchy", "decompose"):
            assert op in ops
