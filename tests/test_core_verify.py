"""Tests for decomposition verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VerificationError
from repro.core.decomposition import Decomposition
from repro.core.ldd_bfs import partition_bfs
from repro.core.verify import (
    strong_diameters,
    verify_decomposition,
)
from repro.graphs.build import from_edges
from repro.graphs.generators import cycle_graph, grid_2d, path_graph


class TestVerifyValidDecompositions:
    def test_algorithm_output_passes(self, medium_grid):
        d, t = partition_bfs(medium_grid, 0.15, seed=0)
        report = verify_decomposition(
            d, beta=0.15, delta_max=t.delta_max
        )
        assert report.all_invariants_hold()
        assert report.radius_within_certificate is True
        assert report.num_pieces == d.num_pieces
        assert report.cut_fraction == pytest.approx(d.cut_fraction())

    def test_exact_diameters_leq_twice_radius(self, small_grid):
        d, _ = partition_bfs(small_grid, 0.3, seed=1)
        report = verify_decomposition(d, exact_diameters=True)
        assert report.diameters_exact
        assert report.max_strong_diameter <= 2 * report.max_radius
        assert report.max_strong_diameter >= report.max_radius

    def test_strong_diameters_function(self, small_grid):
        d, _ = partition_bfs(small_grid, 0.3, seed=2)
        ecc = strong_diameters(d)
        exact = strong_diameters(d, exact=True)
        assert ecc.shape[0] == d.num_pieces
        assert np.all(exact >= ecc)
        assert np.all(exact <= 2 * ecc + 1)


class TestVerifyCatchesViolations:
    def test_disconnected_piece_detected(self):
        # Path 0-1-2-3-4 with a "piece" {0, 4} that is disconnected inside.
        g = path_graph(5)
        center = np.asarray([0, 1, 1, 1, 0])
        hops = np.asarray([0, 0, 1, 1, 1])
        d = Decomposition(graph=g, center=center, hops=hops)
        with pytest.raises(VerificationError, match="connectivity"):
            verify_decomposition(d)
        report = verify_decomposition(d, raise_on_violation=False)
        assert not report.pieces_connected

    def test_wrong_hops_detected(self):
        # Connected pieces but hops inconsistent with in-piece distances.
        g = path_graph(4)
        center = np.asarray([0, 0, 0, 0])
        bad_hops = np.asarray([0, 1, 1, 2])  # vertex 2 is distance 2, not 1
        d = Decomposition(graph=g, center=center, hops=bad_hops)
        report = verify_decomposition(d, raise_on_violation=False)
        assert not report.hops_consistent
        with pytest.raises(VerificationError, match="hop-consistency"):
            verify_decomposition(d)

    def test_radius_certificate_comparison(self):
        g = cycle_graph(12)
        d, t = partition_bfs(g, 0.4, seed=3)
        report = verify_decomposition(d, delta_max=0.0)
        # Radius can't be within a certificate of 0 unless all singletons.
        expected = d.max_radius() == 0
        assert report.radius_within_certificate is expected

    def test_no_certificate_given(self):
        g = grid_2d(4, 4)
        d, _ = partition_bfs(g, 0.4, seed=4)
        report = verify_decomposition(d)
        assert report.radius_within_certificate is None
        assert report.delta_max is None
