"""Tests for the chunked upload ops (upload_begin/chunk/commit/abort).

The chunked path exists so graphs larger than ``MAX_FRAME_BYTES`` can
reach a server without one giant frame: the client declares a manifest
and the graph's content digest, streams raw byte slices, and the server
re-derives both hashes over its spool file before admitting.  Admission
is bit-exact: the committed graph must be digest-identical to the plain
binary upload of the same graph, and decompositions against it must be
byte-identical to local ones.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np
import pytest

from repro.core.engine import decompose
from repro.errors import ServeError
from repro.graphs.generators import erdos_renyi, grid_2d
from repro.graphs.weighted import weights_by_name
from repro.serve import MAX_FRAME_BYTES, ServeClient, graph_digest, serve_background
from repro.serve.protocol import _check_frame_size


def _spool_bytes(server) -> int:
    spool = server._spool_dir
    if spool is None or not os.path.isdir(spool):
        return 0
    return sum(
        os.path.getsize(os.path.join(spool, name))
        for name in os.listdir(spool)
    )


@pytest.fixture(scope="module")
def chunked_server():
    with serve_background(max_workers=1) as server:
        yield server


@pytest.fixture
def client(chunked_server):
    with ServeClient(*chunked_server.address) as c:
        yield c


GRAPH = erdos_renyi(80, 0.08, seed=5)


class TestChunkedUpload:
    def test_roundtrip_with_tiny_chunks(self, chunked_server, client):
        graph = grid_2d(9, 9)
        digest = graph_digest(graph)
        response = client.upload_chunked(graph, chunk_bytes=64)
        assert response["complete"] is True
        assert response["digest"] == digest
        assert response["num_vertices"] == graph.num_vertices
        assert digest in chunked_server._store.digests
        # the admitted copy is served zero-copy from the spool file
        assert chunked_server._pool.stats()["backing_mmap"] >= 1
        client.discard(digest)

    def test_decompose_parity_after_chunked_upload(self, client):
        response = client.upload_chunked(GRAPH, chunk_bytes=512)
        digest = response["digest"]
        served = client.decompose(digest, beta=0.3, seed=4)
        local = decompose(GRAPH, 0.3, seed=4)
        np.testing.assert_array_equal(
            served.center, local.decomposition.center
        )
        np.testing.assert_array_equal(served.hops, local.decomposition.hops)
        client.discard(digest)

    def test_begin_on_resident_digest_is_one_roundtrip(self, client):
        first = client.upload_chunked(GRAPH)
        assert first["known"] in (False, True)
        again = client.upload_chunked(GRAPH)
        assert again["known"] is True
        assert again["complete"] is True
        client.discard(first["digest"])

    def test_weighted_chunked_roundtrip(self, client):
        weighted = weights_by_name(GRAPH, "uniform:0.5,2.0", seed=2)
        response = client.upload_chunked(weighted, chunk_bytes=4096)
        assert response["weighted"] is True
        assert response["digest"] == graph_digest(weighted)
        client.discard(response["digest"])

    def test_digest_mismatch_rejected_and_spool_cleaned(
        self, chunked_server, client
    ):
        graph = grid_2d(6, 6)
        flats = [
            np.ascontiguousarray(a).view(np.uint8).reshape(-1)
            for a in graph.csr_arrays().values()
        ]
        payload = b"".join(f.tobytes() for f in flats)
        manifest = [
            {"name": name, "dtype": "<i8", "shape": [int(a.shape[0])]}
            for name, a in graph.csr_arrays().items()
        ]
        bogus = "0" * 64
        begin = client._call(
            {
                "op": "upload_begin",
                "graph_class": "CSRGraph",
                "digest": bogus,
                "arrays": manifest,
                "payload_sha256": hashlib.sha256(payload).hexdigest(),
                "total_bytes": len(payload),
            }
        )
        assert begin["known"] is False
        client._call(
            {
                "op": "upload_chunk",
                "upload_id": bogus,
                "offset": 0,
                "data": np.frombuffer(payload, dtype=np.uint8),
            }
        )
        with pytest.raises(ServeError, match="digest mismatch"):
            client._call({"op": "upload_commit", "upload_id": bogus})
        assert _spool_bytes(chunked_server) == 0
        assert bogus not in chunked_server._store.digests

    def test_abort_unlinks_spool_file(self, chunked_server, client):
        graph = grid_2d(7, 7)
        digest = graph_digest(graph)
        arrays = graph.csr_arrays()
        manifest = [
            {"name": name, "dtype": "<i8", "shape": [int(a.shape[0])]}
            for name, a in arrays.items()
        ]
        total = sum(a.nbytes for a in arrays.values())
        client._call(
            {
                "op": "upload_begin",
                "graph_class": "CSRGraph",
                "digest": digest,
                "arrays": manifest,
                "payload_sha256": "f" * 64,
                "total_bytes": total,
            }
        )
        assert _spool_bytes(chunked_server) > 0
        response = client._call({"op": "upload_abort", "upload_id": digest})
        assert response["aborted"] is True
        assert _spool_bytes(chunked_server) == 0

    def test_commit_before_complete_is_an_error(self, client):
        graph = grid_2d(5, 5)
        digest = graph_digest(graph)
        arrays = graph.csr_arrays()
        manifest = [
            {"name": name, "dtype": "<i8", "shape": [int(a.shape[0])]}
            for name, a in arrays.items()
        ]
        client._call(
            {
                "op": "upload_begin",
                "graph_class": "CSRGraph",
                "digest": digest,
                "arrays": manifest,
                "payload_sha256": "e" * 64,
                "total_bytes": sum(a.nbytes for a in arrays.values()),
            }
        )
        with pytest.raises(ServeError, match="before the payload"):
            client._call({"op": "upload_commit", "upload_id": digest})
        client._call({"op": "upload_abort", "upload_id": digest})

    def test_chunk_beyond_received_prefix_is_a_gap_error(self, client):
        graph = grid_2d(5, 5)
        digest = graph_digest(graph)
        arrays = graph.csr_arrays()
        manifest = [
            {"name": name, "dtype": "<i8", "shape": [int(a.shape[0])]}
            for name, a in arrays.items()
        ]
        client._call(
            {
                "op": "upload_begin",
                "graph_class": "CSRGraph",
                "digest": digest,
                "arrays": manifest,
                "payload_sha256": "d" * 64,
                "total_bytes": sum(a.nbytes for a in arrays.values()),
            }
        )
        with pytest.raises(ServeError, match="gap"):
            client._call(
                {
                    "op": "upload_chunk",
                    "upload_id": digest,
                    "offset": 8,
                    "data": np.zeros(8, dtype=np.uint8),
                }
            )
        client._call({"op": "upload_abort", "upload_id": digest})


class TestDiscardUnlinksBacking:
    def test_spool_bytes_return_to_zero_after_discard(
        self, chunked_server, client
    ):
        graph = erdos_renyi(70, 0.1, seed=9)
        response = client.upload_chunked(graph, chunk_bytes=8192)
        assert _spool_bytes(chunked_server) > 0
        client.discard(response["digest"])
        assert _spool_bytes(chunked_server) == 0
        assert chunked_server._pool.stats()["backing_mmap"] == 0


class TestAdvertising:
    def test_hello_names_backings_and_chunk_size(self, client):
        hello = client.hello()
        assert hello["graph_backings"] == ["mmap", "ram", "shm"]
        assert hello["upload_chunk_bytes"] > 0

    def test_stats_counts_uploads_in_progress_and_backings(self, client):
        stats = client.stats()
        assert "uploads_in_progress" in stats["server"]
        for key in ("backing_ram", "backing_shm", "backing_mmap"):
            assert key in stats["pool"]


class TestOversizeFrameGuidance:
    def test_frame_ceiling_error_names_the_chunked_ops(self):
        with pytest.raises(ServeError, match="upload_begin"):
            _check_frame_size(MAX_FRAME_BYTES + 1)
