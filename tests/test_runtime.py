"""Tests for the shared-memory batch runtime (repro.runtime)."""

from __future__ import annotations

import pickle
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.core.engine import decompose, decompose_many
from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import erdos_renyi, grid_2d, path_graph
from repro.graphs.weighted import WeightedCSRGraph, weights_by_name
from repro.runtime import (
    DecompositionPool,
    DecompositionRequest,
    SharedCSR,
    SharedWeightedCSR,
    attach_shared,
    measure_throughput,
    share_graph,
)


class TestSharedCSR:
    def test_roundtrip_preserves_graph(self):
        graph = grid_2d(9, 7)
        with share_graph(graph) as shared:
            assert shared.owner
            assert shared.graph == graph
            attached = attach_shared(shared.descriptor)
            assert attached.graph == graph
            assert not attached.owner
            attached.close()

    def test_attachment_is_zero_copy(self):
        graph = path_graph(100)
        with share_graph(graph) as shared:
            attached = attach_shared(shared.descriptor)
            # Both sides view the same physical segment: no array owns its
            # data, and the owner's view aliases the attachment's.
            assert not attached.graph.indices.flags.owndata
            assert not shared.graph.indices.flags.owndata
            attached.graph.indices[:]  # readable
            with pytest.raises((ValueError, RuntimeError)):
                attached.graph.indices[0] = 1  # still immutable
            attached.close()

    def test_weighted_roundtrip(self):
        graph = weights_by_name(grid_2d(6, 6), "uniform:0.5,2.0", seed=3)
        shared = share_graph(graph)
        assert isinstance(shared, SharedWeightedCSR)
        attached = attach_shared(shared.descriptor)
        assert isinstance(attached.graph, WeightedCSRGraph)
        np.testing.assert_array_equal(attached.graph.weights, graph.weights)
        attached.close()
        shared.close()

    def test_descriptor_is_small_and_picklable(self):
        graph = grid_2d(40, 40)
        with share_graph(graph) as shared:
            blob = pickle.dumps(shared.descriptor)
            # The whole point: reattachment tokens are O(1), not O(m).
            assert len(blob) < 2000
            restored = pickle.loads(blob)
            attached = attach_shared(restored)
            assert attached.graph == graph
            attached.close()

    def test_close_unlinks_for_owner(self):
        shared = share_graph(path_graph(10))
        descriptor = shared.descriptor
        shared.close()
        assert shared.closed
        with pytest.raises(ParameterError, match="does not exist"):
            attach_shared(descriptor)
        shared.close()  # idempotent

    def test_attached_close_keeps_segment(self):
        shared = share_graph(path_graph(10))
        attached = attach_shared(shared.descriptor)
        attached.close()
        again = attach_shared(shared.descriptor)  # segment still there
        assert again.graph == shared.graph
        again.close()
        shared.close()

    def test_attached_cannot_unlink(self):
        with share_graph(path_graph(10)) as shared:
            attached = attach_shared(shared.descriptor)
            with pytest.raises(ParameterError, match="owning"):
                attached.unlink()
            attached.close()

    def test_graph_access_after_close_raises(self):
        shared = share_graph(path_graph(10))
        shared.close()
        with pytest.raises(ParameterError, match="closed"):
            shared.graph

    def test_share_rejects_non_graphs(self):
        with pytest.raises(ParameterError, match="CSRGraph"):
            share_graph([[0, 1]])

    def test_typed_wrappers_enforce_graph_class(self):
        with pytest.raises(ParameterError, match="WeightedCSRGraph"):
            SharedWeightedCSR.create(grid_2d(3, 3))

    def test_nbytes_matches_graph_arrays(self):
        graph = grid_2d(5, 5)
        with share_graph(graph) as shared:
            expected = sum(a.nbytes for a in graph.csr_arrays().values())
            assert shared.nbytes() == expected

    def test_plain_shared_csr_on_unweighted(self):
        graph = erdos_renyi(30, 0.2, seed=1)
        with SharedCSR.create(graph) as shared:
            assert type(shared) is SharedCSR
            assert shared.graph == graph


class TestFromArrays:
    def test_csr_from_arrays_zero_copy(self):
        graph = grid_2d(4, 4)
        rebuilt = CSRGraph.from_arrays(graph.csr_arrays())
        assert rebuilt == graph
        assert np.shares_memory(rebuilt.indptr, graph.indptr)

    def test_weighted_from_arrays(self):
        graph = weights_by_name(grid_2d(4, 4), "unit:2.0")
        rebuilt = WeightedCSRGraph.from_arrays(graph.csr_arrays())
        np.testing.assert_array_equal(rebuilt.weights, graph.weights)


class TestDecompositionPool:
    def test_matches_serial_bit_for_bit(self):
        graph = grid_2d(12, 12)
        with DecompositionPool(graph, max_workers=2) as pool:
            pooled = pool.decompose("0", 0.2, seed=7, validate=True)
        serial = decompose(graph, 0.2, seed=7, validate=True)
        np.testing.assert_array_equal(
            pooled.decomposition.center, serial.decomposition.center
        )
        np.testing.assert_array_equal(
            pooled.decomposition.hops, serial.decomposition.hops
        )
        assert pooled.trace.method == serial.trace.method
        assert pooled.report is not None
        assert pooled.report.all_invariants_hold()

    def test_result_rehydrates_against_parent_graph(self):
        graph = grid_2d(8, 8)
        with DecompositionPool(graph) as pool:
            result = pool.decompose("0", 0.3, seed=1)
        # The decomposition's graph is the parent's object, not a copy
        # shipped back through the pipe.
        assert result.decomposition.graph is graph

    def test_multiple_graphs_by_key(self):
        graphs = {"grid": grid_2d(8, 8), "path": path_graph(50)}
        with DecompositionPool(graphs, max_workers=2) as pool:
            assert pool.graph_keys == ("grid", "path")
            assert pool.graph("path") is graphs["path"]
            for key, graph in graphs.items():
                pooled = pool.decompose(key, 0.3, seed=5)
                serial = decompose(graph, 0.3, seed=5)
                np.testing.assert_array_equal(
                    pooled.decomposition.center, serial.decomposition.center
                )

    def test_sequence_input_gets_index_keys(self):
        with DecompositionPool([grid_2d(4, 4), path_graph(9)]) as pool:
            assert pool.graph_keys == ("0", "1")

    def test_weighted_graph_through_pool(self):
        graph = weights_by_name(grid_2d(8, 8), "uniform:0.5,2.0", seed=2)
        with DecompositionPool({"w": graph}) as pool:
            pooled = pool.decompose("w", 0.2, seed=4)
        serial = decompose(graph, 0.2, seed=4)
        np.testing.assert_array_equal(
            pooled.decomposition.center, serial.decomposition.center
        )
        np.testing.assert_array_equal(
            pooled.decomposition.radius, serial.decomposition.radius
        )

    def test_run_preserves_request_order(self):
        graph = grid_2d(8, 8)
        requests = [
            DecompositionRequest(graph_key="0", beta=0.3, seed=s)
            for s in (9, 2, 5)
        ]
        with DecompositionPool(graph, max_workers=2) as pool:
            results = pool.run(requests)
        for req, res in zip(requests, results):
            serial = decompose(graph, 0.3, seed=req.seed)
            np.testing.assert_array_equal(
                res.decomposition.center, serial.decomposition.center
            )

    def test_run_empty_batch(self):
        with DecompositionPool(grid_2d(4, 4)) as pool:
            assert pool.run([]) == []

    def test_options_and_method_forwarded(self):
        graph = grid_2d(8, 8)
        with DecompositionPool(graph) as pool:
            result = pool.decompose(
                "0", 0.3, method="bfs", seed=1, tie_break="permutation"
            )
        assert result.trace.method == "bfs-permutation"

    def test_cancelled_future_does_not_poison_the_pool(self):
        """Cancelling a chained future while the worker still runs must
        neither raise in the callback thread nor break later requests."""
        graph = grid_2d(10, 10)
        with DecompositionPool(graph, max_workers=1) as pool:
            future = pool.submit("0", 0.2, seed=0)
            cancelled = future.cancel()
            # Whatever the race outcome, the pool must keep serving and the
            # future must be in a terminal state once the task drains.
            follow_up = pool.decompose("0", 0.2, seed=1)
            assert follow_up.decomposition.num_pieces >= 1
            if cancelled:
                with pytest.raises(CancelledError):
                    future.result(timeout=10)
            else:
                assert future.result(timeout=10) is not None

    def test_bad_requests_fail_fast_parent_side(self):
        with DecompositionPool(grid_2d(4, 4)) as pool:
            with pytest.raises(ParameterError, match="unknown graph key"):
                pool.submit("nope", 0.3)
            with pytest.raises(ParameterError, match="unknown method"):
                pool.submit("0", 0.3, method="bogus")
            with pytest.raises(ParameterError, match="accepted options"):
                pool.submit("0", 0.3, bogus=1)

    def test_shutdown_unlinks_segments(self):
        pool = DecompositionPool(grid_2d(4, 4))
        descriptor = pool._shared["0"].descriptor
        pool.shutdown()
        assert pool.closed
        with pytest.raises(ParameterError, match="does not exist"):
            attach_shared(descriptor)
        with pytest.raises(ParameterError, match="shut down"):
            pool.submit("0", 0.3)
        with pytest.raises(ParameterError, match="shut down"):
            pool.run([DecompositionRequest(graph_key="0", beta=0.3)])
        pool.shutdown()  # idempotent

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError, match="not a CSRGraph"):
            DecompositionPool({"g": object()})
        with pytest.raises(ParameterError, match="strings"):
            DecompositionPool({0: grid_2d(3, 3)})
        with pytest.raises(ParameterError, match="max_workers"):
            DecompositionPool(grid_2d(3, 3), max_workers=0)

    def test_empty_pool_allowed_for_late_registration(self):
        """A pool may start with no graphs: the serving layer registers
        uploads long after the workers exist."""
        with DecompositionPool(max_workers=1) as pool:
            assert pool.graph_keys == ()
            with pytest.raises(ParameterError, match="unknown graph key"):
                pool.submit("g", 0.3)
            pool.register_graph("g", grid_2d(6, 6))
            result = pool.decompose("g", 0.3, seed=1)
            assert result.decomposition.num_pieces >= 1


class TestLiveRegistration:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_register_on_live_pool_matches_serial(self, start_method):
        """Graphs registered after worker startup must decompose
        bit-identically to serial under both start methods (the lazy
        attach-by-descriptor path)."""
        first = grid_2d(8, 8)
        late = erdos_renyi(60, 0.1, seed=3)
        with DecompositionPool(
            {"first": first}, max_workers=1, start_method=start_method
        ) as pool:
            # Warm the worker on the construction-time graph first, so the
            # late registration exercises attach-after-start.
            pool.decompose("first", 0.3, seed=0)
            pool.register_graph("late", late)
            assert pool.graph_keys == ("first", "late")
            pooled = pool.decompose("late", 0.3, seed=5)
            serial = decompose(late, 0.3, seed=5)
            np.testing.assert_array_equal(
                pooled.decomposition.center, serial.decomposition.center
            )
            np.testing.assert_array_equal(
                pooled.decomposition.hops, serial.decomposition.hops
            )
            assert pooled.decomposition.graph is late

    def test_register_weighted_on_live_pool(self):
        graph = weights_by_name(grid_2d(6, 6), "uniform:0.5,2.0", seed=1)
        with DecompositionPool(max_workers=1) as pool:
            pool.register_graph("w", graph)
            pooled = pool.decompose("w", 0.2, seed=4)
        serial = decompose(graph, 0.2, seed=4)
        np.testing.assert_array_equal(
            pooled.decomposition.radius, serial.decomposition.radius
        )

    def test_unregister_then_reregister_same_key(self):
        """A key re-registered under a fresh segment must serve the new
        graph — workers detect the segment change and re-attach."""
        a, b = grid_2d(5, 5), path_graph(30)
        with DecompositionPool({"g": a}, max_workers=1) as pool:
            res_a = pool.decompose("g", 0.3, seed=2)
            assert res_a.decomposition.graph is a
            pool.unregister_graph("g")
            with pytest.raises(ParameterError, match="unknown graph key"):
                pool.submit("g", 0.3)
            pool.register_graph("g", b)
            res_b = pool.decompose("g", 0.3, seed=2)
            assert res_b.decomposition.graph is b
            serial = decompose(b, 0.3, seed=2)
            np.testing.assert_array_equal(
                res_b.decomposition.center, serial.decomposition.center
            )

    def test_unregister_unlinks_segment(self):
        with DecompositionPool({"g": grid_2d(4, 4)}) as pool:
            descriptor = pool._shared["g"].descriptor
            pool.unregister_graph("g")
            with pytest.raises(ParameterError, match="does not exist"):
                attach_shared(descriptor)
            assert pool.shared_nbytes() == 0

    def test_register_rejects_duplicates_and_bad_inputs(self):
        with DecompositionPool({"g": grid_2d(4, 4)}) as pool:
            with pytest.raises(ParameterError, match="already registered"):
                pool.register_graph("g", grid_2d(3, 3))
            with pytest.raises(ParameterError, match="strings"):
                pool.register_graph(7, grid_2d(3, 3))
            with pytest.raises(ParameterError, match="not a CSRGraph"):
                pool.register_graph("h", object())
            with pytest.raises(ParameterError, match="unknown graph key"):
                pool.unregister_graph("nope")
        with pytest.raises(ParameterError, match="shut down"):
            pool.register_graph("h", grid_2d(3, 3))

    def test_stats_counters(self):
        graph = grid_2d(6, 6)
        with DecompositionPool(graph, max_workers=1) as pool:
            base = pool.stats()
            assert base["submitted"] == 0 and base["graphs"] == 1
            assert base["shared_bytes"] == pool.shared_nbytes()
            pool.decompose("0", 0.3, seed=0)
            pool.run(
                [DecompositionRequest(graph_key="0", beta=0.3, seed=s)
                 for s in (1, 2)]
            )
            stats = pool.stats()
            assert stats["submitted"] == 3
            assert stats["completed"] == 3
            assert stats["failed"] == 0
            assert not stats["closed"]
        assert pool.stats()["closed"]

    def test_stats_batch_failure_counts_per_request(self):
        """A failing request mid-batch must not mark the already-yielded
        successes as failed."""
        graph = grid_2d(6, 6)
        with DecompositionPool(graph, max_workers=1) as pool:
            requests = [
                DecompositionRequest(graph_key="0", beta=0.3, seed=0),
                DecompositionRequest(graph_key="0", beta=-1.0, seed=1),
                DecompositionRequest(graph_key="0", beta=0.3, seed=2),
            ]
            with pytest.raises(Exception):
                # beta is validated inside the method, worker-side; the
                # pool surfaces the per-request exception from map().
                pool.run(requests, chunksize=1)
            stats = pool.stats()
            assert stats["submitted"] == 3
            assert stats["completed"] == 1  # seed=0 finished first
            assert stats["failed"] == 2  # the bad one + the never-yielded one


class TestEngineSharedExecutor:
    def test_shared_matches_serial(self):
        graph = grid_2d(10, 10)
        shared = decompose_many(
            graph, 0.2, seeds=4, executor="shared", max_workers=2
        )
        serial = decompose_many(graph, 0.2, seeds=4, executor="serial")
        for a, b in zip(shared.runs, serial.runs):
            assert (a.graph_index, a.seed) == (b.graph_index, b.seed)
            np.testing.assert_array_equal(
                a.result.decomposition.center, b.result.decomposition.center
            )
            np.testing.assert_array_equal(
                a.result.decomposition.hops, b.result.decomposition.hops
            )

    def test_shared_multi_graph_batch(self):
        graphs = [grid_2d(6, 6), path_graph(40)]
        shared = decompose_many(
            graphs, 0.3, seeds=[5, 9], executor="shared", max_workers=2
        )
        serial = decompose_many(graphs, 0.3, seeds=[5, 9], executor="serial")
        assert [(r.graph_index, r.seed) for r in shared.runs] == [
            (r.graph_index, r.seed) for r in serial.runs
        ]
        for a, b in zip(shared.runs, serial.runs):
            np.testing.assert_array_equal(
                a.result.decomposition.center, b.result.decomposition.center
            )

    def test_unknown_executor_lists_shared(self):
        with pytest.raises(ParameterError, match="shared"):
            decompose_many(grid_2d(4, 4), 0.3, seeds=2, executor="thread")

    def test_auto_matches_serial(self):
        """'auto' may route serial or through the shared runtime depending
        on CPU count — either way per-seed results must be identical."""
        graph = grid_2d(8, 8)
        auto = decompose_many(graph, 0.3, seeds=3, executor="auto")
        serial = decompose_many(graph, 0.3, seeds=3, executor="serial")
        for a, b in zip(auto.runs, serial.runs):
            np.testing.assert_array_equal(
                a.result.decomposition.center, b.result.decomposition.center
            )

    def test_auto_falls_back_to_process_pool_not_serial(self, monkeypatch):
        """No /dev/shm must not cost auto its parallelism: the legacy
        pickling pool is tried before degrading to the serial loop."""
        import repro.core.engine as engine_mod

        pool_calls = []
        real_run_pool = engine_mod._run_pool

        def spying_run_pool(*args, **kwargs):
            pool_calls.append(kwargs.get("strict"))
            return real_run_pool(*args, **kwargs)

        # Non-strict _run_shared reports infrastructure failure as None.
        monkeypatch.setattr(
            engine_mod, "_run_shared", lambda *a, **k: None
        )
        monkeypatch.setattr(engine_mod, "_run_pool", spying_run_pool)
        graph = grid_2d(8, 8)
        auto = decompose_many(
            graph, 0.3, seeds=2, executor="auto", max_workers=2
        )
        assert pool_calls == [False]
        serial = decompose_many(graph, 0.3, seeds=2, executor="serial")
        for a, b in zip(auto.runs, serial.runs):
            np.testing.assert_array_equal(
                a.result.decomposition.center, b.result.decomposition.center
            )

    def test_spawn_start_method_conforms(self):
        """Attach-by-name must work without fork inheritance: a spawned
        worker reattaches purely from the pickled descriptor."""
        graph = grid_2d(6, 6)
        with DecompositionPool(
            graph, max_workers=1, start_method="spawn"
        ) as pool:
            pooled = pool.decompose("0", 0.3, seed=2)
        serial = decompose(graph, 0.3, seed=2)
        np.testing.assert_array_equal(
            pooled.decomposition.center, serial.decomposition.center
        )
        np.testing.assert_array_equal(
            pooled.decomposition.hops, serial.decomposition.hops
        )


class TestThroughput:
    def test_records_and_digests(self):
        graph = erdos_renyi(120, 0.1, seed=0)
        records = measure_throughput(
            graph,
            0.3,
            num_requests=4,
            executors=("serial", "shared"),
            max_workers=1,
        )
        assert set(records) == {"serial", "shared"}
        digests = {rec.assignments_digest for rec in records.values()}
        assert len(digests) == 1
        for rec in records.values():
            assert rec.num_requests == 4
            assert rec.requests_per_sec > 0

    def test_speedup_over(self):
        graph = path_graph(60)
        records = measure_throughput(
            graph, 0.3, num_requests=2, executors=("serial",)
        )
        rec = records["serial"]
        assert rec.speedup_over(rec) == pytest.approx(1.0)

    def test_rejects_bad_arguments(self):
        graph = path_graph(10)
        with pytest.raises(ParameterError, match="unknown throughput"):
            measure_throughput(graph, 0.3, executors=("warp",))
        with pytest.raises(ParameterError, match="num_requests"):
            measure_throughput(graph, 0.3, num_requests=0)
        with pytest.raises(ParameterError, match="repeats"):
            measure_throughput(graph, 0.3, repeats=0)
        with pytest.raises(ParameterError, match="max_workers"):
            measure_throughput(graph, 0.3, max_workers=0)
