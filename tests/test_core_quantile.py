"""Tests for the §5 quantile-shift variant (shifts from permutation ranks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import decompose
from repro.core.shifts import sample_shifts
from repro.core.verify import verify_decomposition
from repro.graphs.generators import erdos_renyi, grid_2d
from repro.rng.exponential import exponential_cdf


class TestQuantileShifts:
    def test_deltas_are_exponential_quantiles(self):
        n, beta = 64, 0.25
        sh = sample_shifts(n, beta, seed=0, mode="quantile")
        # Sorted deltas must be exactly F^{-1}((r+1/2)/n), r = 0..n-1.
        expected = -np.log1p(-(np.arange(n) + 0.5) / n) / beta
        np.testing.assert_allclose(np.sort(sh.delta), expected)

    def test_distinct_deltas_one_per_rank(self):
        sh = sample_shifts(50, 0.3, seed=1, mode="quantile")
        assert np.unique(sh.delta).size == 50

    def test_randomness_only_in_the_permutation(self):
        a = sample_shifts(40, 0.2, seed=2, mode="quantile")
        b = sample_shifts(40, 0.2, seed=3, mode="quantile")
        # Different assignment, identical multiset of shift values.
        assert not np.array_equal(a.delta, b.delta)
        np.testing.assert_allclose(np.sort(a.delta), np.sort(b.delta))

    def test_mode_label(self):
        sh = sample_shifts(10, 0.5, seed=4, mode="quantile")
        assert sh.mode == "quantile"

    def test_empirical_cdf_close_to_exponential(self):
        # The stratified sample's empirical CDF matches Exp(beta) closely —
        # closer than an i.i.d. sample of the same size would.
        n, beta = 400, 0.1
        sh = sample_shifts(n, beta, seed=5, mode="quantile")
        xs = np.sort(sh.delta)
        empirical = (np.arange(n) + 1) / n
        theoretical = exponential_cdf(xs, beta)
        assert np.max(np.abs(empirical - theoretical)) < 2.0 / n + 1e-9


class TestQuantilePartition:
    def test_valid_partition(self):
        g = grid_2d(15, 15)
        result = decompose(g, 0.2, method="quantile", seed=6, validate=True)
        assert result.report.all_invariants_hold()
        assert result.trace.method == "bfs-quantile"

    def test_radius_certificate_still_holds(self):
        g = erdos_renyi(120, 0.04, seed=7)
        result = decompose(g, 0.3, method="quantile", seed=8)
        assert result.decomposition.max_radius() <= result.trace.delta_max

    def test_statistics_comparable_to_iid_exponential(self):
        # The paper conjectures the variant behaves like the original; at
        # matched (graph, beta) their cut fractions should agree within
        # sampling noise.
        g = grid_2d(30, 30)
        beta = 0.1
        iid = [
            decompose(g, beta, method="bfs", seed=s).decomposition.cut_fraction()
            for s in range(8)
        ]
        qtl = [
            decompose(
                g, beta, method="quantile", seed=s
            ).decomposition.cut_fraction()
            for s in range(8)
        ]
        assert abs(np.mean(iid) - np.mean(qtl)) < 0.03
