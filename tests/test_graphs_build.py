"""Unit tests for graph builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.build import (
    empty_graph,
    from_adjacency,
    from_arcs,
    from_edges,
)


class TestFromEdges:
    def test_deduplicates_both_orientations(self):
        g = from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_dedup_false_requires_unique(self):
        # Duplicates with dedup=False produce an asymmetric multi-arc CSR
        # that the validator rejects — never silently wrong.
        with pytest.raises(GraphError):
            from_edges(2, [(0, 1), (0, 1)], dedup=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError, match="out of range"):
            from_edges(2, [(0, 5)])

    def test_rejects_negative_vertex_count(self):
        with pytest.raises(GraphError):
            from_edges(-1, [])

    def test_rejects_bad_shape(self):
        with pytest.raises(GraphError, match="shape"):
            from_edges(3, np.asarray([[0, 1, 2]]))

    def test_empty_edge_list(self):
        g = from_edges(4, [])
        assert g.num_edges == 0
        assert g.num_vertices == 4

    def test_sequence_of_tuples_accepted(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        assert g.num_edges == 2


class TestFromArcs:
    def test_round_trip_from_existing_graph(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)])
        g2 = from_arcs(4, g.arc_sources(), g.indices)
        assert g == g2

    def test_shape_mismatch(self):
        with pytest.raises(GraphError, match="equal shapes"):
            from_arcs(2, np.asarray([0]), np.asarray([1, 0]))

    def test_asymmetric_arcs_rejected(self):
        with pytest.raises(GraphError):
            from_arcs(3, np.asarray([0, 1]), np.asarray([1, 2]))


class TestFromAdjacency:
    def test_basic(self):
        g = from_adjacency([[1, 2], [0], [0]])
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(0, 2)

    def test_one_sided_listing_symmetrised(self):
        g = from_adjacency([[1], [], []])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_empty_adjacency(self):
        g = from_adjacency([[], [], []])
        assert g.num_vertices == 3 and g.num_edges == 0


class TestEmptyGraph:
    def test_sizes(self):
        g = empty_graph(7)
        assert g.num_vertices == 7 and g.num_edges == 0

    def test_zero_vertices(self):
        assert empty_graph(0).num_vertices == 0

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            empty_graph(-3)


class TestNetworkxInterop:
    def test_round_trip(self):
        nx = pytest.importorskip("networkx")
        from repro.graphs.build import from_networkx, to_networkx

        g = from_edges(5, [(0, 1), (1, 2), (3, 4)])
        back = from_networkx(to_networkx(g))
        assert back == g

    def test_matches_networkx_degrees(self):
        nx = pytest.importorskip("networkx")
        from repro.graphs.build import from_networkx

        gnx = nx.petersen_graph()
        g = from_networkx(gnx)
        assert g.num_edges == gnx.number_of_edges()
        for v in range(10):
            assert g.degree(v) == gnx.degree[v]
