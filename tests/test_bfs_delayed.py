"""Unit tests for the delayed-start shifted BFS — the paper's key primitive."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.bfs.delayed import delayed_multisource_bfs, resolve_claims
from repro.bfs.dijkstra import shifted_integer_dijkstra
from repro.graphs.build import from_edges
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
)


class TestResolveClaims:
    def test_min_key_wins(self):
        key = np.asarray([0.9, 0.1, 0.5])
        cand_v = np.asarray([7, 7, 7])
        cand_c = np.asarray([0, 1, 2])
        winners, owners = resolve_claims(cand_v, cand_c, key)
        np.testing.assert_array_equal(winners, [7])
        np.testing.assert_array_equal(owners, [1])

    def test_exact_tie_falls_back_to_center_id(self):
        key = np.asarray([0.5, 0.5])
        winners, owners = resolve_claims(
            np.asarray([3, 3]), np.asarray([1, 0]), key
        )
        np.testing.assert_array_equal(owners, [0])

    def test_multiple_vertices(self):
        key = np.asarray([0.3, 0.2])
        cand_v = np.asarray([0, 1, 1])
        cand_c = np.asarray([0, 0, 1])
        winners, owners = resolve_claims(cand_v, cand_c, key)
        np.testing.assert_array_equal(winners, [0, 1])
        np.testing.assert_array_equal(owners, [0, 1])

    def test_non_finite_inputs_rejected(self):
        """NaN start times / tie keys must fail fast: NaN slips past
        ordinary `< 0` guards and would diverge the two resolve paths."""
        g = path_graph(4)
        bad_start = np.asarray([0.0, np.nan, 0.5, 1.0])
        with pytest.raises(ParameterError, match="finite"):
            delayed_multisource_bfs(g, bad_start)
        with pytest.raises(ParameterError, match="finite"):
            delayed_multisource_bfs(g, np.full(4, np.inf))
        ok_start = np.asarray([0.0, 0.25, 0.5, 1.0])
        with pytest.raises(ParameterError, match="finite"):
            delayed_multisource_bfs(
                g, ok_start, tie_key=np.asarray([0.1, np.nan, 0.2, 0.3])
            )

    @pytest.mark.parametrize("trial", range(5))
    def test_scatter_path_matches_semisort_path(self, trial):
        """The O(C + n) scatter implementation must pick bit-identical
        winners to the lexsort semisort for the same candidate multiset,
        including exact key ties resolved by center id."""
        rng = np.random.default_rng(trial)
        n = 50
        count = 3000  # >> n and > the 1024 floor: forces the scatter path
        cand_v = rng.integers(0, n, count)
        cand_c = rng.integers(0, n, count)
        # Coarse keys make exact ties common, exercising the fallback rule.
        # kernel="python" is pinned explicitly: under kernel="auto" with the
        # extension built, both calls would route to the native kernel and
        # this test would stop comparing the two numpy implementations.
        key = rng.integers(0, 4, n) / 4.0
        semisort = resolve_claims(cand_v, cand_c, key, kernel="python")
        scatter = resolve_claims(
            cand_v, cand_c, key, num_vertices=n, kernel="python"
        )
        np.testing.assert_array_equal(semisort[0], scatter[0])
        np.testing.assert_array_equal(semisort[1], scatter[1])


class TestDelayedBFSBasics:
    def test_single_early_riser_claims_everything(self):
        g = path_graph(6)
        start = np.asarray([0.0, 9.0, 9.0, 9.0, 9.0, 9.0])
        res = delayed_multisource_bfs(g, start)
        np.testing.assert_array_equal(res.center, np.zeros(6, dtype=np.int64))
        np.testing.assert_array_equal(res.hops, np.arange(6))

    def test_two_centers_split_path(self):
        g = path_graph(7)
        start = np.full(7, 99.0)
        start[0] = 0.25
        start[6] = 0.75
        res = delayed_multisource_bfs(g, start)
        # Vertex 3 is tied at round 3; center 0 has smaller fractional key.
        np.testing.assert_array_equal(res.center[:4], [0, 0, 0, 0])
        np.testing.assert_array_equal(res.center[4:], [6, 6, 6])

    def test_everyone_wakes_simultaneously(self):
        g = grid_2d(4, 4)
        res = delayed_multisource_bfs(g, np.zeros(16))
        # All vertices claim themselves in round 0: singleton pieces.
        np.testing.assert_array_equal(res.center, np.arange(16))
        assert res.num_rounds == 1

    def test_round_claimed_equals_floor_start_plus_hops(self):
        g = grid_2d(5, 5)
        rng = np.random.default_rng(0)
        start = rng.random(25) * 7
        res = delayed_multisource_bfs(g, start)
        floor = np.floor(start).astype(np.int64)
        np.testing.assert_array_equal(
            res.round_claimed, floor[res.center] + res.hops
        )

    def test_all_vertices_assigned(self):
        g = erdos_renyi(60, 0.03, seed=5)  # possibly disconnected
        rng = np.random.default_rng(1)
        res = delayed_multisource_bfs(g, rng.random(60) * 5)
        assert np.all(res.center >= 0)
        assert np.all(res.hops >= 0)

    def test_centers_are_fixed_points(self):
        g = grid_2d(6, 6)
        rng = np.random.default_rng(2)
        res = delayed_multisource_bfs(g, rng.random(36) * 10)
        np.testing.assert_array_equal(
            res.center[res.center], res.center
        )

    def test_idle_round_jumping(self):
        # One center at t=0, next wake far in the future: the engine must
        # jump over the idle gap, not execute 1000 empty rounds.
        g = from_edges(3, [(0, 1)])  # vertex 2 isolated
        start = np.asarray([0.0, 5.0, 1000.5])
        res = delayed_multisource_bfs(g, start)
        assert res.center[2] == 2
        assert res.active_rounds <= 3
        assert res.num_rounds == 1001  # wall-clock rounds span the gap

    def test_work_bounded_by_arcs_plus_n(self):
        g = grid_2d(8, 8)
        rng = np.random.default_rng(3)
        res = delayed_multisource_bfs(g, rng.random(64) * 6)
        assert res.work <= g.num_arcs + g.num_vertices

    def test_input_validation(self):
        g = path_graph(3)
        with pytest.raises(ParameterError):
            delayed_multisource_bfs(g, np.zeros(2))
        with pytest.raises(ParameterError):
            delayed_multisource_bfs(g, np.asarray([-1.0, 0.0, 0.0]))
        with pytest.raises(ParameterError):
            delayed_multisource_bfs(g, np.zeros(3), tie_key=np.zeros(2))


class TestCenterMaskAndCap:
    def test_center_mask_limits_owners(self):
        g = path_graph(8)
        start = np.zeros(8)
        mask = np.zeros(8, dtype=bool)
        mask[0] = True
        res = delayed_multisource_bfs(g, start, center_mask=mask)
        np.testing.assert_array_equal(res.center, np.zeros(8, dtype=np.int64))

    def test_center_mask_leaves_unreached_unowned(self, two_triangles):
        start = np.zeros(6)
        mask = np.zeros(6, dtype=bool)
        mask[0] = True  # only the first triangle has a center
        res = delayed_multisource_bfs(two_triangles, start, center_mask=mask)
        assert np.all(res.center[:3] == 0)
        assert np.all(res.center[3:] == -1)
        assert np.all(res.hops[3:] == -1)

    def test_all_false_mask_rejected(self):
        with pytest.raises(ParameterError):
            delayed_multisource_bfs(
                path_graph(3), np.zeros(3), center_mask=np.zeros(3, dtype=bool)
            )

    def test_max_round_caps_growth(self):
        g = path_graph(10)
        start = np.zeros(10)
        mask = np.zeros(10, dtype=bool)
        mask[0] = True
        res = delayed_multisource_bfs(
            g, start, center_mask=mask, max_round=3
        )
        assert np.all(res.center[:4] == 0)
        # Unclaimed vertices follow the -1 convention in every per-vertex
        # array, not just `center` — a capped run leaves them untouched.
        assert np.all(res.center[4:] == -1)
        assert np.all(res.hops[4:] == -1)
        assert np.all(res.round_claimed[4:] == -1)

    @pytest.mark.parametrize("kernel", ["python", "auto"])
    def test_cap_below_first_wake_reports_zero_rounds(self, kernel):
        """Regression: `max_round` below the earliest wake used to report
        num_rounds=1 even though the round loop never executed."""
        g = path_graph(6)
        start = np.full(6, 7.5)  # first wake in round 7
        res = delayed_multisource_bfs(g, start, max_round=3, kernel=kernel)
        assert res.num_rounds == 0
        assert res.active_rounds == 0
        assert res.work == 0
        assert res.frontier_sizes == []
        assert np.all(res.center == -1)
        assert np.all(res.hops == -1)
        assert np.all(res.round_claimed == -1)


class TestEquivalenceWithExactDijkstra:
    """Section 5: the BFS implementation equals exact shifted shortest paths."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_starts_on_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 40))
        g = erdos_renyi(n, 0.15, seed=seed + 100)
        start = rng.random(n) * rng.integers(1, 12)
        floor = np.floor(start).astype(np.int64)
        key = start - floor
        bfs_res = delayed_multisource_bfs(g, start)
        dij_res = shifted_integer_dijkstra(g, floor, key)
        np.testing.assert_array_equal(bfs_res.center, dij_res.center)
        np.testing.assert_array_equal(bfs_res.hops, dij_res.hops)
        np.testing.assert_array_equal(
            bfs_res.round_claimed, dij_res.round_claimed
        )

    def test_integer_starts_tie_break_by_id(self):
        # All fractional keys zero: pure lexicographic center-id tie-breaks.
        g = cycle_graph(9)
        start = np.zeros(9)
        bfs_res = delayed_multisource_bfs(g, start)
        dij_res = shifted_integer_dijkstra(
            g, np.zeros(9, dtype=np.int64), np.zeros(9)
        )
        np.testing.assert_array_equal(bfs_res.center, dij_res.center)

    def test_permutation_keys_agree(self):
        g = grid_2d(6, 6)
        rng = np.random.default_rng(11)
        start = rng.random(36) * 8
        floor = np.floor(start).astype(np.int64)
        perm_key = rng.permutation(36) / 36.0
        bfs_res = delayed_multisource_bfs(g, start, tie_key=perm_key)
        dij_res = shifted_integer_dijkstra(g, floor, perm_key)
        np.testing.assert_array_equal(bfs_res.center, dij_res.center)
        np.testing.assert_array_equal(bfs_res.hops, dij_res.hops)
