"""Hypothesis property tests for the core partition invariants.

These encode the paper's deterministic guarantees as universally quantified
properties over random graphs and random shift configurations:

- the BFS engine and the exact Dijkstra reference agree **exactly**
  (Section 5's equivalence claim);
- every output is a total partition into connected pieces with hop
  distances equal to in-piece distances (Lemma 4.1);
- piece radii never exceed the shift certificate δ_max (Theorem 1.2's
  radius argument).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bfs.delayed import delayed_multisource_bfs
from repro.bfs.dijkstra import shifted_integer_dijkstra
from repro.core.ldd_bfs import partition_bfs_with_shifts
from repro.core.ldd_exact import partition_exact_with_shifts
from repro.core.shifts import sample_shifts, shifts_from_values
from repro.core.verify import verify_decomposition

from tests.conftest import connected_graphs, random_graphs

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_shifts(draw):
    """A random graph with random non-negative shift values for it."""
    graph = draw(random_graphs(min_vertices=2, max_vertices=18))
    n = graph.num_vertices
    beta = draw(st.floats(0.05, 0.95))
    raw = draw(
        st.lists(
            st.floats(0.0, 12.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    shifts = shifts_from_values(beta, np.asarray(raw))
    return graph, shifts


@COMMON
@given(graph_and_shifts())
def test_bfs_equals_exact_on_arbitrary_shifts(data):
    graph, shifts = data
    d_bfs, _ = partition_bfs_with_shifts(graph, shifts)
    d_exact, _ = partition_exact_with_shifts(graph, shifts)
    np.testing.assert_array_equal(d_bfs.center, d_exact.center)
    np.testing.assert_array_equal(d_bfs.hops, d_exact.hops)


@COMMON
@given(
    random_graphs(min_vertices=2, max_vertices=20),
    st.floats(0.05, 0.9),
    st.integers(0, 10_000),
)
def test_partition_invariants_hold(graph, beta, seed):
    shifts = sample_shifts(graph.num_vertices, beta, seed=seed)
    decomposition, trace = partition_bfs_with_shifts(graph, shifts)
    report = verify_decomposition(decomposition, raise_on_violation=True)
    assert report.all_invariants_hold()
    assert decomposition.max_radius() <= shifts.delta_max


@COMMON
@given(
    connected_graphs(min_vertices=2, max_vertices=16),
    st.integers(0, 10_000),
)
def test_fractional_and_permutation_modes_both_valid(graph, seed):
    for mode in ("fractional", "permutation"):
        shifts = sample_shifts(graph.num_vertices, 0.4, seed=seed, mode=mode)
        decomposition, _ = partition_bfs_with_shifts(graph, shifts)
        verify_decomposition(decomposition, raise_on_violation=True)


@COMMON
@given(
    random_graphs(min_vertices=2, max_vertices=16),
    st.integers(0, 10_000),
)
def test_delayed_bfs_round_decomposition(graph, seed):
    """round_claimed == floor(start of center) + hops, for every vertex."""
    rng = np.random.default_rng(seed)
    start = rng.random(graph.num_vertices) * rng.integers(1, 10)
    res = delayed_multisource_bfs(graph, start)
    floor = np.floor(start).astype(np.int64)
    np.testing.assert_array_equal(
        res.round_claimed, floor[res.center] + res.hops
    )
    # The winning assignment must weakly beat self-assignment:
    # start[center] + hops <= start[v] + 1 would not be sound (fractions),
    # but the integer-round comparison is: round_claimed <= floor(start_v)
    # is false only when v was claimed after its own wake-up — impossible.
    assert np.all(res.round_claimed <= floor)


@COMMON
@given(
    random_graphs(min_vertices=2, max_vertices=14),
    st.integers(0, 1_000_000),
)
def test_shifted_dijkstra_optimality(graph, seed):
    """No center can offer any vertex a better (round, key) pair than the
    one it was assigned — brute-force check of the argmin semantics."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    start_round = rng.integers(0, 6, size=n)
    key = rng.random(n)
    res = shifted_integer_dijkstra(graph, start_round, key)
    # All-pairs hop distances by BFS per vertex (small n).
    from repro.bfs.sequential import multi_source_bfs

    for v in range(n):
        assigned = (
            int(res.round_claimed[v]),
            float(key[res.center[v]]),
            int(res.center[v]),
        )
        for c in range(n):
            d = multi_source_bfs(graph, np.asarray([c])).dist[v]
            if d < 0:
                continue
            offer = (int(start_round[c] + d), float(key[c]), c)
            assert assigned <= offer
