"""Error-hierarchy contracts and cross-module edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConvergenceError,
    GraphError,
    ParameterError,
    ReproError,
    VerificationError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (GraphError, ParameterError, VerificationError, ConvergenceError):
            assert issubclass(exc, ReproError)

    def test_parameter_error_is_value_error(self):
        # API ergonomics: generic ValueError handlers must catch it too.
        assert issubclass(ParameterError, ValueError)

    def test_single_catch_at_api_boundary(self):
        from repro.core.engine import decompose
        from repro.graphs.generators import grid_2d

        with pytest.raises(ReproError):
            decompose(grid_2d(3, 3), beta=-1.0)
        with pytest.raises(ReproError):
            decompose(grid_2d(3, 3), beta=0.5, method="bogus")


class TestCrossModuleEdgeCases:
    def test_two_vertex_graph_full_pipeline(self):
        """The smallest non-trivial graph must survive the whole stack."""
        from repro.core.engine import decompose
        from repro.graphs.build import from_edges
        from repro.lowstretch.akpw import akpw_spanning_tree
        from repro.solvers.solver import LaplacianSolver
        from repro.solvers.laplacian import random_zero_sum_rhs

        g = from_edges(2, [(0, 1)])
        result = decompose(g, 0.5, seed=0, validate=True)
        assert result.report.all_invariants_hold()
        tree = akpw_spanning_tree(g, seed=1)
        assert tree.forest.num_edges() == 1
        solver = LaplacianSolver(g, preconditioner="tree-akpw", seed=2)
        res = solver.solve(random_zero_sum_rhs(g, seed=3))
        assert res.converged

    def test_star_graph_all_methods(self):
        from repro.core.engine import decompose
        from repro.core.registry import PARTITION_METHODS
        from repro.graphs.generators import star_graph

        g = star_graph(25)
        for method in PARTITION_METHODS:
            result = decompose(g, 0.4, method=method, seed=4, validate=True)
            assert result.report.all_invariants_hold(), method

    def test_beta_extremes(self):
        from repro.core.ldd_bfs import partition_bfs
        from repro.graphs.generators import grid_2d

        g = grid_2d(8, 8)
        # beta near 1: many tiny pieces, still valid.
        d_hi, _ = partition_bfs(g, 0.999, seed=5)
        assert d_hi.num_pieces >= 4
        # beta tiny: delta_max huge, nearly one piece, still valid.
        d_lo, t_lo = partition_bfs(g, 0.001, seed=5)
        assert d_lo.num_pieces <= 3
        from repro.core.verify import verify_decomposition

        verify_decomposition(d_hi)
        verify_decomposition(d_lo)

    def test_large_sparse_disconnected_pipeline(self):
        from repro.core.engine import decompose
        from repro.graphs.generators import erdos_renyi
        from repro.graphs.ops import num_components

        g = erdos_renyi(400, 0.003, seed=6)  # heavily disconnected
        assert num_components(g) > 1
        result = decompose(g, 0.3, seed=7, validate=True)
        assert result.report.all_invariants_hold()
        # Pieces never span components.
        from repro.graphs.ops import connected_components

        comp = connected_components(g)
        labels = result.decomposition.labels
        for piece in range(result.decomposition.num_pieces):
            members = np.flatnonzero(labels == piece)
            assert np.unique(comp[members]).size == 1

    def test_caterpillar_stress(self):
        """High-leaf-volume topology: radii stay small, leaves attach to
        their spine's piece."""
        from repro.core.ldd_bfs import partition_bfs
        from repro.graphs.generators import caterpillar

        g = caterpillar(40, 5)
        d, t = partition_bfs(g, 0.2, seed=8)
        assert d.max_radius() <= t.delta_max
        # A leaf's center is reachable only through its spine vertex, so
        # hops(leaf) = hops(spine) + 1 unless the leaf is its own center.
        spine = np.arange(40)
        for leaf in range(40, g.num_vertices):
            anchor = (leaf - 40) // 5
            if d.center[leaf] != leaf:
                assert d.center[leaf] == d.center[anchor]
                assert d.hops[leaf] == d.hops[anchor] + 1
