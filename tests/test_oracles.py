"""Tests for the cluster distance oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.bfs.sequential import multi_source_bfs
from repro.core.ldd_bfs import partition_bfs
from repro.oracles.cluster_oracle import ClusterDistanceOracle, build_oracle
from repro.graphs.generators import erdos_renyi, grid_2d, path_graph


class TestOracleCorrectness:
    def test_never_underestimates_exhaustive(self):
        g = grid_2d(8, 8)
        oracle = build_oracle(g, 0.25, seed=0)
        for s in range(0, g.num_vertices, 7):
            exact = multi_source_bfs(g, np.asarray([s])).dist
            others = np.arange(g.num_vertices)
            est = oracle.estimate(np.full(g.num_vertices, s), others)
            assert np.all(est >= exact - 1e-9)

    def test_same_vertex_zero(self):
        oracle = build_oracle(grid_2d(5, 5), 0.3, seed=1)
        assert oracle.estimate(7, 7)[0] == 0.0

    def test_same_piece_routes_through_center(self):
        g = path_graph(10)
        d, _ = partition_bfs(g, 0.2, seed=2)
        oracle = ClusterDistanceOracle(d)
        labels = d.labels
        # Find two vertices in one piece.
        for piece in range(d.num_pieces):
            members = np.flatnonzero(labels == piece)
            if members.size >= 2:
                u, v = int(members[0]), int(members[-1])
                est = oracle.estimate(u, v)[0]
                assert est == d.hops[u] + d.hops[v]
                break

    def test_cross_component_infinite(self, two_triangles):
        oracle = build_oracle(two_triangles, 0.5, seed=3)
        assert np.isinf(oracle.estimate(0, 3)[0])

    def test_estimate_shape_validation(self):
        oracle = build_oracle(grid_2d(4, 4), 0.4, seed=4)
        with pytest.raises(ParameterError):
            oracle.estimate(np.asarray([0, 1]), np.asarray([0]))


class TestOracleEvaluation:
    def test_evaluation_report(self):
        g = grid_2d(12, 12)
        oracle = build_oracle(g, 0.2, seed=5)
        rep = oracle.evaluate(num_sources=6, seed=6)
        assert rep.num_pairs > 0
        assert rep.underestimate_fraction == 0.0
        assert rep.mean_ratio >= 1.0
        assert rep.max_ratio >= rep.mean_ratio

    def test_quality_improves_with_more_pieces(self):
        # Larger β → smaller pieces → tighter center routing on average.
        g = grid_2d(15, 15)
        coarse = build_oracle(g, 0.03, seed=7).evaluate(num_sources=6, seed=8)
        fine = build_oracle(g, 0.4, seed=7).evaluate(num_sources=6, seed=8)
        assert fine.mean_ratio <= coarse.mean_ratio * 1.5

    def test_sparse_random_graph(self):
        g = erdos_renyi(70, 0.06, seed=9)
        oracle = build_oracle(g, 0.3, seed=10)
        rep = oracle.evaluate(num_sources=8, seed=11)
        assert rep.underestimate_fraction == 0.0

    def test_num_pieces_property(self):
        g = grid_2d(6, 6)
        d, _ = partition_bfs(g, 0.3, seed=12)
        oracle = ClusterDistanceOracle(d)
        assert oracle.num_pieces == d.num_pieces
