"""Golden-trace regression pins for the PRAM cost model.

``PartitionTrace``'s ``work``/``depth``/``rounds`` are the Theorem 1.2
quantities every benchmark reasons about; silent drift in how they are
charged (an extra gather counted, a round miscounted, a changed shift
stream) invalidates recorded experiment tables without failing any
behavioural test.  This module pins the exact trace counters — plus the
headline decomposition statistics and the ``δ_max`` certificate — for
fixed (graph, seed, method) triples covering every registered method.

The integer pins are exact: all randomness flows through ``numpy``'s
seeded Philox/SFC streams, which are bit-stable across platforms and the
supported Python/NumPy range.  Float pins (``δ_max``, weighted radii)
carry a 1e-12 relative tolerance because they pass through libm
transcendentals whose final ulp may vary between implementations.  If an
intentional change to an algorithm or to cost accounting lands,
regenerate the values and say so in the commit — that is the point of
the pin.
"""

from __future__ import annotations

import math

import pytest

from repro.core.engine import decompose
from repro.graphs.generators import erdos_renyi, grid_2d, path_graph
from repro.graphs.weighted import weights_by_name


def _graphs():
    return {
        "grid10x10": grid_2d(10, 10),
        "path50": path_graph(50),
        "er80": erdos_renyi(80, 0.06, seed=5),
        "wgrid8x8": weights_by_name(
            grid_2d(8, 8), "uniform:0.5,2.0", seed=3
        ),
    }


#: (graph key, beta, method, seed) -> pinned trace + decomposition values.
GOLDEN = {
    ("grid10x10", 0.2, "bfs", 0): dict(
        method="bfs-fractional", rounds=15, work=664, depth=114,
        delta_max=30.288765402212864, num_pieces=3, max_radius=14,
        num_cut_edges=11,
    ),
    ("grid10x10", 0.2, "exact", 1): dict(
        method="exact-fractional", rounds=16, work=560, depth=560,
        delta_max=42.114647790575944, num_pieces=1, max_radius=15,
        num_cut_edges=0,
    ),
    ("grid10x10", 0.2, "sequential", 2): dict(
        method="sequential-ball-growing", rounds=20, work=360, depth=20,
        delta_max=math.nan, num_pieces=3, max_radius=9, num_cut_edges=22,
    ),
    ("grid10x10", 0.2, "blelloch", 3): dict(
        method="blelloch-iterative", rounds=17, work=821, depth=17,
        delta_max=23.025850929940457, num_pieces=1, max_radius=16,
        num_cut_edges=0,
    ),
    ("grid10x10", 0.2, "uniform", 4): dict(
        method="bfs-uniform-shifts", rounds=6, work=680, depth=51,
        delta_max=22.6609602686677, num_pieces=18, max_radius=5,
        num_cut_edges=70,
    ),
    ("grid10x10", 0.2, "permutation", 5): dict(
        method="bfs-permutation", rounds=10, work=670, depth=79,
        delta_max=18.36990069138555, num_pieces=9, max_radius=8,
        num_cut_edges=36,
    ),
    ("grid10x10", 0.2, "quantile", 6): dict(
        method="bfs-quantile", rounds=13, work=662, depth=100,
        delta_max=26.491586832740175, num_pieces=2, max_radius=12,
        num_cut_edges=12,
    ),
    ("path50", 0.3, "bfs", 7): dict(
        method="bfs-fractional", rounds=11, work=257, depth=74,
        delta_max=12.651374949476047, num_pieces=5, max_radius=10,
        num_cut_edges=4,
    ),
    ("er80", 0.25, "bfs", 8): dict(
        method="bfs-fractional", rounds=10, work=668, depth=51,
        delta_max=12.536685536717787, num_pieces=4, max_radius=4,
        num_cut_edges=72,
    ),
    ("wgrid8x8", 0.3, "dijkstra", 9): dict(
        method="weighted-dijkstra", rounds=0, work=352, depth=352,
        delta_max=24.080040701826917, num_pieces=1,
        max_radius=10.980851900333597, num_cut_edges=0,
    ),
}


@pytest.mark.parametrize(
    "case", sorted(GOLDEN, key=str), ids=lambda c: f"{c[0]}-{c[2]}-s{c[3]}"
)
def test_golden_trace(case):
    graph_key, beta, method, seed = case
    expected = GOLDEN[case]
    result = decompose(_graphs()[graph_key], beta, method=method, seed=seed)
    trace = result.trace
    decomposition = result.decomposition

    assert trace.method == expected["method"]
    assert trace.rounds == expected["rounds"]
    assert trace.work == expected["work"]
    assert trace.depth == expected["depth"]
    if math.isnan(expected["delta_max"]):
        assert math.isnan(trace.delta_max)
    else:
        # The RNG bit stream is platform-stable but delta_max passes
        # through libm transcendentals whose last ulp may differ between
        # implementations — hence a tiny relative tolerance, unlike the
        # exact integer pins above.
        assert trace.delta_max == pytest.approx(
            expected["delta_max"], rel=1e-12
        )
    assert decomposition.num_pieces == expected["num_pieces"]
    assert decomposition.max_radius() == pytest.approx(
        expected["max_radius"], rel=1e-12
    )
    assert decomposition.num_cut_edges() == expected["num_cut_edges"]


def test_golden_covers_every_registered_method():
    """Adding a method without pinning a golden trace fails here."""
    from repro.core.registry import method_names

    pinned = {method for (_, _, method, _) in GOLDEN}
    # Alias methods (pinned options over the same callable) count through
    # their own registry name, so coverage is literal.
    assert set(method_names()) <= pinned | {"auto"}
