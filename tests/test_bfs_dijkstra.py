"""Unit tests for the Dijkstra engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.bfs.dijkstra import (
    dijkstra,
    dijkstra_multisource,
    shifted_integer_dijkstra,
)
from repro.bfs.sequential import bfs
from repro.graphs.build import from_edges
from repro.graphs.generators import erdos_renyi, grid_2d, path_graph
from repro.graphs.weighted import uniform_weights, weighted_from_edges


class TestWeightedDijkstra:
    def test_weighted_path(self):
        g = weighted_from_edges(
            4,
            np.asarray([[0, 1], [1, 2], [2, 3]]),
            np.asarray([1.0, 5.0, 2.0]),
        )
        res = dijkstra(g, 0)
        np.testing.assert_allclose(res.dist, [0.0, 1.0, 6.0, 8.0])
        np.testing.assert_array_equal(res.parent, [-1, 0, 1, 2])

    def test_prefers_lighter_detour(self):
        # 0-2 direct weight 10; 0-1-2 total 3.
        g = weighted_from_edges(
            3,
            np.asarray([[0, 2], [0, 1], [1, 2]]),
            np.asarray([10.0, 1.0, 2.0]),
        )
        res = dijkstra(g, 0)
        assert res.dist[2] == pytest.approx(3.0)
        assert res.parent[2] == 1

    def test_unit_weights_match_bfs(self):
        g = erdos_renyi(50, 0.08, seed=2)
        wd = dijkstra(uniform_weights(g), 0)
        bd = bfs(g, 0)
        reached = bd.dist >= 0
        np.testing.assert_allclose(wd.dist[reached], bd.dist[reached])
        assert np.all(np.isinf(wd.dist[~reached]))

    def test_unweighted_graph_gets_unit_lengths(self):
        g = path_graph(4)
        res = dijkstra(g, 0)
        np.testing.assert_allclose(res.dist, [0, 1, 2, 3])

    def test_multisource_with_init_dist(self):
        g = path_graph(5)
        res = dijkstra_multisource(
            g,
            np.asarray([0, 4]),
            init_dist=np.asarray([0.0, 10.0]),
        )
        # Source 4's head start of 10 means source 0 wins everywhere.
        np.testing.assert_array_equal(res.source[:4], [0, 0, 0, 0])
        assert res.dist[4] == pytest.approx(4.0)

    def test_tie_breaks_by_smaller_source(self):
        g = path_graph(5)
        res = dijkstra_multisource(g, np.asarray([4, 0]))
        assert res.source[2] == 0  # equidistant, smaller id wins

    def test_validation(self):
        g = path_graph(3)
        with pytest.raises(ParameterError):
            dijkstra_multisource(g, np.asarray([9]))
        with pytest.raises(ParameterError):
            dijkstra_multisource(
                g, np.asarray([0]), init_dist=np.asarray([0.0, 1.0])
            )

    def test_against_scipy(self):
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import dijkstra as scipy_dijkstra

        rng = np.random.default_rng(7)
        g0 = erdos_renyi(40, 0.12, seed=7)
        weights = rng.uniform(0.5, 3.0, size=g0.num_edges)
        g = weighted_from_edges(40, g0.edge_array(), weights)
        mat = csr_matrix(
            (g.weights, g.indices, g.indptr), shape=(40, 40)
        )
        expected = scipy_dijkstra(mat, directed=False, indices=0)
        res = dijkstra(g, 0)
        np.testing.assert_allclose(res.dist, expected)


class TestShiftedIntegerDijkstra:
    def test_zero_starts_nearest_center_semantics(self):
        g = path_graph(5)
        start = np.asarray([0, 9, 9, 9, 0], dtype=np.int64)
        key = np.asarray([0.1, 0.9, 0.9, 0.9, 0.2])
        res = shifted_integer_dijkstra(g, start, key)
        # Ends are centers; middle tied at round 2, key 0.1 < 0.2 so center 0.
        np.testing.assert_array_equal(res.center, [0, 0, 0, 4, 4])

    def test_hops_are_graph_distances_from_center(self):
        g = grid_2d(5, 5)
        rng = np.random.default_rng(1)
        start = rng.integers(0, 6, size=25).astype(np.int64)
        key = rng.random(25)
        res = shifted_integer_dijkstra(g, start, key)
        for v in range(25):
            c = int(res.center[v])
            assert res.hops[v] == bfs(g, c).dist[v]

    def test_length_validation(self):
        g = path_graph(3)
        with pytest.raises(ParameterError):
            shifted_integer_dijkstra(
                g, np.zeros(2, dtype=np.int64), np.zeros(3)
            )

    def test_work_positive_and_bounded(self):
        g = grid_2d(4, 4)
        res = shifted_integer_dijkstra(
            g, np.zeros(16, dtype=np.int64), np.random.default_rng(0).random(16)
        )
        assert res.work >= g.num_vertices
