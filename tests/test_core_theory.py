"""Tests pinning the closed-form theory module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.core.theory import (
    blockdecomp_iteration_bound,
    cut_probability_bound,
    diameter_bound,
    expected_cut_edges_bound,
    expected_delta_max,
    failure_probability,
    theorem12_depth_bound,
    theorem12_work_bound,
    whp_radius_bound,
)
from repro.rng.order_stats import harmonic_number


class TestFormulas:
    def test_expected_delta_max(self):
        assert expected_delta_max(10, 0.5) == pytest.approx(
            harmonic_number(10) / 0.5
        )

    def test_whp_radius_bound(self):
        assert whp_radius_bound(100, 0.1, d=1.0) == pytest.approx(
            2 * np.log(100) / 0.1
        )

    def test_diameter_is_twice_radius_bound(self):
        assert diameter_bound(50, 0.2, 1.0) == pytest.approx(
            2 * whp_radius_bound(50, 0.2, 1.0)
        )

    def test_failure_probability(self):
        assert failure_probability(100, 2.0) == pytest.approx(1e-4)
        with pytest.raises(ParameterError):
            failure_probability(0, 1.0)

    def test_cut_probability_bound_small_beta(self):
        # 1 - exp(-βc) < βc and ≈ βc for small β.
        b = cut_probability_bound(0.01, 1.0)
        assert b < 0.01
        assert b == pytest.approx(0.01, rel=0.01)

    def test_cut_probability_monotone_in_c(self):
        assert cut_probability_bound(0.3, 2.0) > cut_probability_bound(
            0.3, 1.0
        )

    def test_expected_cut_edges(self):
        assert expected_cut_edges_bound(1000, 0.05) == pytest.approx(
            1000 * (1 - np.exp(-0.05))
        )
        assert expected_cut_edges_bound(0, 0.5) == 0.0

    def test_depth_bound_shape(self):
        # O(log² n / β): quadruples when log n doubles, inverse in β.
        d1 = theorem12_depth_bound(100, 0.1)
        d2 = theorem12_depth_bound(10_000, 0.1)
        assert d2 == pytest.approx(4 * d1)
        assert theorem12_depth_bound(100, 0.05) == pytest.approx(2 * d1)
        assert theorem12_depth_bound(1, 0.1) == 0.0

    def test_work_bound_linear(self):
        assert theorem12_work_bound(500) == 500
        assert theorem12_work_bound(500, constant=3.0) == 1500

    def test_blockdecomp_iterations(self):
        assert blockdecomp_iteration_bound(1) == 1
        assert blockdecomp_iteration_bound(1024) == 11
        assert blockdecomp_iteration_bound(0) == 1

    def test_domain_errors(self):
        with pytest.raises(ParameterError):
            cut_probability_bound(-0.1)
        with pytest.raises(ParameterError):
            theorem12_depth_bound(100, 0.0)
        with pytest.raises(ParameterError):
            theorem12_work_bound(-1)


class TestEmpiricalAgreement:
    """Light-weight statistical checks that the formulas describe reality
    (heavier versions live in the benchmarks)."""

    def test_delta_max_sample_mean(self):
        from repro.core.shifts import sample_shifts

        n, beta = 200, 0.25
        samples = [
            sample_shifts(n, beta, seed=s).delta_max for s in range(300)
        ]
        assert np.mean(samples) == pytest.approx(
            expected_delta_max(n, beta), rel=0.05
        )

    def test_whp_bound_rarely_violated(self):
        from repro.core.shifts import sample_shifts

        n, beta, d = 300, 0.3, 1.0
        bound = whp_radius_bound(n, beta, d)
        violations = sum(
            sample_shifts(n, beta, seed=s).delta_max > bound
            for s in range(200)
        )
        # Pr[violation] <= n^{-d} = 1/300 per trial.
        assert violations <= 5

    def test_cut_fraction_tracks_beta(self):
        from repro.core.ldd_bfs import partition_bfs
        from repro.graphs.generators import grid_2d

        g = grid_2d(30, 30)
        for beta in (0.05, 0.2):
            fractions = [
                partition_bfs(g, beta, seed=s)[0].cut_fraction()
                for s in range(5)
            ]
            assert np.mean(fractions) <= cut_probability_bound(beta) * 1.5
