"""Tests for cluster spanners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.bfs.sequential import bfs
from repro.core.ldd_bfs import partition_bfs
from repro.graphs.build import from_edges
from repro.graphs.generators import erdos_renyi, grid_2d, hypercube
from repro.graphs.ops import num_components
from repro.spanners.cluster_spanner import (
    ldd_spanner,
    spanner_from_decomposition,
)
from repro.spanners.stretch import measure_spanner_stretch


class TestConstruction:
    def test_subgraph_of_original(self, medium_grid):
        res = ldd_spanner(medium_grid, 0.2, seed=0)
        for u, v in res.spanner.edge_array():
            assert medium_grid.has_edge(int(u), int(v))

    def test_preserves_connectivity(self, medium_grid):
        res = ldd_spanner(medium_grid, 0.2, seed=1)
        assert num_components(res.spanner) == num_components(medium_grid)

    def test_edge_counts_accounted(self, medium_grid):
        res = ldd_spanner(medium_grid, 0.15, seed=2)
        assert (
            res.num_edges == res.num_tree_edges + res.num_bridge_edges
        )
        d = res.decomposition
        assert res.num_tree_edges == medium_grid.num_vertices - d.num_pieces

    def test_sparser_than_original_on_dense_graph(self):
        g = hypercube(7)  # m = 448, n = 128
        res = ldd_spanner(g, 0.3, seed=3)
        assert res.num_edges < g.num_edges
        assert res.size_ratio() < 1.0

    def test_from_existing_decomposition(self, small_grid):
        d, _ = partition_bfs(small_grid, 0.3, seed=4)
        res = spanner_from_decomposition(d)
        assert res.stretch_bound == 4 * d.max_radius() + 1

    def test_single_piece_gives_tree(self):
        g = grid_2d(5, 5)
        d, _ = partition_bfs(g, 0.01, seed=5)
        if d.num_pieces == 1:
            res = spanner_from_decomposition(d)
            assert res.num_edges == g.num_vertices - 1
            assert res.num_bridge_edges == 0


class TestStretchGuarantee:
    @pytest.mark.parametrize("seed", range(3))
    def test_measured_stretch_within_bound(self, seed):
        g = grid_2d(12, 12)
        res = ldd_spanner(g, 0.25, seed=seed)
        report = measure_spanner_stretch(g, res.spanner)
        assert report.max <= res.stretch_bound
        assert report.mean >= 1.0

    def test_exact_all_edges_check(self):
        g = erdos_renyi(60, 0.08, seed=6)
        res = ldd_spanner(g, 0.3, seed=6)
        report = measure_spanner_stretch(g, res.spanner)
        assert report.max <= res.stretch_bound
        # Spanner keeps a decent share of edges at stretch 1.
        assert report.kept_fraction > 0.1

    def test_sampled_sources_subset(self):
        g = grid_2d(15, 15)
        res = ldd_spanner(g, 0.2, seed=7)
        full = measure_spanner_stretch(g, res.spanner)
        sampled = measure_spanner_stretch(
            g, res.spanner, max_sources=10, seed=8
        )
        assert sampled.num_edges_checked <= full.num_edges_checked
        assert sampled.max <= full.max

    def test_non_spanner_detected(self):
        # A "spanner" that disconnects an edge's endpoints must raise.
        g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        broken = from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphError, match="disconnects"):
            measure_spanner_stretch(g, broken)

    def test_vertex_set_mismatch(self):
        with pytest.raises(GraphError):
            measure_spanner_stretch(grid_2d(3, 3), grid_2d(3, 4))

    def test_edgeless_graph(self):
        g = from_edges(5, [])
        report = measure_spanner_stretch(g, g)
        assert report.num_edges_checked == 0
