"""Tests for AKPW low-stretch spanning trees and stretch measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, ParameterError
from repro.bfs.sequential import bfs
from repro.graphs.build import from_edges
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
    torus_2d,
)
from repro.lowstretch.akpw import (
    akpw_spanning_tree,
    bfs_spanning_tree,
)
from repro.lowstretch.stretch import edge_stretches, stretch_report
from repro.trees.structure import RootedForest


class TestAKPW:
    def test_produces_spanning_tree_connected(self, medium_grid):
        res = akpw_spanning_tree(medium_grid, beta=0.4, seed=0)
        assert res.forest.is_tree()
        assert res.forest.num_edges() == medium_grid.num_vertices - 1

    def test_tree_edges_are_graph_edges(self, small_grid):
        res = akpw_spanning_tree(small_grid, beta=0.4, seed=1)
        parent = res.forest.parent
        for v in np.flatnonzero(parent != -1):
            assert small_grid.has_edge(int(v), int(parent[v]))

    def test_disconnected_graph_gives_forest(self, two_triangles):
        res = akpw_spanning_tree(two_triangles, beta=0.5, seed=2)
        assert res.forest.roots().shape[0] == 2
        assert res.forest.num_edges() == 4

    def test_level_record_monotone(self):
        g = grid_2d(15, 15)
        res = akpw_spanning_tree(g, beta=0.5, seed=3)
        sizes = [n for n, _ in res.level_sizes]
        assert sizes == sorted(sizes, reverse=True)
        assert res.num_levels == len(res.level_betas)

    def test_reproducible(self, small_grid):
        a = akpw_spanning_tree(small_grid, beta=0.4, seed=9)
        b = akpw_spanning_tree(small_grid, beta=0.4, seed=9)
        np.testing.assert_array_equal(a.forest.parent, b.forest.parent)

    def test_bad_beta(self, small_grid):
        with pytest.raises(ParameterError):
            akpw_spanning_tree(small_grid, beta=0.0)
        with pytest.raises(ParameterError):
            akpw_spanning_tree(small_grid, beta=1.0)

    def test_empty_graph(self):
        with pytest.raises(GraphError):
            akpw_spanning_tree(from_edges(0, []))

    def test_edgeless_graph(self):
        res = akpw_spanning_tree(from_edges(4, []), beta=0.5, seed=1)
        assert res.forest.num_edges() == 0
        assert res.num_levels == 0

    def test_beats_bfs_tree_on_torus_average(self):
        # Tori are the classic case where BFS trees concentrate stretch;
        # compare averages over a few seeds.
        g = torus_2d(12, 12)
        akpw_means, bfs_means = [], []
        for seed in range(4):
            t1 = akpw_spanning_tree(g, beta=0.4, seed=seed).forest
            t2 = bfs_spanning_tree(g, seed=seed)
            akpw_means.append(stretch_report(g, t1).mean)
            bfs_means.append(stretch_report(g, t2).mean)
        assert np.mean(akpw_means) <= np.mean(bfs_means) * 1.25


class TestBFSSpanningTree:
    def test_spanning_and_valid(self, medium_grid):
        f = bfs_spanning_tree(medium_grid, seed=0)
        assert f.is_tree()
        assert f.num_edges() == medium_grid.num_vertices - 1

    def test_fixed_root(self, small_grid):
        f = bfs_spanning_tree(small_grid, root=7)
        assert f.parent[7] == -1
        np.testing.assert_array_equal(f.depth, bfs(small_grid, 7).dist)

    def test_disconnected(self, two_triangles):
        f = bfs_spanning_tree(two_triangles, seed=1)
        assert f.roots().shape[0] == 2


class TestStretch:
    def test_tree_edges_have_stretch_one(self, small_grid):
        f = bfs_spanning_tree(small_grid, root=0)
        s = edge_stretches(small_grid, f)
        edges = small_grid.edge_array()
        tree_pairs = {
            (min(int(v), int(f.parent[v])), max(int(v), int(f.parent[v])))
            for v in np.flatnonzero(f.parent != -1)
        }
        for (u, v), stretch in zip(map(tuple, edges), s):
            if (u, v) in tree_pairs:
                assert stretch == 1.0
            else:
                assert stretch >= 1.0

    def test_cycle_stretch_exact(self):
        # Spanning tree of C_n is a path; the removed edge has stretch n-1.
        n = 20
        g = cycle_graph(n)
        f = bfs_spanning_tree(g, root=0)
        rep = stretch_report(g, f)
        assert rep.max == n - 1
        assert rep.total == pytest.approx((n - 1) + (n - 1))

    def test_stretch_via_prebuilt_lca(self, small_grid):
        from repro.trees.lca import LCAIndex

        f = bfs_spanning_tree(small_grid, root=0)
        idx = LCAIndex(f)
        a = edge_stretches(small_grid, f, lca=idx)
        b = edge_stretches(small_grid, f)
        np.testing.assert_array_equal(a, b)

    def test_non_spanning_forest_rejected(self):
        g = cycle_graph(6)
        # A forest covering only part of the cycle.
        partial = RootedForest.from_parents(
            np.asarray([-1, 0, 1, -1, -1, -1])
        )
        with pytest.raises(GraphError, match="span"):
            edge_stretches(g, partial)

    def test_vertex_count_mismatch(self):
        with pytest.raises(GraphError):
            edge_stretches(
                path_graph(4),
                RootedForest.from_parents(np.asarray([-1, 0])),
            )

    def test_empty_graph_report(self):
        rep = stretch_report(
            from_edges(3, []),
            RootedForest.from_parents(np.asarray([-1, -1, -1])),
        )
        assert rep.num_edges == 0 and rep.total == 0.0

    def test_report_statistics_consistent(self):
        g = erdos_renyi(50, 0.1, seed=4)
        res = akpw_spanning_tree(g, beta=0.5, seed=4)
        rep = stretch_report(g, res.forest)
        s = edge_stretches(g, res.forest)
        assert rep.mean == pytest.approx(s.mean())
        assert rep.total == pytest.approx(s.sum())
        assert rep.max == s.max()
