"""Unit tests for weighted CSR graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators import grid_2d, path_graph
from repro.graphs.weighted import (
    WeightedCSRGraph,
    uniform_weights,
    weighted_from_edges,
)


class TestConstruction:
    def test_basic(self):
        g = weighted_from_edges(
            3, np.asarray([[0, 1], [1, 2]]), np.asarray([2.0, 3.0])
        )
        assert g.num_edges == 2
        assert g.total_weight() == pytest.approx(5.0)

    def test_weights_aligned_with_neighbors(self):
        g = weighted_from_edges(
            3, np.asarray([[0, 1], [1, 2]]), np.asarray([2.0, 3.0])
        )
        nbrs = g.neighbors(1)
        w = g.neighbor_weights(1)
        lookup = dict(zip(nbrs.tolist(), w.tolist()))
        assert lookup == {0: 2.0, 2: 3.0}

    def test_edge_weight_array_matches_edge_array(self):
        edges = np.asarray([[0, 1], [1, 2], [0, 3]])
        weights = np.asarray([5.0, 7.0, 9.0])
        g = weighted_from_edges(4, edges, weights)
        ea = g.edge_array()
        wa = g.edge_weight_array()
        expected = {(0, 1): 5.0, (1, 2): 7.0, (0, 3): 9.0}
        for (u, v), w in zip(map(tuple, ea), wa):
            assert expected[(u, v)] == w

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(GraphError, match="positive"):
            weighted_from_edges(
                2, np.asarray([[0, 1]]), np.asarray([0.0])
            )

    def test_rejects_duplicate_edges(self):
        with pytest.raises(GraphError, match="duplicate"):
            weighted_from_edges(
                2, np.asarray([[0, 1], [1, 0]]), np.asarray([1.0, 2.0])
            )

    def test_rejects_weight_count_mismatch(self):
        with pytest.raises(GraphError, match="one weight per edge"):
            weighted_from_edges(2, np.asarray([[0, 1]]), np.asarray([1.0, 2.0]))

    def test_rejects_asymmetric_weight_arrays(self):
        g = path_graph(3)
        bad = np.arange(1, g.num_arcs + 1, dtype=np.float64)
        with pytest.raises(GraphError, match="symmetric"):
            WeightedCSRGraph(g.indptr, g.indices, bad)

    def test_weights_read_only(self):
        g = uniform_weights(path_graph(3))
        with pytest.raises(ValueError):
            g.weights[0] = 9.0


class TestUniformWeights:
    def test_lift_and_drop(self):
        g = grid_2d(3, 3)
        wg = uniform_weights(g, 2.5)
        assert wg.total_weight() == pytest.approx(2.5 * g.num_edges)
        assert wg.unweighted() == g

    def test_invalid_weight(self):
        with pytest.raises(GraphError):
            uniform_weights(path_graph(3), 0.0)

    def test_repr_mentions_weight(self):
        wg = uniform_weights(path_graph(3), 1.0)
        assert "total_weight" in repr(wg)
