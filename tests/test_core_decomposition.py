"""Unit tests for the Decomposition result type."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.core.decomposition import Decomposition, PartitionTrace
from repro.graphs.generators import grid_2d, path_graph


def make_manual_decomposition():
    """Path 0-1-2-3-4-5 split into pieces {0,1,2} (center 0), {3,4,5} (center 4)."""
    g = path_graph(6)
    center = np.asarray([0, 0, 0, 4, 4, 4])
    hops = np.asarray([0, 1, 2, 1, 0, 1])
    return g, Decomposition(graph=g, center=center, hops=hops)


class TestConstruction:
    def test_valid(self):
        _, d = make_manual_decomposition()
        assert d.num_pieces == 2
        np.testing.assert_array_equal(d.centers, [0, 4])

    def test_labels_dense_ordered_by_center(self):
        _, d = make_manual_decomposition()
        np.testing.assert_array_equal(d.labels, [0, 0, 0, 1, 1, 1])

    def test_rejects_non_fixed_point_center(self):
        g = path_graph(3)
        with pytest.raises(GraphError, match="fixed point"):
            Decomposition(
                graph=g,
                center=np.asarray([1, 2, 2]),  # center[1]=2 but center[2]=2 ok; center[0]=1 not fixed
                hops=np.zeros(3, dtype=np.int64),
            )

    def test_rejects_center_with_nonzero_hops(self):
        g = path_graph(3)
        with pytest.raises(GraphError, match="hop distance 0"):
            Decomposition(
                graph=g,
                center=np.asarray([0, 0, 0]),
                hops=np.asarray([1, 1, 2]),
            )

    def test_rejects_wrong_lengths(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            Decomposition(
                graph=g, center=np.zeros(2, dtype=np.int64), hops=np.zeros(3)
            )

    def test_rejects_negative_hops(self):
        g = path_graph(2)
        with pytest.raises(GraphError):
            Decomposition(
                graph=g,
                center=np.asarray([0, 0]),
                hops=np.asarray([0, -1]),
            )


class TestStatistics:
    def test_piece_sizes_and_members(self):
        _, d = make_manual_decomposition()
        np.testing.assert_array_equal(d.piece_sizes(), [3, 3])
        np.testing.assert_array_equal(d.piece_members(0), [0, 1, 2])
        np.testing.assert_array_equal(d.piece_members(1), [3, 4, 5])

    def test_radii(self):
        _, d = make_manual_decomposition()
        np.testing.assert_array_equal(d.radii(), [2, 1])
        assert d.max_radius() == 2

    def test_cut_edges(self):
        _, d = make_manual_decomposition()
        assert d.num_cut_edges() == 1  # the 2-3 edge
        assert d.cut_fraction() == pytest.approx(1 / 5)
        mask = d.cut_mask()
        assert mask.sum() == 1

    def test_summary_keys(self):
        _, d = make_manual_decomposition()
        s = d.summary()
        for key in (
            "num_pieces",
            "max_piece_size",
            "mean_piece_size",
            "max_radius",
            "mean_radius",
            "num_cut_edges",
            "cut_fraction",
        ):
            assert key in s

    def test_single_piece_no_cut(self):
        g = grid_2d(3, 3)
        from repro.bfs.sequential import bfs

        hops = bfs(g, 0).dist
        d = Decomposition(
            graph=g, center=np.zeros(9, dtype=np.int64), hops=hops
        )
        assert d.num_pieces == 1
        assert d.cut_fraction() == 0.0


class TestPartitionTrace:
    def test_fields(self):
        t = PartitionTrace(
            method="bfs",
            beta=0.1,
            rounds=5,
            work=100,
            depth=50,
            delta_max=12.5,
            wall_time_s=0.01,
        )
        assert t.sequential_chain == 0
        assert t.frontier_sizes == ()
        assert t.extra == {}
