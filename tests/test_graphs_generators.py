"""Unit tests for the synthetic graph families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.generators import (
    barabasi_albert,
    binary_tree,
    by_name,
    caterpillar,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_2d,
    grid_3d,
    hypercube,
    path_graph,
    random_regular,
    star_graph,
    stochastic_block_model,
    torus_2d,
)
from repro.graphs.ops import is_connected


class TestDeterministicFamilies:
    def test_path(self):
        g = path_graph(10)
        assert g.num_edges == 9
        assert g.degree(0) == 1 and g.degree(5) == 2

    def test_cycle(self):
        g = cycle_graph(10)
        assert g.num_edges == 10
        assert np.all(g.degrees() == 2)

    def test_cycle_too_small(self):
        with pytest.raises(ParameterError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert np.all(g.degrees() == 5)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 6
        assert g.num_edges == 6

    def test_star_singleton(self):
        assert star_graph(1).num_edges == 0

    def test_grid_2d_counts(self):
        g = grid_2d(4, 6)
        assert g.num_vertices == 24
        assert g.num_edges == 4 * 5 + 3 * 6  # horizontal + vertical

    def test_grid_2d_adjacency_geometry(self):
        g = grid_2d(3, 3)
        # center vertex (1,1) = id 4 adjacent to 1, 3, 5, 7
        np.testing.assert_array_equal(g.neighbors(4), [1, 3, 5, 7])

    def test_torus_regular(self):
        g = torus_2d(4, 5)
        assert np.all(g.degrees() == 4)
        assert g.num_edges == 2 * 4 * 5

    def test_torus_min_size(self):
        with pytest.raises(ParameterError):
            torus_2d(2, 5)

    def test_grid_3d(self):
        g = grid_3d(2, 3, 4)
        assert g.num_vertices == 24
        expected = 1 * 3 * 4 + 2 * 2 * 4 + 2 * 3 * 3
        assert g.num_edges == expected

    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.num_vertices == 15
        assert g.num_edges == 14
        assert is_connected(g)

    def test_binary_tree_height_zero(self):
        assert binary_tree(0).num_vertices == 1

    def test_caterpillar(self):
        g = caterpillar(5, 3)
        assert g.num_vertices == 5 + 15
        assert g.num_edges == 4 + 15
        assert is_connected(g)

    def test_caterpillar_no_legs(self):
        g = caterpillar(4, 0)
        assert g.num_edges == 3

    def test_hypercube(self):
        g = hypercube(4)
        assert g.num_vertices == 16
        assert np.all(g.degrees() == 4)
        assert g.num_edges == 32

    def test_hypercube_dim_zero(self):
        assert hypercube(0).num_vertices == 1


class TestRandomFamilies:
    def test_er_reproducible(self):
        a = erdos_renyi(60, 0.1, seed=5)
        b = erdos_renyi(60, 0.1, seed=5)
        assert a == b

    def test_er_different_seeds_differ(self):
        a = erdos_renyi(60, 0.1, seed=5)
        b = erdos_renyi(60, 0.1, seed=6)
        assert a != b

    def test_er_edge_count_near_expectation(self):
        n, p = 120, 0.08
        g = erdos_renyi(n, p, seed=1)
        expected = p * n * (n - 1) / 2
        assert 0.6 * expected < g.num_edges < 1.4 * expected

    def test_er_p_zero_and_extremes(self):
        assert erdos_renyi(20, 0.0, seed=0).num_edges == 0
        assert erdos_renyi(10, 1.0, seed=0).num_edges == 45

    def test_er_sparse_path_produces_valid_graph(self):
        g = erdos_renyi(3000, 0.0008, seed=3)
        assert g.num_vertices == 3000
        expected = 0.0008 * 3000 * 2999 / 2
        assert 0.5 * expected < g.num_edges < 1.6 * expected

    def test_er_bad_p(self):
        with pytest.raises(ParameterError):
            erdos_renyi(10, 1.5)

    def test_random_regular(self):
        g = random_regular(30, 3, seed=2)
        assert np.all(g.degrees() == 3)

    def test_random_regular_parity(self):
        with pytest.raises(ParameterError, match="even"):
            random_regular(5, 3)

    def test_random_regular_d_too_large(self):
        with pytest.raises(ParameterError):
            random_regular(4, 4)

    def test_barabasi_albert(self):
        g = barabasi_albert(80, 2, seed=3)
        assert g.num_vertices == 80
        # core clique K_3 + 2 per newcomer
        assert g.num_edges == 3 + 2 * 77
        assert is_connected(g)

    def test_barabasi_albert_hub_exists(self):
        g = barabasi_albert(200, 1, seed=4)
        assert g.degrees().max() >= 8  # preferential attachment creates hubs

    def test_sbm_structure(self):
        g = stochastic_block_model([25, 25], 0.4, 0.02, seed=7)
        edges = g.edge_array()
        same = ((edges[:, 0] < 25) & (edges[:, 1] < 25)) | (
            (edges[:, 0] >= 25) & (edges[:, 1] >= 25)
        )
        # Within-block edges should dominate by far.
        assert same.sum() > 4 * (~same).sum()

    def test_sbm_bad_probability(self):
        with pytest.raises(ParameterError):
            stochastic_block_model([5, 5], 1.2, 0.1)

    def test_sbm_empty_blocks_rejected(self):
        with pytest.raises(ParameterError):
            stochastic_block_model([], 0.5, 0.5)


class TestByName:
    def test_grid_shorthand(self):
        g = by_name("grid:8x5")
        assert g.num_vertices == 40

    def test_er_spec(self):
        g = by_name("er:50,0.1", seed=1)
        assert g.num_vertices == 50

    def test_sbm_spec(self):
        g = by_name("sbm:2,20,0.5,0.05", seed=1)
        assert g.num_vertices == 40

    def test_unknown_generator(self):
        with pytest.raises(ParameterError, match="unknown generator"):
            by_name("nope:3")

    def test_missing_args(self):
        with pytest.raises(ParameterError, match="missing"):
            by_name("grid")

    def test_deterministic_family_via_spec(self):
        assert by_name("path:17").num_edges == 16
