"""Tests for the method registry underpinning the decomposition engine."""

from __future__ import annotations

import pytest

from repro.core import registry
from repro.core.registry import (
    PARTITION_METHODS,
    MethodSpec,
    OptionSpec,
    get_method,
    iter_methods,
    method_names,
    register_method,
)
from repro.errors import ParameterError


@pytest.fixture
def scratch_method():
    """Register a throwaway method and guarantee cleanup."""
    name = "pytest-scratch"

    def _register(**kwargs):
        defaults = dict(
            kind="unweighted", description="scratch", func=lambda g, b: None
        )
        defaults.update(kwargs)
        return register_method(name, **defaults)

    yield name, _register
    registry._REGISTRY.pop(name, None)


class TestRegistration:
    def test_duplicate_registration_rejected(self, scratch_method):
        name, reg = scratch_method
        reg()
        with pytest.raises(ParameterError, match="already registered"):
            reg()

    def test_duplicate_of_builtin_rejected(self):
        with pytest.raises(ParameterError, match="already registered"):
            register_method(
                "bfs",
                kind="unweighted",
                description="imposter",
                func=lambda g, b: None,
            )

    def test_bad_kind_rejected(self, scratch_method):
        _, reg = scratch_method
        with pytest.raises(ParameterError, match="unknown kind"):
            reg(kind="directed")

    def test_pinned_and_exposed_options_must_not_overlap(self, scratch_method):
        _, reg = scratch_method
        with pytest.raises(ParameterError, match="pins options"):
            reg(
                options=(OptionSpec("x", "int", 0),),
                pinned={"x": 1},
            )

    def test_decorator_returns_function_unchanged(self, scratch_method):
        name, _ = scratch_method

        @register_method(name, kind="any", description="scratch")
        def fn(graph, beta):
            return "sentinel"

        assert fn(None, 0.1) == "sentinel"
        assert get_method(name).func is fn


class TestLookup:
    def test_unknown_method_error_names_choices(self):
        with pytest.raises(ParameterError, match="unknown method") as exc:
            get_method("nope")
        for name in ("bfs", "dijkstra", "sequential"):
            assert name in str(exc.value)

    def test_method_names_filter_by_kind(self):
        unweighted = method_names("unweighted")
        weighted = method_names("weighted")
        assert "bfs" in unweighted and "bfs" not in weighted
        assert "dijkstra" in weighted and "dijkstra" not in unweighted
        assert set(unweighted) | set(weighted) <= set(method_names())

    def test_iter_methods_returns_specs_in_name_order(self):
        specs = iter_methods()
        assert [s.name for s in specs] == method_names()
        assert all(isinstance(s, MethodSpec) for s in specs)

    def test_builtin_methods_present(self):
        expected = {
            "bfs",
            "exact",
            "permutation",
            "quantile",
            "sequential",
            "blelloch",
            "uniform",
            "dijkstra",
        }
        assert expected <= set(method_names())


class TestPartitionMethodsView:
    def test_view_in_sync_with_registry(self, scratch_method):
        name, reg = scratch_method
        assert name not in PARTITION_METHODS
        reg()
        assert name in PARTITION_METHODS
        assert PARTITION_METHODS[name] == "scratch"
        assert set(PARTITION_METHODS) == set(method_names("unweighted"))

    def test_view_excludes_weighted_only_methods(self):
        assert "dijkstra" not in PARTITION_METHODS
        with pytest.raises(KeyError):
            PARTITION_METHODS["dijkstra"]

    def test_view_is_mapping(self):
        assert len(PARTITION_METHODS) == len(method_names("unweighted"))
        as_dict = dict(PARTITION_METHODS)
        assert as_dict["bfs"].startswith("Algorithm 1")


class TestOptions:
    def test_unknown_option_error_names_accepted(self):
        spec = get_method("bfs")
        with pytest.raises(ParameterError, match="accepted options") as exc:
            spec.bind({"bogus": 1})
        assert "tie_break" in str(exc.value)

    def test_bad_choice_error_names_choices(self):
        spec = get_method("bfs")
        with pytest.raises(ParameterError, match="choices") as exc:
            spec.bind({"tie_break": "zzz"})
        assert "fractional" in str(exc.value)

    def test_bind_merges_pinned(self):
        spec = get_method("permutation")
        assert spec.bind({}) == {"tie_break": "permutation"}
        # The pinned option is not user-facing on the alias.
        with pytest.raises(ParameterError, match="no option"):
            spec.bind({"tie_break": "fractional"})

    def test_option_parse_types(self):
        assert get_method("sequential").option("randomize_starts").parse(
            "false"
        ) is False
        assert get_method("blelloch").option("shift_range_constant").parse(
            "2.5"
        ) == pytest.approx(2.5)
        with pytest.raises(ParameterError, match="expects a float"):
            get_method("blelloch").option("shift_range_constant").parse("x")
        with pytest.raises(ParameterError, match="expects a bool"):
            get_method("sequential").option("randomize_starts").parse("maybe")

    def test_option_spec_rejects_unknown_type(self):
        with pytest.raises(ParameterError, match="unknown type"):
            OptionSpec("x", "complex", 0)

    def test_bind_rejects_mistyped_values(self):
        # A string where a float is declared must fail fast in bind(), not
        # as a TypeError deep inside the algorithm.
        with pytest.raises(ParameterError, match="expects a float"):
            get_method("blelloch").bind({"shift_range_constant": "2.5"})
        with pytest.raises(ParameterError, match="expects a bool"):
            get_method("sequential").bind({"randomize_starts": "false"})
        with pytest.raises(ParameterError, match="expects a str"):
            get_method("bfs").bind({"tie_break": 3})
        # bool is not accepted where a number is declared (bool < int).
        with pytest.raises(ParameterError, match="expects a float"):
            get_method("blelloch").bind({"shift_range_constant": True})

    def test_bind_accepts_correctly_typed_values(self):
        assert get_method("blelloch").bind({"shift_range_constant": 2}) == {
            "shift_range_constant": 2
        }
        assert get_method("sequential").bind({"randomize_starts": False}) == {
            "randomize_starts": False
        }

    def test_supports_flags(self):
        bfs = get_method("bfs")
        dijkstra = get_method("dijkstra")
        assert bfs.supports_unweighted and not bfs.supports_weighted
        assert dijkstra.supports_weighted and not dijkstra.supports_unweighted
